"""Experiment runner with in-process result memoization.

The twelve experiments share many (workload, configuration) simulation
runs; this runner keys every run by its exact inputs so an experiment
that re-requests an already-simulated point pays nothing.  Traces are
cached on disk (see :class:`~repro.trace.cache.TraceCache`), simulation
results in memory.

Long traces can additionally be *sharded*: :meth:`Runner.run` splits
the trace into windows, simulates them on the supervised pool, and
merges the telemetry (see :mod:`repro.sim.sharding`).  Sharded results
are cached under a distinct key variant so they never masquerade as
monolithic results.
"""

from __future__ import annotations

import math

from repro import env
# Bound as a module-level name (rather than called through repro.api)
# so tests can monkeypatch `repro.harness.runner.simulate`.
from repro.api import simulate
from repro.cachekey import shard_variant as _shard_variant
from repro.config import SimConfig
from repro.errors import RetryExhaustedError
from repro.spec import Point, RunRequest, normalize_points  # noqa: F401
from repro.sim import SimResult
from repro.stats.sweep import merge_counters
from repro.trace import Trace
from repro.workloads import build_trace

__all__ = ["Runner", "default_trace_length", "geomean"]

_QUICK_LENGTH = 60_000
_FULL_LENGTH = 400_000

#: Below this trace length transparent sharding is skipped: the windows
#: would be so short that the warm-up transient dominates the measured
#: region (see the calibration in ``docs/performance.md``).
_SHARD_THRESHOLD = 150_000


def default_trace_length() -> int:
    """Trace length for experiments.

    ``REPRO_TRACE_LEN`` overrides exactly; ``REPRO_FULL=1`` selects the
    long configuration; the default keeps a full experiment sweep in the
    minutes range on a laptop.  Malformed values raise
    :class:`~repro.errors.ConfigError` (see :mod:`repro.env`).
    """
    override = env.trace_length_override()
    if override is not None:
        return override
    if env.full_run_requested():
        return _FULL_LENGTH
    return _QUICK_LENGTH


def geomean(values: list[float]) -> float:
    """Geometric mean (0.0 for an empty list)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# The shard-variant tag is derived next to cache_key() itself (one
# module owns every piece of result identity); re-exported here because
# this is where harness callers historically found it.
shard_variant = _shard_variant


class Runner:
    """Runs (workload, config) points with memoization.

    ``shards``/``shard_overlap`` set the transparent sharding policy:
    when ``shards > 1`` and the trace is at least ``shard_threshold``
    instructions long, :meth:`run` simulates each point as that many
    merged windows on the process pool instead of one monolithic run.
    ``processes`` is the runner's worker budget, shared between
    point-level sweep parallelism and within-point shard parallelism.
    """

    def __init__(self, trace_length: int | None = None, seed: int = 1,
                 warmup_fraction: float = 0.2,
                 persist_dir: str | None = None,
                 store: "ResultStore | None" = None,
                 shards: int | None = None,
                 shard_overlap: int | None = None,
                 shard_threshold: int = _SHARD_THRESHOLD,
                 processes: int | None = None):
        self.trace_length = trace_length or default_trace_length()
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self.shards = shards
        self.shard_overlap = shard_overlap
        self.shard_threshold = shard_threshold
        self.processes = processes
        self._traces: dict[str, Trace] = {}
        self._results: dict[tuple, SimResult] = {}
        self.sweep_counters: dict[str, int] = {}
        if store is not None:
            self._store = store
        else:
            if persist_dir is None:
                persist_dir = env.result_cache_dir()
            self._store = None
            if persist_dir:
                from repro.harness.persist import ResultStore
                self._store = ResultStore(persist_dir)

    def trace(self, workload: str) -> Trace:
        trace = self._traces.get(workload)
        if trace is None:
            trace = build_trace(workload, self.trace_length, seed=self.seed)
            self._traces[workload] = trace
        return trace

    def _warmed(self, config: SimConfig) -> SimConfig:
        if config.warmup_instructions == 0 and self.warmup_fraction > 0:
            warmup = int(self.trace_length * self.warmup_fraction)
            return config.replace(warmup_instructions=warmup)
        return config

    def _effective_shards(self, shards: int | None) -> int:
        """How many shards a point actually runs with.

        An explicit per-call/per-point value wins; ``None`` falls back
        to the runner's policy, which only engages at or above the
        sharding threshold (short traces shard inaccurately — the
        warm-up transient would dominate each window).
        """
        if shards is None:
            if self.shards is None \
                    or self.trace_length < self.shard_threshold:
                return 1
            shards = self.shards
        return max(1, min(shards, self.trace_length))

    def run(self, workload: str, config: SimConfig, *,
            shards: int | None = None,
            processes: int | None = None) -> SimResult:
        """Simulate ``workload`` under ``config`` (memoized).

        ``shards`` overrides the runner's sharding policy for this call
        (``1`` forces a monolithic run); sharded runs fan their windows
        out over ``processes`` workers (default: the runner's budget,
        else one worker per shard) and cache under a shard-specific key.
        """
        config = self._warmed(config)
        nshards = self._effective_shards(shards)
        request = self._request(workload, config, nshards)
        if nshards > 1:
            return self._run_sharded(request, processes=processes)
        key = (workload, config)
        result = self._results.get(key)
        if result is None and self._store is not None:
            result = self._store.load_key(request.cache_key())
            if result is not None:
                self._results[key] = result
        if result is None:
            result = simulate(self.trace(workload), config,
                              name=workload)
            self._results[key] = result
            if self._store is not None:
                self._store.store_key(request.cache_key(), result)
        return result

    def _request(self, workload: str, config: SimConfig,
                 nshards: int) -> "RunRequest":
        """The resolved request identifying one (already warmed) point.

        Every cache interaction below keys on this request's
        :meth:`~repro.spec.RunRequest.cache_key`, the same shared
        digest the serving layer and the sweep manifest use.
        """
        from repro.spec import resolve_request

        return resolve_request(
            workload=workload, config=config,
            trace_length=self.trace_length, seed=self.seed,
            shards=nshards,
            shard_overlap=self.shard_overlap if nshards > 1 else None)

    def _run_sharded(self, request: "RunRequest", *,
                     processes: int | None = None) -> SimResult:
        """Sharded execution of one point, memoized under its variant."""
        from repro.harness.shard_runner import run_sharded_workload

        key = (request.workload, request.config, request.variant())
        result = self._results.get(key)
        if result is None and self._store is not None:
            result = self._store.load_key(request.cache_key())
            if result is not None:
                self._results[key] = result
        if result is None:
            result = run_sharded_workload(
                request.workload, self.trace_length, self.seed,
                request.config, shards=request.shards,
                overlap=request.shard_overlap,
                processes=processes or self.processes)
            self._results[key] = result
            if self._store is not None:
                self._store.store_key(request.cache_key(), result)
        return result

    def with_seed(self, seed: int) -> "Runner":
        """A runner over the same lengths/persistence but another seed.

        Child runners share nothing in memory (different traces), but do
        share the on-disk trace/result caches.  All settings travel
        through the constructor (no post-construction mutation), so
        constructor logic always applies to children.
        """
        return Runner(trace_length=self.trace_length, seed=seed,
                      warmup_fraction=self.warmup_fraction,
                      store=self._store, shards=self.shards,
                      shard_overlap=self.shard_overlap,
                      shard_threshold=self.shard_threshold,
                      processes=self.processes)

    def sweep(self, points: "list[Point | tuple[str, SimConfig]]",
              processes: int | None = None, *,
              max_retries: int = 2, point_timeout: float | None = None,
              checkpoint: str | None = None,
              resume: bool = False) -> "SweepOutcome":
        """Run many points fault-tolerantly and memoize the survivors.

        ``points`` may be typed :class:`~repro.harness.spec.Point`
        objects, an :class:`~repro.harness.spec.ExperimentSpec`, or
        legacy ``(workload, config)`` tuples (deprecated; warns once).
        Unsharded points fan out through
        :func:`~repro.harness.parallel.parallel_sweep`; points whose
        shard count resolves above one run one at a time with the whole
        worker budget parallelizing *within* the point.  Completed
        results join the in-memory memo so subsequent :meth:`run` calls
        are free; execution counters accumulate on
        :attr:`sweep_counters` (reported in the markdown report footer).
        """
        from repro.harness.parallel import (
            PointFailure,
            _effective_config,
            parallel_sweep,
        )
        from repro.harness.persist import result_key

        normalized = normalize_points(points)
        processes = processes if processes is not None else self.processes
        warmup = int(self.trace_length * self.warmup_fraction)

        plain = [p for p in normalized
                 if self._effective_shards(p.shards) <= 1]
        sharded = [p for p in normalized
                   if self._effective_shards(p.shards) > 1]

        outcome = parallel_sweep(
            [p.key for p in plain], trace_length=self.trace_length,
            seed=self.seed, warmup=warmup, processes=processes,
            max_retries=max_retries, point_timeout=point_timeout,
            store=self._store, checkpoint=checkpoint, resume=resume)
        for (workload, config), result in outcome.items():
            key = (workload, _effective_config(config, warmup))
            self._results.setdefault(key, result)

        counters = dict(outcome.counters)
        for point in sharded:
            nshards = self._effective_shards(point.shards)
            try:
                result = self.run(point.workload, point.config,
                                  shards=nshards, processes=processes)
            except RetryExhaustedError as exc:
                effective = self._warmed(point.config)
                variant = shard_variant(nshards, self.shard_overlap)
                outcome.failures.append(PointFailure(
                    point.workload, point.config,
                    result_key(point.workload, effective,
                               self.trace_length, self.seed,
                               variant=variant),
                    attempts=list(exc.attempts)))
                counters["failed"] = counters.get("failed", 0) + 1
            else:
                outcome.results[point.key] = result
                counters["completed"] = counters.get("completed", 0) + 1
                counters["sharded_points"] = \
                    counters.get("sharded_points", 0) + 1
            counters["points"] = counters.get("points", 0) + 1
        outcome.counters = counters

        self.sweep_counters = merge_counters(self.sweep_counters,
                                             outcome.counters)
        return outcome

    def speedup(self, workload: str, config: SimConfig,
                baseline: SimConfig) -> float:
        """IPC ratio of ``config`` over ``baseline`` on ``workload``."""
        return self.run(workload, config).speedup_over(
            self.run(workload, baseline))

    @property
    def runs_performed(self) -> int:
        return len(self._results)
