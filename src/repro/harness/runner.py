"""Experiment runner with in-process result memoization.

The twelve experiments share many (workload, configuration) simulation
runs; this runner keys every run by its exact inputs so an experiment
that re-requests an already-simulated point pays nothing.  Traces are
cached on disk (see :class:`~repro.trace.cache.TraceCache`), simulation
results in memory.
"""

from __future__ import annotations

import math

from repro import env
# Bound as a module-level name (rather than called through repro.api)
# so tests can monkeypatch `repro.harness.runner.run_simulation`.
from repro.api import simulate as run_simulation
from repro.config import SimConfig
from repro.sim import SimResult
from repro.stats.sweep import merge_counters
from repro.trace import Trace
from repro.workloads import build_trace

__all__ = ["Runner", "default_trace_length", "geomean"]

_QUICK_LENGTH = 60_000
_FULL_LENGTH = 400_000


def default_trace_length() -> int:
    """Trace length for experiments.

    ``REPRO_TRACE_LEN`` overrides exactly; ``REPRO_FULL=1`` selects the
    long configuration; the default keeps a full experiment sweep in the
    minutes range on a laptop.  Malformed values raise
    :class:`~repro.errors.ConfigError` (see :mod:`repro.env`).
    """
    override = env.trace_length_override()
    if override is not None:
        return override
    if env.full_run_requested():
        return _FULL_LENGTH
    return _QUICK_LENGTH


def geomean(values: list[float]) -> float:
    """Geometric mean (0.0 for an empty list)."""
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


class Runner:
    """Runs (workload, config) points with memoization."""

    def __init__(self, trace_length: int | None = None, seed: int = 1,
                 warmup_fraction: float = 0.2,
                 persist_dir: str | None = None,
                 store: "ResultStore | None" = None):
        self.trace_length = trace_length or default_trace_length()
        self.seed = seed
        self.warmup_fraction = warmup_fraction
        self._traces: dict[str, Trace] = {}
        self._results: dict[tuple[str, SimConfig], SimResult] = {}
        self.sweep_counters: dict[str, int] = {}
        if store is not None:
            self._store = store
        else:
            if persist_dir is None:
                persist_dir = env.result_cache_dir()
            self._store = None
            if persist_dir:
                from repro.harness.persist import ResultStore
                self._store = ResultStore(persist_dir)

    def trace(self, workload: str) -> Trace:
        trace = self._traces.get(workload)
        if trace is None:
            trace = build_trace(workload, self.trace_length, seed=self.seed)
            self._traces[workload] = trace
        return trace

    def run(self, workload: str, config: SimConfig) -> SimResult:
        """Simulate ``workload`` under ``config`` (memoized)."""
        if config.warmup_instructions == 0 and self.warmup_fraction > 0:
            warmup = int(self.trace_length * self.warmup_fraction)
            config = config.replace(warmup_instructions=warmup)
        key = (workload, config)
        result = self._results.get(key)
        if result is None and self._store is not None:
            result = self._store.load(workload, config,
                                      self.trace_length, self.seed)
            if result is not None:
                self._results[key] = result
        if result is None:
            result = run_simulation(self.trace(workload), config,
                                    name=workload)
            self._results[key] = result
            if self._store is not None:
                self._store.store(workload, config, self.trace_length,
                                  self.seed, result)
        return result

    def with_seed(self, seed: int) -> "Runner":
        """A runner over the same lengths/persistence but another seed.

        Child runners share nothing in memory (different traces), but do
        share the on-disk trace/result caches.  All settings travel
        through the constructor (no post-construction mutation), so
        constructor logic always applies to children.
        """
        return Runner(trace_length=self.trace_length, seed=seed,
                      warmup_fraction=self.warmup_fraction,
                      store=self._store)

    def sweep(self, points: "list[tuple[str, SimConfig]]",
              processes: int | None = None, *,
              max_retries: int = 2, point_timeout: float | None = None,
              checkpoint: str | None = None,
              resume: bool = False) -> "SweepOutcome":
        """Run many points fault-tolerantly and memoize the survivors.

        Fans out through :func:`~repro.harness.parallel.parallel_sweep`
        with this runner's trace length, seed, warm-up, and persistent
        store; completed results join the in-memory memo so subsequent
        :meth:`run` calls are free.  Execution counters accumulate on
        :attr:`sweep_counters` (reported in the markdown report footer).
        """
        from repro.harness.parallel import _effective_config, parallel_sweep

        warmup = int(self.trace_length * self.warmup_fraction)
        outcome = parallel_sweep(
            points, trace_length=self.trace_length, seed=self.seed,
            warmup=warmup, processes=processes, max_retries=max_retries,
            point_timeout=point_timeout, store=self._store,
            checkpoint=checkpoint, resume=resume)
        for (workload, config), result in outcome.items():
            key = (workload, _effective_config(config, warmup))
            self._results.setdefault(key, result)
        self.sweep_counters = merge_counters(self.sweep_counters,
                                             outcome.counters)
        return outcome

    def speedup(self, workload: str, config: SimConfig,
                baseline: SimConfig) -> float:
        """IPC ratio of ``config`` over ``baseline`` on ``workload``."""
        return self.run(workload, config).speedup_over(
            self.run(workload, baseline))

    @property
    def runs_performed(self) -> int:
        return len(self._results)
