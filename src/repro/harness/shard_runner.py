"""Fan one sharded simulation out over the supervised process pool.

The planning and merge logic lives in :mod:`repro.sim.sharding`; this
module supplies the execution strategies:

- :func:`run_sharded` — shard an in-memory :class:`~repro.trace.Trace`.
  Workers receive their (already sliced) sub-trace, so nothing is
  re-derived; good for one-off traces.
- :func:`run_sharded_workload` — shard a *synthetic workload* by name.
  Workers rebuild the trace from ``(workload, trace_length, seed)`` and
  slice their own window, so only a few scalars cross the process
  boundary; this is what :class:`~repro.harness.runner.Runner` uses.

Both inherit the PR-1 fault-tolerance machinery via
:func:`~repro.harness.supervise.run_supervised`: per-shard retries with
deterministic-jitter backoff, wall-clock timeouts, and pool rebuild on
worker death.  A shard that exhausts its retries aborts the run with
:class:`~repro.errors.RetryExhaustedError` — unlike a sweep, a sharded
run cannot gracefully degrade, because every window is needed for the
merged result.

Configurations cross the process boundary as canonical dicts
(:meth:`~repro.config.SimConfig.to_dict` /
:meth:`~repro.config.SimConfig.from_dict`), not pickles, so workers
re-validate them on entry.
"""

from __future__ import annotations

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.harness.supervise import RetryPolicy, run_supervised
from repro.obs import events as obs_events
from repro.sim.results import SimResult
from repro.sim.sharding import (
    ShardPlan,
    ShardSpec,
    _check_mode,
    plan_shards,
    run_one_shard,
    run_shards_inline,
    shard_checkpoint_dir,
    sharded_result,
)
from repro.stats.telemetry import TelemetrySnapshot
from repro.trace import Trace

__all__ = ["run_sharded", "run_sharded_workload"]


def _run_shard_subtrace(records, name: str, seed: int, config_data: dict,
                        index: int, sim_start: int, start: int, stop: int,
                        warm: str,
                        checkpoint_dir: str | None = None,
                        ) -> TelemetrySnapshot:
    """Worker: simulate one pre-sliced shard sub-trace.

    ``sim_start``/``start``/``stop`` index into ``records`` — the parent
    rebased them to match the slice it shipped (the full prefix in
    ``functional`` mode, the overlap window in ``overlap`` mode).
    """
    config = SimConfig.from_dict(config_data)
    trace = Trace(records, name=name, seed=seed)
    spec = ShardSpec(index=index, sim_start=sim_start, start=start,
                     stop=stop)
    with obs_events.obs_context(shard=index):
        obs_events.emit("shard_start", data={
            "name": name, "start": start, "stop": stop, "warm": warm})
        snapshot = run_one_shard(trace, config, spec, name=name, warm=warm,
                                 checkpoint_dir=checkpoint_dir)
        obs_events.emit("shard_end", data={"name": name})
    return snapshot


def _run_shard_workload(workload: str, trace_length: int, seed: int,
                        config_data: dict, index: int, sim_start: int,
                        start: int, stop: int, warm: str,
                        checkpoint_dir: str | None = None,
                        ) -> TelemetrySnapshot:
    """Worker: rebuild the workload trace and simulate one shard."""
    from repro.workloads import build_trace

    config = SimConfig.from_dict(config_data)
    trace = build_trace(workload, trace_length, seed=seed)
    spec = ShardSpec(index=index, sim_start=sim_start, start=start,
                     stop=stop)
    with obs_events.obs_context(shard=index):
        obs_events.emit("shard_start", data={
            "name": workload, "start": start, "stop": stop, "warm": warm})
        snapshot = run_one_shard(trace, config, spec, warm=warm,
                                 checkpoint_dir=checkpoint_dir)
        obs_events.emit("shard_end", data={"name": workload})
    return snapshot


def _collect(outcome, plan: ShardPlan) -> list[TelemetrySnapshot]:
    """Per-shard snapshots in shard order; raise on any failed shard."""
    if outcome.failures:
        first = sorted(outcome.failures)[0]
        raise outcome.failures[first].as_error()
    return [outcome.results[f"shard{spec.index}"] for spec in plan.shards]


def _policy(policy: RetryPolicy | None, max_retries: int,
            point_timeout: float | None) -> RetryPolicy:
    if policy is not None:
        return policy
    return RetryPolicy(max_retries=max_retries,
                       point_timeout=point_timeout)


def run_sharded(trace: Trace, config: SimConfig | None = None, *,
                shards: int, overlap: int | None = None,
                warm: str = "functional", name: str | None = None,
                processes: int | None = None, max_retries: int = 2,
                point_timeout: float | None = None,
                policy: RetryPolicy | None = None,
                checkpoint_dir: str | None = None) -> SimResult:
    """Simulate ``trace`` split into ``shards`` windows; merge telemetry.

    With ``processes=1`` (or a single shard) every window runs inline in
    this process — same result, no pool.  ``overlap`` defaults to
    :data:`~repro.sim.sharding.DEFAULT_SHARD_OVERLAP`; ``warm`` picks
    the warm-up mode (see :mod:`repro.sim.sharding`).  The merged
    result carries shard provenance under
    ``result.telemetry.meta["sharding"]``.

    ``checkpoint_dir`` gives every shard its own machine-checkpoint
    subdirectory (snapshots every ``config.checkpoint_interval``
    cycles): a shard whose worker is killed resumes from its latest
    snapshot on retry, and the merged result stays bit-identical.
    """
    _check_mode(warm)
    if config is None:
        config = SimConfig()
    name = name or trace.name
    total = len(trace)
    if config.max_instructions is not None:
        total = min(total, config.max_instructions)
        trace = trace.slice(0, total)
        config = config.replace(max_instructions=None)
    plan = plan_shards(total, shards, overlap,
                       warmup=config.warmup_instructions)
    if len(plan) == 1 or processes == 1:
        snapshots = run_shards_inline(trace, config, plan, warm=warm,
                                      checkpoint_dir=checkpoint_dir)
    else:
        config_data = config.to_dict()
        tasks = []
        for spec in plan.shards:
            # Ship exactly the records the shard consumes (the full
            # prefix under functional warming, just the overlap window
            # otherwise) and rebase the spec onto that slice.  The
            # run-level warm-up (first shard) is applied by shard_config
            # from the config itself.
            lo = 0 if warm == "functional" else spec.sim_start
            sub = trace if (lo, spec.stop) == (0, len(trace)) \
                else trace.slice(lo, spec.stop)
            tasks.append((f"shard{spec.index}",
                          (sub.records, f"{name}#shard{spec.index}",
                           trace.seed, config_data, spec.index,
                           spec.sim_start - lo, spec.start - lo,
                           spec.stop - lo, warm,
                           shard_checkpoint_dir(checkpoint_dir,
                                                spec.index))))
        outcome = run_supervised(
            _run_shard_subtrace, tasks,
            processes=min(processes or len(plan), len(plan)),
            policy=_policy(policy, max_retries, point_timeout))
        snapshots = _collect(outcome, plan)
    return sharded_result(snapshots, plan, name=name,
                          first_warmup=config.warmup_instructions,
                          warm=warm)


def run_sharded_workload(workload: str, trace_length: int, seed: int,
                         config: SimConfig, *, shards: int,
                         overlap: int | None = None,
                         warm: str = "functional",
                         processes: int | None = None,
                         max_retries: int = 2,
                         point_timeout: float | None = None,
                         policy: RetryPolicy | None = None,
                         checkpoint_dir: str | None = None) -> SimResult:
    """Sharded simulation of a synthetic workload, rebuilt per worker.

    Equivalent to building the trace here and calling
    :func:`run_sharded`, but workers reconstruct their window from the
    ``(workload, trace_length, seed)`` identity instead of receiving
    pickled records — the cheap path for harness sweeps.
    """
    _check_mode(warm)
    if config.max_instructions is not None:
        raise ConfigError(
            "run_sharded_workload shards the full trace_length; set "
            "trace_length instead of max_instructions")
    plan = plan_shards(trace_length, shards, overlap,
                       warmup=config.warmup_instructions)
    if len(plan) == 1 or processes == 1:
        from repro.workloads import build_trace

        trace = build_trace(workload, trace_length, seed=seed)
        snapshots = run_shards_inline(trace, config, plan, warm=warm,
                                      checkpoint_dir=checkpoint_dir)
    else:
        config_data = config.to_dict()
        tasks = [(f"shard{spec.index}",
                  (workload, trace_length, seed, config_data, spec.index,
                   spec.sim_start, spec.start, spec.stop, warm,
                   shard_checkpoint_dir(checkpoint_dir, spec.index)))
                 for spec in plan.shards]
        outcome = run_supervised(
            _run_shard_workload, tasks,
            processes=min(processes or len(plan), len(plan)),
            policy=_policy(policy, max_retries, point_timeout))
        snapshots = _collect(outcome, plan)
    return sharded_result(snapshots, plan, name=workload,
                          first_warmup=config.warmup_instructions,
                          warm=warm)
