"""Supervised multiprocess execution: retries, timeouts, pool rebuild.

:func:`run_supervised` is the fault-tolerant core under
:func:`~repro.harness.parallel.parallel_sweep`.  It executes a batch of
independent tasks on a process pool and survives the failure modes a
long ``REPRO_FULL=1`` sweep actually hits:

- **transient exceptions** — retried up to ``RetryPolicy.max_retries``
  times with exponential backoff and *deterministic* jitter (hashed from
  the task key and attempt number, so reruns behave identically);
- **hung workers** — each attempt gets a wall-clock deadline; on expiry
  the pool is torn down (terminating the stuck process), rebuilt, and the
  surviving in-flight tasks are resubmitted without losing an attempt.
  With a ``progress`` probe (e.g. the machine checkpointer's heartbeat
  file, see :mod:`repro.sim.checkpoint`), a task whose probe value moved
  since the deadline was set is *slow but progressing*: its deadline is
  extended instead of the worker killed (counted under ``stalls``), so
  long points with live heartbeats are never mistaken for livelock;
- **dead workers** — a worker that segfaults or ``os._exit``\\ s marks the
  ``ProcessPoolExecutor`` broken (``BrokenProcessPool``); the supervisor
  rebuilds the pool and retries everything that was in flight.  The pool
  cannot attribute the death to one task, so innocent in-flight tasks
  spend an attempt too — their retries succeed on the fresh pool;
- **deterministic failures** — a task that exhausts its attempts is
  recorded as a :class:`TaskFailure` with its full attempt history; the
  batch keeps going (graceful degradation) instead of aborting.

With ``processes=1`` everything runs inline in this process: retries and
backoff still apply, but wall-clock timeouts are not enforced (there is
no worker to kill).
"""

from __future__ import annotations

import hashlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import PointTimeoutError, RetryExhaustedError
from repro.obs import events as obs_events

__all__ = [
    "RetryPolicy",
    "AttemptRecord",
    "TaskFailure",
    "SupervisedOutcome",
    "run_supervised",
]

# Poll floor so deadline/backoff scans stay responsive without spinning.
_MIN_WAIT = 0.02


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/timeout policy for one batch of supervised tasks.

    ``max_retries`` is the number of *re*-tries after the first attempt
    (so a task runs at most ``max_retries + 1`` times).  Backoff before
    retry *n* is ``backoff_base * backoff_factor**(n-1)`` capped at
    ``backoff_max``, then scaled by a deterministic jitter in
    ``[1 - jitter_fraction, 1 + jitter_fraction]`` derived from the task
    key — no global RNG state, so sweeps stay reproducible.
    """

    max_retries: int = 2
    point_timeout: float | None = None
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter_fraction: float = 0.25

    def backoff(self, key: str, attempt: int) -> float:
        """Delay in seconds before retrying ``key`` after attempt ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        delay = min(self.backoff_max,
                    self.backoff_base * self.backoff_factor ** (attempt - 1))
        digest = hashlib.sha256(f"{key}|{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        return delay * (1.0 + self.jitter_fraction * (2.0 * unit - 1.0))


@dataclass(frozen=True)
class AttemptRecord:
    """One failed attempt of one task."""

    attempt: int
    error_type: str
    message: str
    duration: float


@dataclass
class TaskFailure:
    """A task that failed on every attempt the policy allowed."""

    key: str
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def error_type(self) -> str:
        return self.attempts[-1].error_type if self.attempts else "unknown"

    @property
    def message(self) -> str:
        return self.attempts[-1].message if self.attempts else ""

    def as_error(self) -> RetryExhaustedError:
        return RetryExhaustedError(self.key, self.attempts)


@dataclass
class SupervisedOutcome:
    """Results, failures, and execution counters for one batch."""

    results: dict[str, Any]
    failures: dict[str, TaskFailure]
    counters: dict[str, int]


@dataclass
class _Pending:
    key: str
    args: tuple
    attempt: int
    ready_at: float


@dataclass
class _InFlight:
    """Bookkeeping for one submitted attempt."""

    key: str
    args: tuple
    attempt: int
    deadline: float | None
    started: float
    progress_token: Any = None


def _new_counters() -> dict[str, int]:
    return {"completed": 0, "retried": 0, "failed": 0,
            "timeouts": 0, "stalls": 0, "crashes": 0, "rebuilds": 0}


def _call_with_context(fn, key: str, attempt: int, args: tuple):
    """Worker-side shim: bind the task's correlation ids, then run it.

    Module-level so it pickles into the pool.  Everything the task
    emits (``run_start``, ``checkpoint_written``, ...) then carries the
    supervised ``point``/``attempt`` ids automatically; the sink
    configuration itself rides over through the ``REPRO_LOG_*``
    environment (see :mod:`repro.obs.events`).
    """
    with obs_events.obs_context(point=key, attempt=attempt):
        return fn(*args)


def run_supervised(fn: Callable[..., Any],
                   tasks: list[tuple[str, tuple]],
                   *,
                   processes: int | None = None,
                   policy: RetryPolicy | None = None,
                   on_success: Callable[[str, Any], None] | None = None,
                   on_failure: Callable[[str, TaskFailure], None] | None = None,
                   progress: Callable[[str], Any] | None = None,
                   ) -> SupervisedOutcome:
    """Run ``fn(*args)`` for every ``(key, args)`` task, fault-tolerantly.

    ``on_success``/``on_failure`` fire in *this* process as each task
    settles — the checkpointing hooks used by the sweep layer.

    ``progress`` probes a task's forward progress by key (any comparable
    token; None means "no signal").  It distinguishes *slow* from
    *stuck* at deadline expiry: a task whose token changed since its
    deadline was set gets the deadline extended (counted under
    ``stalls``) instead of its worker killed.  Tokens are only consulted
    when ``point_timeout`` is set and the pool path runs.

    Returns a :class:`SupervisedOutcome`; never raises for task-level
    failures.
    """
    if policy is None:
        policy = RetryPolicy()
    if processes == 1 or not tasks:
        return _run_inline(fn, tasks, policy, on_success, on_failure)
    return _run_pooled(fn, tasks, processes, policy, on_success, on_failure,
                       progress)


def _run_inline(fn, tasks, policy, on_success, on_failure) -> SupervisedOutcome:
    results: dict[str, Any] = {}
    failures: dict[str, TaskFailure] = {}
    counters = _new_counters()
    for key, args in tasks:
        attempts: list[AttemptRecord] = []
        attempt = 1
        while True:
            started = time.monotonic()
            obs_events.emit("task_spawn", point=key, attempt=attempt,
                            data={"inline": True})
            try:
                value = _call_with_context(fn, key, attempt, args)
            except Exception as exc:  # noqa: BLE001 — classify, don't die
                duration = time.monotonic() - started
                attempts.append(AttemptRecord(
                    attempt, type(exc).__name__, str(exc), duration))
                detail = {"error_type": type(exc).__name__,
                          "message": str(exc), "duration": duration}
                if attempt > policy.max_retries:
                    failure = TaskFailure(key, attempts)
                    failures[key] = failure
                    counters["failed"] += 1
                    obs_events.emit("task_failed", point=key,
                                    attempt=attempt, data=detail)
                    if on_failure is not None:
                        on_failure(key, failure)
                    break
                counters["retried"] += 1
                obs_events.emit("task_retry", point=key, attempt=attempt,
                                data=detail)
                delay = policy.backoff(key, attempt)
                if delay:
                    time.sleep(delay)
                attempt += 1
            else:
                results[key] = value
                counters["completed"] += 1
                obs_events.emit(
                    "task_done", point=key, attempt=attempt,
                    data={"duration": time.monotonic() - started})
                if on_success is not None:
                    on_success(key, value)
                break
    return SupervisedOutcome(results, failures, counters)


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard, reclaiming hung or dead workers."""
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001 — already-dead workers are fine
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    deadline = time.monotonic() + 5.0
    for proc in processes:
        try:
            proc.join(max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.kill()
                proc.join(1.0)
        except Exception:  # noqa: BLE001
            pass


def _run_pooled(fn, tasks, processes, policy,
                on_success, on_failure, progress=None) -> SupervisedOutcome:
    results: dict[str, Any] = {}
    failures: dict[str, TaskFailure] = {}
    counters = _new_counters()
    attempts: dict[str, list[AttemptRecord]] = {key: [] for key, _ in tasks}

    pool = ProcessPoolExecutor(max_workers=processes)
    pending: list[_Pending] = [
        _Pending(key, args, 1, 0.0) for key, args in tasks]
    inflight: dict[Any, _InFlight] = {}

    def probe(key: str) -> Any:
        if progress is None:
            return None
        try:
            return progress(key)
        except Exception:  # noqa: BLE001 — a broken probe must not kill
            return None    # the batch; it just loses stall detection

    def settle_failure(key: str, args: tuple, attempt: int,
                       error_type: str, message: str, duration: float,
                       *, count_attempt: bool = True) -> None:
        """Record a failed attempt and either reschedule or give up."""
        if not count_attempt:
            pending.append(_Pending(key, args, attempt, time.monotonic()))
            return
        attempts[key].append(
            AttemptRecord(attempt, error_type, message, duration))
        settle = None
        if error_type == PointTimeoutError.__name__:
            counters["timeouts"] += 1
            settle = "task_timeout"
        elif error_type == "WorkerCrashError":
            counters["crashes"] += 1
            obs_events.emit("worker_crash", point=key, attempt=attempt,
                            data={"message": message})
        detail = {"error_type": error_type, "message": message,
                  "duration": duration}
        if attempt > policy.max_retries:
            failure = TaskFailure(key, attempts[key])
            failures[key] = failure
            counters["failed"] += 1
            detail["final"] = True
            obs_events.emit(settle or "task_failed", point=key,
                            attempt=attempt, data=detail)
            if on_failure is not None:
                on_failure(key, failure)
        else:
            counters["retried"] += 1
            detail["final"] = False
            obs_events.emit(settle or "task_retry", point=key,
                            attempt=attempt, data=detail)
            ready = time.monotonic() + policy.backoff(key, attempt)
            pending.append(_Pending(key, args, attempt + 1, ready))

    def rebuild() -> None:
        nonlocal pool
        counters["rebuilds"] += 1
        obs_events.emit("pool_rebuild",
                        data={"rebuilds": counters["rebuilds"]})
        _kill_pool(pool)
        pool = ProcessPoolExecutor(max_workers=processes)

    def submit_ready(now: float) -> None:
        nonlocal pool
        remaining: list[_Pending] = []
        for item in pending:
            if item.ready_at > now:
                remaining.append(item)
                continue
            deadline = (now + policy.point_timeout
                        if policy.point_timeout else None)
            try:
                future = pool.submit(_call_with_context, fn, item.key,
                                     item.attempt, item.args)
            except BrokenProcessPool:
                # Pool died between batches; rebuild and resubmit.
                rebuild()
                future = pool.submit(_call_with_context, fn, item.key,
                                     item.attempt, item.args)
            obs_events.emit("task_spawn", point=item.key,
                            attempt=item.attempt,
                            data={"timeout": policy.point_timeout})
            inflight[future] = _InFlight(item.key, item.args, item.attempt,
                                         deadline, now,
                                         progress_token=probe(item.key))
        pending[:] = remaining

    try:
        while pending or inflight:
            now = time.monotonic()
            submit_ready(now)
            if not inflight:
                next_ready = min(item.ready_at for item in pending)
                time.sleep(max(_MIN_WAIT, next_ready - time.monotonic()))
                continue

            horizons = [meta.deadline for meta in inflight.values()
                        if meta.deadline is not None]
            horizons.extend(item.ready_at for item in pending)
            timeout = None
            if horizons:
                timeout = max(_MIN_WAIT, min(horizons) - time.monotonic())
            done, _ = wait(list(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            pool_broken = False
            for future in done:
                meta = inflight.pop(future)
                duration = time.monotonic() - meta.started
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    pool_broken = True
                    settle_failure(meta.key, meta.args, meta.attempt,
                                   "WorkerCrashError",
                                   str(exc) or "process pool broken",
                                   duration)
                except Exception as exc:  # noqa: BLE001 — worker exception
                    settle_failure(meta.key, meta.args, meta.attempt,
                                   type(exc).__name__, str(exc), duration)
                else:
                    results[meta.key] = value
                    counters["completed"] += 1
                    obs_events.emit("task_done", point=meta.key,
                                    attempt=meta.attempt,
                                    data={"duration": duration})
                    if on_success is not None:
                        on_success(meta.key, value)

            if pool_broken:
                # Every future on a broken pool fails; drain them all as
                # crash attempts (attribution to one task is impossible),
                # then rebuild.
                for meta in list(inflight.values()):
                    settle_failure(meta.key, meta.args, meta.attempt,
                                   "WorkerCrashError",
                                   "in flight when a pool worker died",
                                   time.monotonic() - meta.started)
                inflight.clear()
                rebuild()
                continue

            now = time.monotonic()
            expired = [future for future, meta in inflight.items()
                       if meta.deadline is not None and now >= meta.deadline]
            timed_out = []
            for future in expired:
                meta = inflight[future]
                token = probe(meta.key)
                if token is not None and token != meta.progress_token:
                    # Slow but provably progressing (the heartbeat moved
                    # since the deadline was set): extend instead of kill.
                    meta.progress_token = token
                    meta.deadline = now + policy.point_timeout
                    counters["stalls"] += 1
                    obs_events.emit(
                        "task_stall", point=meta.key, attempt=meta.attempt,
                        data={"elapsed": now - meta.started,
                              "extended_by": policy.point_timeout})
                    continue
                timed_out.append(future)
            if timed_out:
                for future in timed_out:
                    meta = inflight.pop(future)
                    error = PointTimeoutError(meta.key, policy.point_timeout)
                    settle_failure(meta.key, meta.args, meta.attempt,
                                   type(error).__name__, str(error),
                                   now - meta.started)
                # A hung worker cannot be reclaimed individually: tear the
                # pool down and resubmit the survivors, without charging
                # them an attempt.
                survivors = list(inflight.values())
                inflight.clear()
                rebuild()
                for meta in survivors:
                    settle_failure(meta.key, meta.args, meta.attempt,
                                   "", "", 0.0, count_attempt=False)
    finally:
        _kill_pool(pool)

    return SupervisedOutcome(results, failures, counters)
