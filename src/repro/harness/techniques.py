"""The prefetching techniques the evaluation compares.

Each technique is a named transformation of a base :class:`SimConfig`,
so sweeps can vary machine parameters (cache size, FTQ depth, latency)
orthogonally to the prefetching technique.
"""

from __future__ import annotations

import dataclasses

from repro.config import FilterMode, PrefetcherKind, SimConfig
from repro.errors import ConfigError

__all__ = ["TECHNIQUES", "TECHNIQUE_ORDER", "technique_config"]

TECHNIQUE_ORDER: tuple[str, ...] = (
    "none",
    "nlp",
    "stream",
    "fdip_nofilter",
    "fdip_enqueue",
    "fdip_remove",
    "fdip_ideal",
    "fdip_nlp",
)

TECHNIQUES: dict[str, dict[str, str]] = {
    "none": {"kind": PrefetcherKind.NONE},
    "nlp": {"kind": PrefetcherKind.NLP},
    "stream": {"kind": PrefetcherKind.STREAM},
    "fdip_nofilter": {"kind": PrefetcherKind.FDIP,
                      "filter_mode": FilterMode.NONE},
    "fdip_enqueue": {"kind": PrefetcherKind.FDIP,
                     "filter_mode": FilterMode.ENQUEUE},
    "fdip_remove": {"kind": PrefetcherKind.FDIP,
                    "filter_mode": FilterMode.REMOVE},
    "fdip_ideal": {"kind": PrefetcherKind.FDIP,
                   "filter_mode": FilterMode.IDEAL},
    "fdip_nlp": {"kind": PrefetcherKind.COMBINED,
                 "filter_mode": FilterMode.ENQUEUE},
}


def technique_config(technique: str,
                     base: SimConfig | None = None) -> SimConfig:
    """A :class:`SimConfig` for ``technique`` derived from ``base``."""
    if technique not in TECHNIQUES:
        raise ConfigError(
            f"unknown technique {technique!r}; available: "
            f"{', '.join(TECHNIQUE_ORDER)}")
    if base is None:
        base = SimConfig()
    prefetch = dataclasses.replace(base.prefetch, **TECHNIQUES[technique])
    return base.replace(prefetch=prefetch)
