"""The reconstructed evaluation: experiments E1..E22.

Each experiment regenerates one table/figure of the MICRO-1999 paper's
evaluation structure (see DESIGN.md for the mapping and the mismatch
notice).  An experiment is a function taking a :class:`Runner` and
returning an :class:`ExperimentTable` — plain headers/rows that the
benchmark harness prints and EXPERIMENTS.md records.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.config import CacheGeometry, SimConfig
from repro.harness.runner import Runner, geomean
from repro.harness.techniques import TECHNIQUE_ORDER, technique_config
from repro.stats import format_table
from repro.trace import characterize
from repro.workloads import (
    ALL_WORKLOADS,
    CLIENT_WORKLOADS,
    SERVER_WORKLOADS,
    get_profile,
)

__all__ = ["ExperimentTable", "EXPERIMENTS", "run_experiment",
           "main_grid_points", "prewarm_main_grid"]

# Subsets used by parameter sweeps to keep run counts manageable.
SERVER_SUBSET = ("perl_like", "vortex_like")
MIXED_SUBSET = ("m88ksim_like", "go_like", "perl_like", "vortex_like")

_PREFETCH_TECHNIQUES = tuple(t for t in TECHNIQUE_ORDER if t != "none")


@dataclass
class ExperimentTable:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[object]]
    notes: str = ""

    def formatted(self, precision: int = 3) -> str:
        text = format_table(self.headers, self.rows,
                            title=f"{self.experiment_id}: {self.title}",
                            precision=precision)
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text


# ----------------------------------------------------------------------
# E1 / E2: configuration and workload characterization tables
# ----------------------------------------------------------------------

def experiment_e1(runner: Runner) -> ExperimentTable:
    """The simulated machine configuration (paper's config table)."""
    config = SimConfig()
    memory = config.memory
    rows = [
        ["fetch width", f"{config.core.fetch_width} instrs/cycle"],
        ["issue width", f"{config.core.issue_width} instrs/cycle"],
        ["instruction window", f"{config.core.window_size} entries"],
        ["branch resolve latency",
         f"{config.core.pipeline_depth}+"
         f"{config.core.branch_resolve_latency} cycles after fetch"],
        ["direction predictor",
         "hybrid (bimodal 4K + gshare 4K/12-bit history + meta 4K)"],
        ["FTB", f"{config.frontend.predictor.ftb_sets} sets x "
                f"{config.frontend.predictor.ftb_ways} ways"],
        ["return address stack",
         f"{config.frontend.predictor.ras_depth} entries"],
        ["FTQ", f"{config.frontend.ftq_depth} fetch blocks"],
        ["max fetch block", f"{config.frontend.max_fetch_block} instrs"],
        ["L1-I", f"{memory.icache.size_bytes // 1024}KB, "
                 f"{memory.icache.assoc}-way, "
                 f"{memory.icache.block_bytes}B blocks, "
                 f"{memory.icache_tag_ports} tag ports"],
        ["L2 (unified)", f"{memory.l2.size_bytes // 1024}KB, "
                         f"{memory.l2.assoc}-way, "
                         f"{memory.l2_hit_latency}-cycle hit"],
        ["memory latency", f"{memory.memory_latency} cycles"],
        ["L2 bus", f"1 block / {memory.bus_transfer_cycles} cycles, "
                   f"demand priority"],
        ["MSHRs", f"{memory.mshr_entries}"],
        ["prefetch buffer",
         f"{config.prefetch.buffer_entries} blocks, fully associative"],
        ["PIQ", f"{config.prefetch.piq_depth} entries"],
    ]
    return ExperimentTable(
        "E1", "Simulated machine configuration",
        ["parameter", "value"], rows,
        notes="defaults of SimConfig(); sweeps vary one axis at a time")


def experiment_e2(runner: Runner) -> ExperimentTable:
    """Workload characterization (paper's benchmark table)."""
    base = technique_config("none")
    rows = []
    for name in ALL_WORKLOADS:
        profile = get_profile(name)
        trace = runner.trace(name)
        stats = characterize(trace)
        result = runner.run(name, base)
        rows.append([
            name,
            profile.category,
            stats.footprint_kb,
            stats.distinct_blocks * stats.block_bytes / 1024.0,
            stats.control_fraction,
            stats.taken_fraction,
            result.ipc,
            result.l1i_mpki,
            result.bpred_accuracy,
        ])
    return ExperimentTable(
        "E2", "Workload characterization (no-prefetch baseline)",
        ["workload", "category", "footprint KB", "dyn block KB",
         "ctrl frac", "taken frac", "base IPC", "L1-I MPKI", "bpred acc"],
        rows,
        notes="server workloads sweep working sets larger than the "
              "16KB L1-I; clients mostly fit")


# ----------------------------------------------------------------------
# E3 / E4 / E5: the main comparison
# ----------------------------------------------------------------------

def _main_comparison_rows(
        runner: Runner,
        cell: Callable[[str, str], object]) -> list[list[object]]:
    rows = []
    for name in ALL_WORKLOADS:
        rows.append([name] + [cell(name, t) for t in _PREFETCH_TECHNIQUES])
    return rows


def experiment_e3(runner: Runner) -> ExperimentTable:
    """Main result: IPC speedup over no-prefetch, per technique."""
    base = technique_config("none")

    def cell(workload: str, technique: str) -> float:
        return runner.speedup(workload, technique_config(technique), base)

    rows = _main_comparison_rows(runner, cell)
    for label, group in (("geomean-client", CLIENT_WORKLOADS),
                         ("geomean-server", SERVER_WORKLOADS)):
        rows.append([label] + [
            geomean([runner.speedup(w, technique_config(t), base)
                     for w in group])
            for t in _PREFETCH_TECHNIQUES])
    return ExperimentTable(
        "E3", "IPC speedup over no-prefetch baseline",
        ["workload", *_PREFETCH_TECHNIQUES], rows,
        notes="expected shape: fdip_* > stream > nlp on server "
              "workloads; ideal >= remove >= enqueue >= nofilter")


def experiment_e4(runner: Runner) -> ExperimentTable:
    """L2 bus utilization per technique (filtering saves bandwidth)."""
    def cell(workload: str, technique: str) -> float:
        return runner.run(workload,
                          technique_config(technique)).bus_utilization

    rows = _main_comparison_rows(runner, cell)
    base = technique_config("none")
    rows.append(["(no-prefetch)"] + [
        geomean([max(runner.run(w, base).bus_utilization, 1e-9)
                 for w in ALL_WORKLOADS])] * len(_PREFETCH_TECHNIQUES))
    return ExperimentTable(
        "E4", "L2 bus utilization by technique",
        ["workload", *_PREFETCH_TECHNIQUES], rows,
        notes="expected shape: fdip_nofilter spends the most bandwidth; "
              "each filtering level cuts it; ideal approaches the "
              "baseline plus useful prefetches only")


def experiment_e5(runner: Runner) -> ExperimentTable:
    """Prefetch accuracy, coverage, and lateness per technique."""
    rows = []
    for name in ALL_WORKLOADS:
        for technique in _PREFETCH_TECHNIQUES:
            result = runner.run(name, technique_config(technique))
            rows.append([
                name, technique,
                result.prefetches_issued,
                result.prefetches_useful,
                result.prefetches_late,
                result.prefetch_accuracy,
                result.prefetch_coverage,
            ])
    return ExperimentTable(
        "E5", "Prefetch accuracy and coverage",
        ["workload", "technique", "issued", "useful", "late",
         "accuracy", "coverage"], rows,
        notes="filtering raises accuracy (fewer redundant prefetches) "
              "without sacrificing coverage")


# ----------------------------------------------------------------------
# E6 / E7 / E8 / E9: sensitivity sweeps
# ----------------------------------------------------------------------

def experiment_e6(runner: Runner) -> ExperimentTable:
    """Speedup vs FTQ depth (run-ahead distance)."""
    rows = []
    for depth in (1, 2, 4, 8, 16, 32):
        row: list[object] = [depth]
        for name in SERVER_SUBSET:
            base = technique_config("none")
            base = base.replace(frontend=dataclasses.replace(
                base.frontend, ftq_depth=depth))
            fdip = technique_config("fdip_enqueue", base)
            row.append(runner.speedup(name, fdip, base))
        rows.append(row)
    return ExperimentTable(
        "E6", "FDIP speedup vs FTQ depth",
        ["ftq_depth", *SERVER_SUBSET], rows,
        notes="a 1-entry FTQ cannot run ahead (no prefetch candidates); "
              "speedup grows with depth and saturates")


def experiment_e7(runner: Runner) -> ExperimentTable:
    """Speedup vs prefetch buffer size, and direct-to-L1 fills."""
    base = technique_config("none")
    rows = []
    for entries in (8, 16, 32, 64):
        row: list[object] = [f"{entries} entries"]
        for name in SERVER_SUBSET:
            fdip = technique_config("fdip_enqueue")
            fdip = fdip.replace(prefetch=dataclasses.replace(
                fdip.prefetch, buffer_entries=entries))
            row.append(runner.speedup(name, fdip, base))
        rows.append(row)
    direct = technique_config("fdip_enqueue")
    direct = direct.replace(prefetch=dataclasses.replace(
        direct.prefetch, fill_l1_directly=True))
    rows.append(["direct-to-L1 (no buffer)"] + [
        runner.speedup(name, direct, base) for name in SERVER_SUBSET])
    return ExperimentTable(
        "E7", "FDIP speedup vs prefetch buffer size",
        ["buffer", *SERVER_SUBSET], rows,
        notes="too small a buffer drops prefetches before use; returns "
              "diminish past the paper's 32 entries; the direct-to-L1 "
              "row shows what the buffer's pollution-avoidance is worth")


def experiment_e8(runner: Runner) -> ExperimentTable:
    """Speedup vs memory latency (prefetching matters more when "
    "memory is slower)."""
    base_none = technique_config("none")
    rows = []
    for scale, l2_hit, mem_lat in ((0.5, 6, 35), (1.0, 12, 70),
                                   (2.0, 24, 140), (4.0, 48, 280)):
        row: list[object] = [f"{scale:g}x"]
        for name in SERVER_SUBSET:
            def with_latency(config: SimConfig) -> SimConfig:
                memory = dataclasses.replace(
                    config.memory, l2_hit_latency=l2_hit,
                    memory_latency=mem_lat)
                return config.replace(memory=memory)
            row.append(runner.speedup(name,
                                      with_latency(
                                          technique_config("fdip_enqueue")),
                                      with_latency(base_none)))
        rows.append(row)
    return ExperimentTable(
        "E8", "FDIP speedup vs L2/memory latency",
        ["latency", *SERVER_SUBSET], rows,
        notes="expected shape: monotonically increasing benefit with "
              "latency (each covered miss saves more cycles)")


def experiment_e9(runner: Runner) -> ExperimentTable:
    """16KB vs 32KB L1-I: bigger caches shrink the opportunity."""
    rows = []
    for name in MIXED_SUBSET:
        row: list[object] = [name]
        for kb in (16, 32):
            geometry = CacheGeometry(size_bytes=kb * 1024, assoc=2)

            def with_cache(config: SimConfig) -> SimConfig:
                memory = dataclasses.replace(config.memory, icache=geometry)
                return config.replace(memory=memory)

            base = with_cache(technique_config("none"))
            fdip = with_cache(technique_config("fdip_enqueue"))
            row.append(runner.speedup(name, fdip, base))
            row.append(runner.run(name, base).l1i_mpki)
        rows.append(row)
    return ExperimentTable(
        "E9", "FDIP speedup at 16KB vs 32KB L1-I",
        ["workload", "speedup@16KB", "mpki@16KB",
         "speedup@32KB", "mpki@32KB"], rows,
        notes="expected shape: the 32KB cache absorbs more of the "
              "working set, reducing both MPKI and FDIP's gain")


# ----------------------------------------------------------------------
# E10 / E11: equal-storage and filtering ablations
# ----------------------------------------------------------------------

def experiment_e10(runner: Runner) -> ExperimentTable:
    """FDIP vs stream buffers at matched prefetch storage."""
    base = technique_config("none")
    rows = []
    for blocks in (8, 16, 32, 64):
        fdip = technique_config("fdip_enqueue")
        fdip = fdip.replace(prefetch=dataclasses.replace(
            fdip.prefetch, buffer_entries=blocks))
        stream = technique_config("stream")
        stream = stream.replace(prefetch=dataclasses.replace(
            stream.prefetch, stream_buffers=max(1, blocks // 4),
            stream_depth=4))
        fdip_gain = geomean([runner.speedup(w, fdip, base)
                             for w in MIXED_SUBSET])
        stream_gain = geomean([runner.speedup(w, stream, base)
                               for w in MIXED_SUBSET])
        rows.append([f"{blocks} blocks", fdip_gain, stream_gain,
                     fdip_gain / stream_gain])
    return ExperimentTable(
        "E10", "Equal-storage comparison: FDIP vs stream buffers",
        ["storage", "fdip geomean speedup", "stream geomean speedup",
         "fdip/stream"], rows,
        notes="expected shape: FDIP wins at every storage point because "
              "it follows predicted control flow, not straight lines")


def experiment_e11(runner: Runner) -> ExperimentTable:
    """Ablations: tag ports available to CPF, and wrong-path modeling."""
    workload = SERVER_SUBSET[0]
    base = technique_config("none")
    rows = []
    for ports in (1, 2, 4):
        for mode in ("enqueue", "remove"):
            config = technique_config(f"fdip_{mode}")
            config = config.replace(memory=dataclasses.replace(
                config.memory, icache_tag_ports=ports))
            result = runner.run(workload, config)
            filtered = (result.get("fdip.filtered_enqueue")
                        + result.get("fdip.filtered_remove"))
            rows.append([f"{ports} ports / {mode}",
                         result.speedup_over(runner.run(workload, base)),
                         result.bus_utilization, filtered])
    for wrong_path in (True, False):
        config = technique_config("fdip_enqueue")
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, model_wrong_path=wrong_path))
        matched_base = base.replace(frontend=dataclasses.replace(
            base.frontend, model_wrong_path=wrong_path))
        result = runner.run(workload, config)
        label = "wrong-path on" if wrong_path else "wrong-path off"
        rows.append([label,
                     result.speedup_over(runner.run(workload,
                                                    matched_base)),
                     result.bus_utilization,
                     result.get("fdip.issued_wrong_path")])
    return ExperimentTable(
        "E11", f"Cache-probe-filter port and wrong-path ablations "
               f"({workload})",
        ["configuration", "speedup", "bus util", "filtered/wrong-path"],
        rows,
        notes="more idle tag ports filter more; wrong-path rows use a "
              "baseline with the same wrong-path setting — stall mode "
              "(off) loses both wrong-path warming and the prefetching "
              "that would otherwise continue through mispredict shadows")


# ----------------------------------------------------------------------
# E12: front-end characterization
# ----------------------------------------------------------------------

def experiment_e12(runner: Runner) -> ExperimentTable:
    """FTQ occupancy and fetch-block size distributions."""
    config = technique_config("fdip_enqueue")
    rows = []
    for name in ALL_WORKLOADS:
        result = runner.run(name, config)
        occupancy = result.ftq_occupancy_hist
        total = sum(occupancy.values()) or 1
        empty = occupancy.get(0, 0) / total
        blocks = result.fetch_block_hist
        block_total = sum(blocks.values()) or 1
        mean_block = sum(k * v for k, v in blocks.items()) / block_total
        rows.append([
            name,
            result.ftq_mean_occupancy,
            empty,
            sum(v for k, v in blocks.items() if k <= 2) / block_total,
            sum(v for k, v in blocks.items() if 3 <= k <= 8) / block_total,
            sum(v for k, v in blocks.items() if k > 8) / block_total,
            mean_block,
        ])
    return ExperimentTable(
        "E12", "Front-end characterization under FDIP",
        ["workload", "mean FTQ occ", "FTQ empty frac",
         "blocks<=2", "blocks 3-8", "blocks>8", "mean block instrs"],
        rows,
        notes="non-empty FTQ occupancy is what gives the prefetch "
              "engine its lookahead")


def experiment_e13(runner: Runner) -> ExperimentTable:
    """Idealized front-end limit study.

    How much of the remaining stall time is the *predictor's* fault
    (perfect conditional direction) versus the *filter's* fault (ideal
    cache probe filtering)?  The paper frames FDIP's headroom the same
    way: better prediction extends useful run-ahead, better filtering
    frees bus bandwidth.
    """
    base = technique_config("none")
    variants: list[tuple[str, SimConfig]] = []
    realistic = technique_config("fdip_enqueue")
    variants.append(("fdip (realistic)", realistic))
    perfect = realistic.replace(frontend=dataclasses.replace(
        realistic.frontend, perfect_direction=True))
    variants.append(("+ perfect direction", perfect))
    ideal_filter = technique_config("fdip_ideal")
    variants.append(("+ ideal filtering", ideal_filter))
    both = ideal_filter.replace(frontend=dataclasses.replace(
        ideal_filter.frontend, perfect_direction=True))
    variants.append(("+ both", both))

    rows = []
    for label, config in variants:
        row: list[object] = [label]
        for name in SERVER_SUBSET:
            result = runner.run(name, config)
            row.append(result.speedup_over(runner.run(name, base)))
            row.append(result.mispredicts_per_ki)
        rows.append(row)
    headers = ["configuration"]
    for name in SERVER_SUBSET:
        headers.extend([f"{name} speedup", f"{name} mpred/ki"])
    return ExperimentTable(
        "E13", "Idealized front-end limit study",
        headers, rows,
        notes="perfect direction removes conditional mispredicts only "
              "(FTB misses and indirect/return mispredicts remain); "
              "ideal filtering removes redundant prefetch traffic")


def experiment_e14(runner: Runner) -> ExperimentTable:
    """Fetch-cycle accounting: where the cycles go, per technique."""
    from repro.analysis import stall_breakdown

    rows = []
    for name in SERVER_SUBSET:
        for technique in ("none", "nlp", "stream", "fdip_enqueue"):
            result = runner.run(name, technique_config(technique))
            breakdown = stall_breakdown(result)
            rows.append(breakdown.as_row())
    from repro.analysis import StallBreakdown
    return ExperimentTable(
        "E14", "Fetch-cycle breakdown by technique",
        StallBreakdown.headers(), rows,
        notes="prefetching converts icache-miss stall cycles into "
              "active or window-bound cycles; the residual ftq-empty "
              "share is mispredict recovery")


def experiment_e15(runner: Runner) -> ExperimentTable:
    """Direction predictor ablation under FDIP."""
    rows = []
    base_none = technique_config("none")
    for direction in ("always_taken", "bimodal", "gshare", "local",
                      "hybrid"):
        row: list[object] = [direction]
        for name in SERVER_SUBSET:
            def with_predictor(config: SimConfig) -> SimConfig:
                predictor = dataclasses.replace(
                    config.frontend.predictor, direction=direction)
                frontend = dataclasses.replace(config.frontend,
                                               predictor=predictor)
                return config.replace(frontend=frontend)
            fdip = with_predictor(technique_config("fdip_enqueue"))
            result = runner.run(name, fdip)
            row.append(result.speedup_over(
                runner.run(name, with_predictor(base_none))))
            row.append(result.mispredicts_per_ki)
        rows.append(row)
    headers = ["predictor"]
    for name in SERVER_SUBSET:
        headers.extend([f"{name} speedup", f"{name} mpred/ki"])
    return ExperimentTable(
        "E15", "Direction predictor ablation (FDIP vs matched baseline)",
        headers, rows,
        notes="better direction prediction lengthens useful run-ahead; "
              "FDIP speedup and absolute IPC both grow with predictor "
              "quality")


def experiment_e16(runner: Runner) -> ExperimentTable:
    """FTB size sweep: FDIP's reach tracks the branch working set.

    The decoupled front end can only run ahead through branches the FTB
    captures; evicted fetch blocks turn into FTB-miss mispredictions
    that squash the run-ahead (the observation that later motivated the
    FDIP-X line of work on BTB compression).
    """
    rows = []
    for sets in (16, 64, 256, 1024, 4096):
        row: list[object] = [f"{sets}x4 ({sets * 4} entries)"]
        for name in SERVER_SUBSET:
            def with_ftb(config: SimConfig) -> SimConfig:
                predictor = dataclasses.replace(
                    config.frontend.predictor, ftb_sets=sets)
                frontend = dataclasses.replace(config.frontend,
                                               predictor=predictor)
                return config.replace(frontend=frontend)
            fdip = with_ftb(technique_config("fdip_enqueue"))
            base = with_ftb(technique_config("none"))
            result = runner.run(name, fdip)
            row.append(result.speedup_over(runner.run(name, base)))
            row.append(result.get("predict.mispredict_ftb_miss")
                       / max(1, result.instructions) * 1000)
        rows.append(row)
    headers = ["FTB geometry"]
    for name in SERVER_SUBSET:
        headers.extend([f"{name} speedup", f"{name} ftbmiss/ki"])
    return ExperimentTable(
        "E16", "FDIP speedup vs FTB capacity",
        headers, rows,
        notes="small FTBs cannot hold the server branch working set; "
              "FTB-miss mispredictions cap run-ahead and thus prefetch "
              "coverage")


def experiment_e17(runner: Runner) -> ExperimentTable:
    """Combined FDIP + next-line prefetching vs its components."""
    base = technique_config("none")
    rows = []
    for name in ALL_WORKLOADS:
        row: list[object] = [name]
        for technique in ("nlp", "fdip_enqueue", "fdip_nlp"):
            row.append(runner.speedup(name, technique_config(technique),
                                      base))
        rows.append(row)
    rows.append(["geomean"] + [
        geomean([runner.speedup(w, technique_config(t), base)
                 for w in ALL_WORKLOADS])
        for t in ("nlp", "fdip_enqueue", "fdip_nlp")])
    return ExperimentTable(
        "E17", "Combined FDIP+NLP vs its components",
        ["workload", "nlp", "fdip_enqueue", "fdip_nlp"], rows,
        notes="next-line catches the straight-line misses FDIP drops "
              "right after squashes; the combination is never worse "
              "than FDIP alone")


def experiment_e18(runner: Runner) -> ExperimentTable:
    """Two-level FTB (scalable front end) vs monolithic FTBs.

    The companion ISCA-1999 front-end architecture backs a small
    single-cycle L1 FTB with a large, slower L2 FTB.  The question the
    paper's front end answers: how much of a big FTB's benefit survives
    when only a small structure fits in the single-cycle path?
    """
    def with_ftb(config: SimConfig, sets: int, l2_sets: int = 0,
                 l2_latency: int = 3) -> SimConfig:
        predictor = dataclasses.replace(
            config.frontend.predictor, ftb_sets=sets, ftb_ways=4,
            ftb_l2_sets=l2_sets, ftb_l2_latency=l2_latency)
        return config.replace(frontend=dataclasses.replace(
            config.frontend, predictor=predictor))

    variants = [
        ("small monolithic (256e)", dict(sets=64)),
        ("two-level 256e + 4Ke lat3", dict(sets=64, l2_sets=512)),
        ("two-level 256e + 4Ke lat6", dict(sets=64, l2_sets=512,
                                           l2_latency=6)),
        ("big monolithic (4Ke)", dict(sets=1024)),
    ]
    rows = []
    for label, kwargs in variants:
        row: list[object] = [label]
        for name in SERVER_SUBSET:
            fdip = with_ftb(technique_config("fdip_enqueue"), **kwargs)
            base = with_ftb(technique_config("none"), **kwargs)
            row.append(runner.speedup(name, fdip, base))
        rows.append(row)
    return ExperimentTable(
        "E18", "Two-level FTB vs monolithic FTBs (FDIP speedup)",
        ["FTB organization", *SERVER_SUBSET], rows,
        notes="a small L1 FTB backed by a large L2 FTB recovers most of "
              "the big single-cycle FTB's benefit; higher L2 latency "
              "erodes it")


def experiment_e19(runner: Runner) -> ExperimentTable:
    """Secondary sensitivity sweeps (one axis at a time).

    The smaller design-space axes the paper's configuration fixes:
    L1-I associativity and block size, PIQ depth, MSHR count, and bus
    speed.  Each row perturbs exactly one axis from the default machine
    and reports FDIP speedup over a matched no-prefetch baseline on the
    first server workload.
    """
    workload = SERVER_SUBSET[0]

    def sweep(label: str, transform) -> list[object]:
        fdip = transform(technique_config("fdip_enqueue"))
        base = transform(technique_config("none"))
        result = runner.run(workload, fdip)
        return [label, result.speedup_over(runner.run(workload, base)),
                result.l1i_mpki, result.bus_utilization]

    def with_assoc(assoc: int):
        def transform(config: SimConfig) -> SimConfig:
            icache = dataclasses.replace(config.memory.icache, assoc=assoc)
            return config.replace(memory=dataclasses.replace(
                config.memory, icache=icache))
        return transform

    def with_block(block: int):
        def transform(config: SimConfig) -> SimConfig:
            icache = dataclasses.replace(config.memory.icache,
                                         block_bytes=block)
            l2 = dataclasses.replace(config.memory.l2, block_bytes=block)
            return config.replace(memory=dataclasses.replace(
                config.memory, icache=icache, l2=l2))
        return transform

    def with_piq(depth: int):
        def transform(config: SimConfig) -> SimConfig:
            return config.replace(prefetch=dataclasses.replace(
                config.prefetch, piq_depth=depth))
        return transform

    def with_mshrs(count: int):
        def transform(config: SimConfig) -> SimConfig:
            return config.replace(memory=dataclasses.replace(
                config.memory, mshr_entries=count))
        return transform

    def with_bus(cycles: int):
        def transform(config: SimConfig) -> SimConfig:
            return config.replace(memory=dataclasses.replace(
                config.memory, bus_transfer_cycles=cycles))
        return transform

    rows = [sweep("default (2-way/32B/piq32/mshr16/bus4)", lambda c: c)]
    for assoc in (1, 4):
        rows.append(sweep(f"L1-I {assoc}-way", with_assoc(assoc)))
    for block in (16, 64):
        rows.append(sweep(f"{block}B blocks", with_block(block)))
    for depth in (4, 128):
        rows.append(sweep(f"PIQ depth {depth}", with_piq(depth)))
    for count in (4, 64):
        rows.append(sweep(f"{count} MSHRs", with_mshrs(count)))
    for cycles in (2, 8):
        rows.append(sweep(f"bus {cycles} cyc/block", with_bus(cycles)))
    return ExperimentTable(
        "E19", f"Secondary sensitivity sweeps ({workload})",
        ["axis", "fdip speedup", "fdip mpki", "fdip bus util"], rows,
        notes="each row perturbs one machine axis; FDIP's benefit is "
              "robust across most of them — MSHR capacity (outstanding "
              "fills) is the strongest secondary lever, since FDIP "
              "needs many prefetches in flight")


def experiment_e20(runner: Runner) -> ExperimentTable:
    """Seed sensitivity: are the conclusions robust to workload seeds?

    Synthetic-workload methodology check: the headline FDIP speedup is
    re-measured with three different trace seeds per workload.  The
    spread must be small relative to the effect for any ordering claim
    in E3 to be meaningful.
    """
    import statistics

    seeds = (runner.seed, runner.seed + 100, runner.seed + 200)
    rows = []
    for name in MIXED_SUBSET:
        speedups = []
        for seed in seeds:
            sub = runner if seed == runner.seed else runner.with_seed(seed)
            speedups.append(sub.speedup(
                name, technique_config("fdip_enqueue"),
                technique_config("none")))
        mean = statistics.fmean(speedups)
        spread = max(speedups) - min(speedups)
        rows.append([name, mean, min(speedups), max(speedups),
                     spread / mean])
    return ExperimentTable(
        "E20", f"FDIP speedup across trace seeds {list(seeds)}",
        ["workload", "mean speedup", "min", "max", "rel spread"], rows,
        notes="the relative spread stays well below the FDIP-vs-baseline "
              "effect size, so the orderings reported in E3 are "
              "seed-robust")


def experiment_e21(runner: Runner) -> ExperimentTable:
    """FDIP lookahead window tuning.

    How far behind the fetch point should the prefetch engine scan?
    Blocks at position 1 are fetched almost immediately (prefetching
    them saves little); blocks very deep in the FTQ are more likely to
    be squashed.  The paper's design scans everything behind the head.
    """
    base = technique_config("none")
    rows = []
    variants = [
        ("positions 1..2", 1, 2),
        ("positions 1..4", 1, 4),
        ("positions 1..8", 1, 8),
        ("positions 1..16", 1, 16),
        ("positions 1..tail (paper)", 1, None),
        ("positions 2..tail", 2, None),
        ("positions 4..tail", 4, None),
    ]
    for label, lo, hi in variants:
        row: list[object] = [label]
        for name in SERVER_SUBSET:
            fdip = technique_config("fdip_enqueue")
            fdip = fdip.replace(prefetch=dataclasses.replace(
                fdip.prefetch, min_lookahead=lo, max_lookahead=hi))
            result = runner.run(name, fdip)
            row.append(result.speedup_over(runner.run(name, base)))
            row.append(result.prefetch_accuracy)
        rows.append(row)
    headers = ["scan window"]
    for name in SERVER_SUBSET:
        headers.extend([f"{name} speedup", f"{name} accuracy"])
    return ExperimentTable(
        "E21", "FDIP lookahead window tuning",
        headers, rows,
        notes="a shallow window sacrifices timeliness; skipping the "
              "first positions sacrifices a little coverage for "
              "slightly better accuracy — scanning everything behind "
              "the head (the paper's choice) is near-optimal")


def experiment_e22(runner: Runner) -> ExperimentTable:
    """Fetch bandwidth sensitivity: accesses/cycle and fetch width.

    FDIP removes miss stalls; what is left is raw fetch bandwidth.  A
    banked cache fetching across block/fetch-block boundaries (2
    accesses per cycle) and a wider fetch both raise the ceiling —
    and prefetching matters *more* when fetch is faster, because miss
    stalls then dominate a larger share of the remaining time.
    """
    rows = []
    for accesses, width in ((1, 8), (2, 8), (1, 16), (2, 16)):
        row: list[object] = [f"{accesses} access x {width}-wide"]
        for name in SERVER_SUBSET:
            def with_fetch(config: SimConfig) -> SimConfig:
                core = dataclasses.replace(
                    config.core, fetch_width=width,
                    fetch_accesses_per_cycle=accesses,
                    issue_width=max(config.core.issue_width, width))
                return config.replace(core=core)
            fdip = with_fetch(technique_config("fdip_enqueue"))
            base = with_fetch(technique_config("none"))
            result = runner.run(name, fdip)
            row.append(result.speedup_over(runner.run(name, base)))
            row.append(result.ipc)
        rows.append(row)
    headers = ["fetch organization"]
    for name in SERVER_SUBSET:
        headers.extend([f"{name} speedup", f"{name} fdip IPC"])
    return ExperimentTable(
        "E22", "Fetch bandwidth sensitivity",
        headers, rows,
        notes="wider/banked fetch raises FDIP's absolute IPC and its "
              "relative benefit: once bandwidth stops being the "
              "bottleneck, covering misses is all that is left")


def main_grid_points() -> "list[Point]":
    """Every (workload, technique) point of the main comparison.

    This is the grid E2..E5 and E17 share; prewarming it covers the bulk
    of a default report's simulation time.  Each point is labeled
    ``workload/technique`` for reports.
    """
    from repro.spec import Point

    return [Point(workload, technique_config(technique),
                  label=f"{workload}/{technique}")
            for workload in ALL_WORKLOADS
            for technique in TECHNIQUE_ORDER]


def prewarm_main_grid(runner: Runner, processes: int | None = None,
                      **sweep_kwargs):
    """Populate ``runner``'s memo for the main grid via a supervised sweep.

    Runs the (workload, technique) grid fault-tolerantly in parallel;
    results land in the runner's in-memory memo (and persistent store,
    when configured), so the serial experiment functions replay them for
    free.  Points that fail after retries degrade gracefully: the
    experiment that needs them simply re-simulates inline.  Returns the
    :class:`~repro.harness.parallel.SweepOutcome`.
    """
    return runner.sweep(main_grid_points(), processes, **sweep_kwargs)


EXPERIMENTS: dict[str, Callable[[Runner], ExperimentTable]] = {
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "E6": experiment_e6,
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
    "E13": experiment_e13,
    "E14": experiment_e14,
    "E15": experiment_e15,
    "E16": experiment_e16,
    "E17": experiment_e17,
    "E18": experiment_e18,
    "E19": experiment_e19,
    "E20": experiment_e20,
    "E21": experiment_e21,
    "E22": experiment_e22,
}


def run_experiment(experiment_id: str,
                   runner: Runner | None = None) -> ExperimentTable:
    """Run one experiment by id (creating a default Runner if needed)."""
    if runner is None:
        runner = Runner()
    return EXPERIMENTS[experiment_id](runner)
