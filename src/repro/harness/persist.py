"""Persistent simulation-result cache.

Long (``REPRO_FULL=1``) sweeps are expensive; this store keeps each
:class:`SimResult` on disk keyed by everything that determines it — the
workload/trace identity, the full configuration, and the package version
(so any model change invalidates old results).

Enable it for the benchmark suite by setting ``REPRO_RESULT_CACHE`` to a
directory path.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import repro
from repro.config import SimConfig
from repro.sim import SimResult
from repro.sim.serialize import result_from_json, result_to_json

__all__ = ["ResultStore"]


class ResultStore:
    """Directory-backed map from run identity to SimResult."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def _key(self, workload: str, config: SimConfig, trace_length: int,
             seed: int) -> str:
        identity = (f"v{repro.__version__}|{workload}|{trace_length}"
                    f"|{seed}|{config!r}")
        return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:32]

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.result.json"

    def load(self, workload: str, config: SimConfig, trace_length: int,
             seed: int) -> SimResult | None:
        """Return a stored result or None; corrupt files are ignored."""
        path = self._path(self._key(workload, config, trace_length, seed))
        if not path.exists():
            return None
        try:
            return result_from_json(path.read_text(encoding="utf-8"))
        except Exception:
            path.unlink(missing_ok=True)
            return None

    def store(self, workload: str, config: SimConfig, trace_length: int,
              seed: int, result: SimResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(self._key(workload, config, trace_length, seed))
        tmp = path.with_suffix(".tmp")
        tmp.write_text(result_to_json(result), encoding="utf-8")
        tmp.replace(path)

    def clear(self) -> int:
        """Delete all stored results; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.result.json"):
            path.unlink()
            removed += 1
        return removed
