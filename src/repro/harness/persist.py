"""Persistent simulation-result cache and sweep checkpointing.

Long (``REPRO_FULL=1``) sweeps are expensive; :class:`ResultStore` keeps
each :class:`SimResult` on disk keyed by everything that determines it —
the workload/trace identity, the full configuration, and the package
version (so any model change invalidates old results).

The store is hardened for concurrent, crash-prone use:

- writes go through a **unique per-writer temp file** plus atomic
  ``os.replace`` (a shared ``.tmp`` path would race when two workers
  store the same key);
- entries embed a **content checksum**; a truncated or garbled file is
  **quarantined** under ``<dir>/quarantine/`` for post-mortem instead of
  being silently deleted, and the load simply misses.

:class:`SweepManifest` checkpoints sweep progress (which point keys are
done or failed) in one atomically-rewritten JSON file, so an interrupted
sweep rerun with ``resume=True`` re-simulates only the unfinished points.

Enable the store for the benchmark suite by setting
``REPRO_RESULT_CACHE`` to a directory path.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.cachekey import cache_key
from repro.config import SimConfig
from repro.errors import CacheCorruptionError
from repro.fsutil import QUARANTINE_DIR, atomic_write_text, quarantine
from repro.obs import events as obs_events
from repro.sim import SimResult
from repro.sim.serialize import result_from_json, result_to_json

__all__ = ["ResultStore", "SweepManifest", "result_key"]


def result_key(workload: str, config: SimConfig, trace_length: int,
               seed: int, variant: str = "") -> str:
    """Stable identity of one simulation point (store/manifest key).

    A thin alias of :func:`repro.cachekey.cache_key` — the Runner, the
    sweep manifest, the sharded runner, and the serving layer's
    content-addressed cache all derive their keys from that one helper,
    so no two layers can ever disagree about a point's identity.

    ``variant`` distinguishes alternative executions of the same point —
    notably sharded runs (``shards=K:overlap=N:warm=M``), whose merged
    telemetry approximates but does not equal the monolithic result and
    must never be served from (or poison) the monolithic cache entry.
    """
    return cache_key(workload, config, trace_length, seed, variant)


# Crash-safe write/quarantine primitives now live in repro.fsutil,
# shared with the machine checkpointer; these aliases keep the module's
# historical internal surface (tests and older call sites) stable.
_atomic_write = atomic_write_text
_quarantine = quarantine


class ResultStore:
    """Directory-backed map from run identity to SimResult.

    The classic entry points key by the point's fields
    (:meth:`load` / :meth:`store`); the key-direct entry points
    (:meth:`load_key` / :meth:`store_key`) take a precomputed
    :func:`~repro.cachekey.cache_key` digest — the serving layer's
    content-addressed :class:`~repro.serve.cache.ResultCache` layers
    on top of these, inheriting the atomic-write / checksum /
    quarantine discipline wholesale.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.quarantined = 0

    def _key(self, workload: str, config: SimConfig, trace_length: int,
             seed: int, variant: str = "") -> str:
        return result_key(workload, config, trace_length, seed, variant)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.result.json"

    def _check_envelope(self, path: Path, envelope: dict) -> None:
        """Hook for subclasses to vet envelope metadata before parsing.

        Raise :class:`~repro.errors.CacheCorruptionError` to refuse the
        entry; the loader then quarantines the file.
        """

    def _parse(self, path: Path, text: str) -> SimResult:
        try:
            envelope = json.loads(text)
        except ValueError as exc:
            raise CacheCorruptionError(str(path),
                                       f"not valid JSON ({exc})") from None
        if isinstance(envelope, dict) and "payload" in envelope:
            self._check_envelope(path, envelope)
            payload = envelope["payload"]
            digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
            if digest != envelope.get("checksum"):
                raise CacheCorruptionError(str(path), "checksum mismatch")
            return result_from_json(payload)
        # Legacy entry written before checksumming: parse directly.
        return result_from_json(text)

    def load_key(self, key: str) -> SimResult | None:
        """Return the result stored under ``key`` or None.

        Corrupt or refused entries are quarantined under
        ``<dir>/quarantine/`` and counted on :attr:`quarantined`; the
        load simply misses.
        """
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except UnicodeDecodeError:
            # Garbled beyond UTF-8: corrupt, same as a failed checksum.
            self._quarantine_entry(path, "not valid UTF-8")
            return None
        try:
            return self._parse(path, text)
        except Exception as exc:  # noqa: BLE001 — corrupt entry, not fatal
            self._quarantine_entry(path, str(exc))
            return None

    def _quarantine_entry(self, path: Path, reason: str) -> None:
        try:
            _quarantine(path)
            self.quarantined += 1
            obs_events.emit("store_quarantine", data={
                "path": str(path), "reason": reason})
        except OSError:
            pass

    def load(self, workload: str, config: SimConfig, trace_length: int,
             seed: int, variant: str = "") -> SimResult | None:
        """Return a stored result or None; corrupt files are quarantined."""
        return self.load_key(self._key(workload, config, trace_length,
                                       seed, variant))

    def store_key(self, key: str, result: SimResult,
                  meta: dict | None = None) -> None:
        """Store ``result`` under a precomputed key.

        ``meta`` adds envelope fields alongside ``checksum``/``payload``
        (the serving cache records the originating request and the
        result schema version there); the payload checksum always wins
        on conflict.
        """
        path = self._path(key)
        payload = result_to_json(result)
        fields = dict(meta) if meta else {}
        fields.update({
            "checksum": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        })
        _atomic_write(self.directory, path, json.dumps(fields))

    def store(self, workload: str, config: SimConfig, trace_length: int,
              seed: int, result: SimResult, variant: str = "") -> None:
        self.store_key(self._key(workload, config, trace_length, seed,
                                 variant), result)

    def clear(self) -> int:
        """Delete all stored results; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.result.json"):
            path.unlink()
            removed += 1
        return removed

    def quarantined_files(self) -> list[Path]:
        """Entries quarantined as corrupt (for post-mortem inspection)."""
        qdir = self.directory / QUARANTINE_DIR
        if not qdir.exists():
            return []
        return sorted(qdir.iterdir())


class SweepManifest:
    """Atomic on-disk checkpoint of one sweep's per-point progress.

    The manifest maps point keys (see :func:`result_key`) to a terminal
    status (``done`` or ``failed``).  It is rewritten atomically after
    every state change, so a sweep killed mid-run leaves a consistent
    file behind; a corrupt manifest is quarantined and treated as empty
    (resume then falls back on the result store alone).

    ``meta`` records the sweep identity the manifest belongs to (trace
    length, seed, point count, a digest of the point keys).  Reopening
    an existing manifest with *different* metadata raises
    :class:`~repro.errors.ReproError` — previously a checkpoint from
    one sweep silently steered another (e.g. after changing
    ``persist_dir`` or the point set between resume runs), skipping
    points that were never actually computed for the current spec.
    """

    _VERSION = 2

    def __init__(self, path: str | Path,
                 meta: dict | None = None):
        self.path = Path(path)
        self.done: set[str] = set()
        self.failed: dict[str, str] = {}
        self.meta: dict = dict(meta) if meta else {}
        self._load(expected_meta=dict(meta) if meta else None)

    def _load(self, expected_meta: dict | None = None) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError:
            return
        try:
            data = json.loads(text)
            if not isinstance(data, dict) or "done" not in data:
                raise ValueError("missing keys")
            done = set(data["done"])
            failed = dict(data.get("failed", {}))
            stored_meta = dict(data.get("meta", {}))
        except (ValueError, TypeError):
            try:
                _quarantine(self.path)
            except OSError:
                pass
            return
        if expected_meta is not None and stored_meta:
            mismatched = sorted(
                field for field in expected_meta
                if field in stored_meta
                and stored_meta[field] != expected_meta[field])
            if mismatched:
                from repro.errors import ReproError

                detail = ", ".join(
                    f"{field}: checkpoint has "
                    f"{stored_meta[field]!r}, current sweep has "
                    f"{expected_meta[field]!r}"
                    for field in mismatched)
                raise ReproError(
                    f"checkpoint {self.path} belongs to a different "
                    f"sweep ({detail}); point a fresh checkpoint path "
                    f"at this sweep or delete the stale manifest")
        self.done = done
        self.failed = failed
        if stored_meta and not self.meta:
            self.meta = stored_meta

    def save(self) -> None:
        payload = json.dumps({
            "version": self._VERSION,
            "meta": self.meta,
            "done": sorted(self.done),
            "failed": self.failed,
        }, indent=1, sort_keys=True)
        _atomic_write(self.path.parent, self.path, payload)

    def mark_done(self, key: str) -> None:
        self.done.add(key)
        self.failed.pop(key, None)
        self.save()

    def mark_failed(self, key: str, error: str) -> None:
        self.done.discard(key)
        self.failed[key] = error
        self.save()
