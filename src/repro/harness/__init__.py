"""Experiment harness: techniques, runners, reports, and the E1..E22 registry."""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentTable,
    run_experiment,
)
from repro.harness.parallel import SweepPoint, parallel_sweep
from repro.harness.persist import ResultStore
from repro.harness.report import generate_report
from repro.harness.runner import Runner, default_trace_length, geomean
from repro.harness.techniques import (
    TECHNIQUE_ORDER,
    TECHNIQUES,
    technique_config,
)

__all__ = [
    "Runner",
    "parallel_sweep",
    "SweepPoint",
    "ResultStore",
    "generate_report",
    "default_trace_length",
    "geomean",
    "TECHNIQUES",
    "TECHNIQUE_ORDER",
    "technique_config",
    "EXPERIMENTS",
    "ExperimentTable",
    "run_experiment",
]
