"""Experiment harness: techniques, runners, reports, and the E1..E22 registry."""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentTable,
    run_experiment,
)
from repro.harness.parallel import (
    PointFailure,
    SweepOutcome,
    SweepPoint,
    parallel_sweep,
)
from repro.cachekey import cache_key, shard_variant
from repro.harness.persist import ResultStore, SweepManifest, result_key
from repro.harness.report import generate_report
from repro.harness.runner import Runner, default_trace_length, geomean
from repro.harness.shard_runner import run_sharded, run_sharded_workload
from repro.spec import ExperimentSpec, Point, normalize_points
from repro.harness.supervise import (
    AttemptRecord,
    RetryPolicy,
    TaskFailure,
    run_supervised,
)
from repro.harness.techniques import (
    TECHNIQUE_ORDER,
    TECHNIQUES,
    technique_config,
)

__all__ = [
    "Runner",
    "Point",
    "ExperimentSpec",
    "normalize_points",
    "run_sharded",
    "run_sharded_workload",
    "parallel_sweep",
    "SweepPoint",
    "SweepOutcome",
    "PointFailure",
    "RetryPolicy",
    "AttemptRecord",
    "TaskFailure",
    "run_supervised",
    "ResultStore",
    "SweepManifest",
    "result_key",
    "cache_key",
    "shard_variant",
    "generate_report",
    "default_trace_length",
    "geomean",
    "TECHNIQUES",
    "TECHNIQUE_ORDER",
    "technique_config",
    "EXPERIMENTS",
    "ExperimentTable",
    "run_experiment",
]
