"""Multiprocess sweep execution.

Full-length sweeps (``REPRO_FULL=1``) are embarrassingly parallel across
(workload, configuration) points.  :func:`parallel_sweep` fans the points
out over a process pool; each worker builds (or loads from the shared
on-disk cache) its own trace and returns the :class:`SimResult`, which is
picklable by construction (plain dataclass of ints/floats/dicts).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.config import SimConfig
from repro.sim import SimResult, run_simulation
from repro.workloads import build_trace

__all__ = ["parallel_sweep", "SweepPoint"]

SweepPoint = tuple[str, SimConfig]


def _run_point(point: SweepPoint, trace_length: int,
               seed: int, warmup: int) -> SimResult:
    """Worker: simulate one (workload, config) point."""
    workload, config = point
    if warmup and config.warmup_instructions == 0:
        config = config.replace(warmup_instructions=warmup)
    trace = build_trace(workload, trace_length, seed=seed)
    return run_simulation(trace, config, name=workload)


def parallel_sweep(points: list[SweepPoint], trace_length: int = 60_000,
                   seed: int = 1, warmup: int | None = None,
                   processes: int | None = None,
                   ) -> dict[SweepPoint, SimResult]:
    """Run every (workload, config) point, fanned across processes.

    With ``processes=1`` (or a single point) everything runs inline —
    useful for tests and debugging.  Returns a dict keyed by the input
    points.  Duplicate points are simulated once.
    """
    if warmup is None:
        warmup = trace_length // 5
    unique = list(dict.fromkeys(points))
    if processes == 1 or len(unique) <= 1:
        results = [_run_point(p, trace_length, seed, warmup)
                   for p in unique]
    else:
        with ProcessPoolExecutor(max_workers=processes) as pool:
            futures = [pool.submit(_run_point, p, trace_length, seed,
                                   warmup) for p in unique]
            results = [f.result() for f in futures]
    return dict(zip(unique, results))
