"""Fault-tolerant multiprocess sweep execution.

Full-length sweeps (``REPRO_FULL=1``) are embarrassingly parallel across
(workload, configuration) points.  :func:`parallel_sweep` fans the points
out over a *supervised* process pool (see
:mod:`repro.harness.supervise`): per-point wall-clock timeouts, bounded
retry with exponential backoff and deterministic jitter, worker-death
detection with pool rebuild, and graceful degradation — a point that
exhausts its retries becomes a structured :class:`PointFailure` instead
of aborting the sweep.

The return value is a :class:`SweepOutcome`.  It behaves as a read-only
mapping ``{point: SimResult}`` over the *completed* points (so existing
callers keep working) and additionally carries the failure records and
execution counters (completed/retried/failed/resumed/...).

With a :class:`~repro.harness.persist.ResultStore` and a checkpoint
path, completed points are persisted as they finish and a
:class:`~repro.harness.persist.SweepManifest` tracks progress, so an
interrupted sweep rerun with ``resume=True`` re-simulates only the
unfinished points.

Workers validate their result against the simulator's structural
invariants (:func:`repro.sim.guard_invariants`) before returning, so a
counter-corrupting bug surfaces as a classifiable, diagnostics-carrying
point failure rather than an ``AssertionError`` escaping the pool.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.config import SimConfig
from repro.harness.persist import ResultStore, SweepManifest, result_key
from repro.harness.supervise import (
    AttemptRecord,
    RetryPolicy,
    TaskFailure,
    run_supervised,
)
# Bound as a module-level name (rather than called through repro.api)
# so tests can monkeypatch `repro.harness.parallel.simulate`.
from repro.api import simulate
from repro.errors import ReproError, RetryExhaustedError
from repro.obs import events as obs_events
from repro.sim import SimResult, guard_invariants
from repro.stats.sweep import merge_counters, summary_line
from repro.workloads import build_trace

__all__ = [
    "parallel_sweep",
    "SweepPoint",
    "SweepOutcome",
    "PointFailure",
    "RetryPolicy",
]

SweepPoint = tuple[str, SimConfig]


@dataclass
class PointFailure:
    """One (workload, config) point that failed after all retries."""

    workload: str
    config: SimConfig
    key: str
    attempts: list[AttemptRecord] = field(default_factory=list)

    @property
    def error_type(self) -> str:
        return self.attempts[-1].error_type if self.attempts else "unknown"

    @property
    def message(self) -> str:
        return self.attempts[-1].message if self.attempts else ""

    def as_error(self) -> RetryExhaustedError:
        return RetryExhaustedError(self.key, self.attempts)


class SweepOutcome(Mapping):
    """Completed results plus per-point failures and execution counters.

    Mapping access (``outcome[point]``, ``len``, iteration) covers the
    completed points only; ``failures`` lists what could not be computed.
    """

    def __init__(self, results: dict[SweepPoint, SimResult],
                 failures: list[PointFailure],
                 counters: dict[str, int]):
        self.results = results
        self.failures = failures
        self.counters = counters

    def __getitem__(self, point: SweepPoint) -> SimResult:
        return self.results[point]

    def __iter__(self) -> Iterator[SweepPoint]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        """One-line completed/retried/failed report for logs and the CLI."""
        return summary_line(self.counters)

    def raise_if_failed(self) -> None:
        """Raise :class:`RetryExhaustedError` for the first failed point."""
        if self.failures:
            raise self.failures[0].as_error()

    def __repr__(self) -> str:
        return (f"SweepOutcome(completed={len(self.results)}, "
                f"failed={len(self.failures)})")


def _effective_config(config: SimConfig, warmup: int) -> SimConfig:
    """The config a point actually runs (default warm-up injected)."""
    if warmup and config.warmup_instructions == 0:
        return config.replace(warmup_instructions=warmup)
    return config


def _run_point(workload: str, config: SimConfig, trace_length: int,
               seed: int, verify_invariants: bool,
               checkpoint_dir: str | None = None,
               checkpoint_interval: int = 0) -> SimResult:
    """Worker: simulate one (workload, config) point and validate it.

    With ``checkpoint_dir`` the point runs through the machine
    checkpointer: snapshots every ``checkpoint_interval`` cycles (when
    the config does not already set its own), heartbeats for the
    supervisor's stall probe, and resume from the latest snapshot when
    this attempt follows a killed one.  The result is bit-identical to
    an uncheckpointed run, so the cadence stays out of the point's
    cache/store identity (the caller keys results by ``config``, not by
    the run config used here).
    """
    trace = build_trace(workload, trace_length, seed=seed)
    if checkpoint_dir is not None:
        from repro.sim.checkpoint import run_with_checkpoints

        run_config = config
        if checkpoint_interval > 0 and config.checkpoint_interval == 0:
            run_config = config.replace(
                checkpoint_interval=checkpoint_interval)
        result = run_with_checkpoints(trace, run_config,
                                      directory=checkpoint_dir,
                                      name=workload).result
    else:
        result = simulate(trace, config, name=workload)
    if verify_invariants:
        guard_invariants(result,
                         warmed_up=config.warmup_instructions > 0,
                         context=workload)
    return result


def _manifest_path(checkpoint: str | Path, keys: list[str],
                   trace_length: int, seed: int) -> Path:
    """Manifest location for this sweep's identity under ``checkpoint``.

    A directory gets a per-sweep file named from the point-set identity;
    an explicit ``*.json`` path is used as-is.
    """
    checkpoint = Path(checkpoint)
    if checkpoint.suffix == ".json":
        return checkpoint
    identity = f"{trace_length}|{seed}|" + "|".join(sorted(keys))
    digest = hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]
    return checkpoint / f"sweep-{digest}.manifest.json"


#: Default snapshot cadence (cycles) for machine-checkpointed sweeps.
DEFAULT_CHECKPOINT_INTERVAL = 100_000


def parallel_sweep(points: list[SweepPoint], trace_length: int = 60_000,
                   seed: int = 1, warmup: int | None = None,
                   processes: int | None = None, *,
                   max_retries: int = 2,
                   point_timeout: float | None = None,
                   policy: RetryPolicy | None = None,
                   store: ResultStore | None = None,
                   checkpoint: str | Path | None = None,
                   resume: bool = False,
                   machine_checkpoints: str | Path | None = None,
                   checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                   verify_invariants: bool = True) -> SweepOutcome:
    """Run every (workload, config) point under supervision.

    With ``processes=1`` (or a single point) everything runs inline —
    useful for tests and debugging (timeouts are not enforced inline).
    Duplicate points are simulated once.

    ``store`` persists each completed point; ``checkpoint`` (a directory
    or explicit ``*.json`` path) additionally maintains a
    :class:`SweepManifest` stamped with this sweep's identity — reusing
    a checkpoint file across different sweeps raises
    :class:`~repro.errors.ReproError`.  With ``resume=True``, points
    already present in the store are loaded instead of re-simulated;
    resuming without a store is an error (there would be nothing to
    resume from).

    ``machine_checkpoints`` turns on *in-run* machine snapshots (see
    :mod:`repro.sim.checkpoint`): each point writes a resumable machine
    snapshot every ``checkpoint_interval`` cycles into its own
    subdirectory, so a killed or hung worker's retry continues from the
    latest snapshot instead of cycle 0 — with a bit-identical final
    result.  The snapshot heartbeats also feed the supervisor's
    slow-vs-stuck probe, so a progressing point never dies to
    ``point_timeout``.  The outcome's counters gain ``snapshots``,
    ``ckpt_resumes``, and ``stalls``.
    """
    if resume and store is None:
        raise ReproError(
            "resume=True requires a persistent result store (pass "
            "persist_dir / store, or set REPRO_RESULT_CACHE); without "
            "one there are no saved results to resume from")
    if warmup is None:
        warmup = trace_length // 5
    if policy is None:
        policy = RetryPolicy(max_retries=max_retries,
                             point_timeout=point_timeout)

    unique = list(dict.fromkeys(points))
    effective = {point: _effective_config(point[1], warmup)
                 for point in unique}
    keys = {point: result_key(point[0], effective[point], trace_length,
                              seed)
            for point in unique}
    by_key = {key: point for point, key in keys.items()}

    manifest = None
    if checkpoint is not None:
        key_digest = hashlib.sha256(
            "|".join(sorted(keys.values())).encode("utf-8")
        ).hexdigest()[:16]
        manifest = SweepManifest(
            _manifest_path(checkpoint, list(keys.values()), trace_length,
                           seed),
            meta={"trace_length": trace_length, "seed": seed,
                  "points": len(unique), "keys_digest": key_digest,
                  "store": str(store.directory) if store else None})

    results: dict[SweepPoint, SimResult] = {}
    failures: list[PointFailure] = []
    resumed = 0
    ckpt_counters = {"snapshots": 0, "ckpt_resumes": 0}

    def point_dir(key: str) -> Path:
        assert machine_checkpoints is not None
        return Path(machine_checkpoints) / key

    todo = []
    for point in unique:
        key = keys[point]
        if resume and store is not None:
            cached = store.load(point[0], effective[point], trace_length,
                                seed)
            if cached is not None:
                results[point] = cached
                resumed += 1
                if manifest is not None and key not in manifest.done:
                    manifest.mark_done(key)
                continue
        args = (point[0], effective[point], trace_length, seed,
                verify_invariants)
        if machine_checkpoints is not None:
            args += (str(point_dir(key)), checkpoint_interval)
        todo.append((key, args))

    progress = None
    if machine_checkpoints is not None:
        from repro.sim.checkpoint import read_heartbeat

        def _heartbeat_progress(key: str):
            beat = read_heartbeat(point_dir(key))
            if beat is None:
                return None
            return (beat.get("cycle"), beat.get("retired"))

        progress = _heartbeat_progress

    def on_success(key: str, result: SimResult) -> None:
        point = by_key[key]
        results[point] = result
        if store is not None:
            store.store(point[0], effective[point], trace_length, seed,
                        result)
        if manifest is not None:
            manifest.mark_done(key)
        if machine_checkpoints is not None:
            from repro.sim.checkpoint import read_summary

            summary = read_summary(point_dir(key))
            if summary is not None:
                ckpt_counters["snapshots"] += int(
                    summary.get("snapshots", 0))
                if summary.get("resumed_from_cycle") is not None:
                    ckpt_counters["ckpt_resumes"] += 1

    def on_failure(key: str, failure: TaskFailure) -> None:
        point = by_key[key]
        failures.append(PointFailure(point[0], point[1], key,
                                     failure.attempts))
        if manifest is not None:
            manifest.mark_failed(
                key, f"{failure.error_type}: {failure.message}")

    if processes is None and len(todo) <= 1:
        # No parallelism to exploit; skip the pool (the worker is trusted
        # simulator code, so inline execution is safe).
        processes = 1
    obs_events.emit("sweep_start", data={
        "points": len(unique), "todo": len(todo), "resumed": resumed,
        "trace_length": trace_length, "seed": seed})
    supervised = run_supervised(_run_point, todo, processes=processes,
                                policy=policy, on_success=on_success,
                                on_failure=on_failure, progress=progress)

    counters = merge_counters(supervised.counters,
                              {"points": len(unique), "resumed": resumed},
                              ckpt_counters)
    obs_events.emit("sweep_end", data=dict(counters))
    return SweepOutcome(results, failures, counters)
