"""Crash-safe filesystem primitives shared by the persistence layers.

Both the result store (:mod:`repro.harness.persist`) and the in-run
machine checkpointer (:mod:`repro.sim.checkpoint`) need the same two
building blocks:

- :func:`atomic_write_text` — write-to-temp + ``os.replace`` so readers
  never observe a half-written file.  With ``durable=True`` the data and
  the directory entry are ``fsync``\\ ed before returning, so the file
  survives a machine crash (not just a process crash) — required for
  machine checkpoints, whose whole purpose is to outlive a kill.
- :func:`quarantine` — move a corrupt file into a ``quarantine/``
  subdirectory for post-mortem instead of silently deleting it.

They live here (below both the harness and the simulator) so neither
layer has to import the other.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text", "quarantine", "QUARANTINE_DIR"]

QUARANTINE_DIR = "quarantine"


def atomic_write_text(directory: Path, path: Path, text: str, *,
                      durable: bool = False) -> None:
    """Write ``text`` to ``path`` via a unique temp file + atomic replace.

    A unique per-writer temp file (not a shared ``.tmp`` path) keeps
    concurrent writers of the same target from racing.  ``durable=True``
    additionally fsyncs the file contents before the replace and the
    directory entry after it.
    """
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=f".{path.stem}.",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if durable:
        dir_fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def quarantine(path: Path) -> Path:
    """Move a corrupt file into the quarantine subdirectory."""
    qdir = path.parent / QUARANTINE_DIR
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = qdir / f"{path.name}.{suffix}"
    os.replace(path, target)
    return target
