"""Binary trace file format.

Layout of a ``.trace.gz`` file (gzip-compressed):

- one UTF-8 JSON header line terminated by ``\\n`` with keys ``magic``,
  ``version``, ``name``, ``seed``, ``count``;
- ``count`` fixed-width records, each ``<QBBQ``: pc (u64), kind (u8),
  taken (u8), next_pc (u64), little endian.

The format is deliberately simple: it round-trips exactly, detects
truncation, and rejects files written by other tools or other versions.
"""

from __future__ import annotations

import gzip
import json
import struct
from pathlib import Path

from repro.errors import TraceError
from repro.isa import InstrKind
from repro.trace.records import TraceRecord
from repro.trace.stream import Trace

__all__ = ["write_trace", "read_trace", "TRACE_MAGIC", "TRACE_VERSION"]

TRACE_MAGIC = "repro-trace"
TRACE_VERSION = 1

_RECORD = struct.Struct("<QBBQ")


def write_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` (parent directory must exist)."""
    header = {
        "magic": TRACE_MAGIC,
        "version": TRACE_VERSION,
        "name": trace.name,
        "seed": trace.seed,
        "count": len(trace),
    }
    with gzip.open(path, "wb") as out:
        out.write(json.dumps(header).encode("utf-8"))
        out.write(b"\n")
        pack = _RECORD.pack
        for record in trace:
            out.write(pack(record.pc, int(record.kind),
                           int(record.taken), record.next_pc))


def read_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`write_trace`."""
    path = Path(path)
    try:
        with gzip.open(path, "rb") as inp:
            header_line = inp.readline()
            try:
                header = json.loads(header_line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TraceError(f"{path}: malformed trace header") from exc
            if header.get("magic") != TRACE_MAGIC:
                raise TraceError(f"{path}: not a repro trace file")
            if header.get("version") != TRACE_VERSION:
                raise TraceError(
                    f"{path}: unsupported trace version "
                    f"{header.get('version')!r}")
            count = header.get("count")
            if not isinstance(count, int) or count < 0:
                raise TraceError(
                    f"{path}: malformed trace header: 'count' must be a "
                    f"non-negative integer, got {count!r}")
            name = header.get("name")
            seed = header.get("seed")
            if not isinstance(name, str) or not isinstance(seed, int):
                raise TraceError(
                    f"{path}: malformed trace header: missing or invalid "
                    f"'name'/'seed'")
            payload = inp.read(count * _RECORD.size + 1)
    except OSError as exc:
        # Covers unreadable files and gzip-level corruption (BadGzipFile
        # is an OSError), including payloads truncated mid-member.
        raise TraceError(f"{path}: cannot read trace: {exc}") from exc

    if len(payload) < count * _RECORD.size:
        complete = len(payload) // _RECORD.size
        offset = len(header_line) + complete * _RECORD.size
        raise TraceError(
            f"{path}: truncated trace: header promises {count} records "
            f"but only {complete} are complete; data ends at "
            f"uncompressed byte offset {offset + len(payload) % _RECORD.size} "
            f"(record boundary at {offset})")
    if len(payload) > count * _RECORD.size:
        offset = len(header_line) + count * _RECORD.size
        raise TraceError(
            f"{path}: trailing data after the {count} promised records "
            f"(from uncompressed byte offset {offset})")

    try:
        records = [
            TraceRecord(pc, InstrKind(kind), bool(taken), next_pc)
            for pc, kind, taken, next_pc in _RECORD.iter_unpack(payload)
        ]
    except ValueError as exc:
        raise TraceError(
            f"{path}: corrupt record payload: {exc}") from None
    return Trace(records, name=name, seed=seed)
