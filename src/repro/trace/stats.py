"""Trace characterization.

Computes the workload table the paper-style evaluation reports: dynamic
instruction mix, control-flow density, taken rate, instruction footprint
(distinct addresses and distinct cache blocks), and the branch target
offset distribution.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import Histogram
from repro.trace.stream import Trace

__all__ = ["TraceStats", "characterize"]


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one trace."""

    name: str
    n_records: int
    kind_counts: dict[InstrKind, int]
    control_fraction: float
    taken_fraction: float
    distinct_pcs: int
    footprint_bytes: int
    distinct_blocks: int
    block_bytes: int
    offset_bits: Histogram

    @property
    def footprint_kb(self) -> float:
        return self.footprint_bytes / 1024.0

    @property
    def block_footprint_bytes(self) -> int:
        return self.distinct_blocks * self.block_bytes

    def mix_fraction(self, kind: InstrKind) -> float:
        if self.n_records == 0:
            return 0.0
        return self.kind_counts.get(kind, 0) / self.n_records


def _offset_bits(distance_instrs: int) -> int:
    """Bits needed to encode a signed branch offset in instructions."""
    magnitude = abs(distance_instrs)
    bits = 0
    while magnitude:
        bits += 1
        magnitude >>= 1
    return bits


def characterize(trace: Trace, block_bytes: int = 32) -> TraceStats:
    """Compute :class:`TraceStats` for ``trace``.

    ``block_bytes`` sets the cache block size used for the block-footprint
    figures (matching the L1-I geometry being simulated).
    """
    kind_counts: Counter[InstrKind] = Counter()
    pcs = set()
    blocks = set()
    control = 0
    taken = 0
    offsets = Histogram()
    for record in trace:
        kind_counts[record.kind] += 1
        pcs.add(record.pc)
        blocks.add(record.pc // block_bytes)
        if record.kind.is_control:
            control += 1
            if record.taken:
                taken += 1
                distance = ((record.next_pc - record.pc)
                            // INSTRUCTION_BYTES)
                offsets.observe(_offset_bits(distance))
    n = len(trace)
    return TraceStats(
        name=trace.name,
        n_records=n,
        kind_counts=dict(kind_counts),
        control_fraction=control / n if n else 0.0,
        taken_fraction=taken / control if control else 0.0,
        distinct_pcs=len(pcs),
        footprint_bytes=len(pcs) * INSTRUCTION_BYTES,
        distinct_blocks=len(blocks),
        block_bytes=block_bytes,
        offset_bits=offsets,
    )
