"""Trace comparison utilities.

Used to verify determinism guarantees (same program + seed must produce
identical traces across versions/machines) and to debug generator or
walker changes: :func:`diff_traces` reports the first divergence and a
summary of how different two traces are.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.stream import Trace

__all__ = ["TraceDiff", "diff_traces", "traces_equal"]


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of comparing two traces."""

    identical: bool
    length_a: int
    length_b: int
    first_divergence: int | None      # record index, None if none
    divergent_records: int            # count over the common prefix
    detail: str

    def __bool__(self) -> bool:
        """Truthy when the traces DIFFER (like a diff tool's exit)."""
        return not self.identical


def traces_equal(a: Trace, b: Trace) -> bool:
    """Exact record-level equality (metadata ignored)."""
    return a.records == b.records


def diff_traces(a: Trace, b: Trace, max_detail: int = 3) -> TraceDiff:
    """Compare two traces record by record.

    ``detail`` holds a human-readable description of up to
    ``max_detail`` divergent positions.
    """
    common = min(len(a), len(b))
    first = None
    divergent = 0
    lines: list[str] = []
    for index in range(common):
        if a[index] != b[index]:
            divergent += 1
            if first is None:
                first = index
            if len(lines) < max_detail:
                lines.append(f"  @{index}: {a[index]!r} != {b[index]!r}")
    if len(a) != len(b):
        lines.append(f"  lengths differ: {len(a)} vs {len(b)}")
    identical = divergent == 0 and len(a) == len(b)
    if identical:
        detail = "identical"
    else:
        where = "nowhere in common prefix" if first is None \
            else f"first at record {first}"
        detail = (f"{divergent} divergent of {common} compared "
                  f"({where})\n" + "\n".join(lines))
    return TraceDiff(
        identical=identical,
        length_a=len(a),
        length_b=len(b),
        first_divergence=first,
        divergent_records=divergent,
        detail=detail,
    )
