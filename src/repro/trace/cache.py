"""On-disk trace cache.

Walking a synthetic program for millions of instructions takes seconds;
benchmark sweeps re-use the same traces dozens of times.  The cache stores
traces under a key derived from how they were built, so any change to the
build parameters produces a different file.

The cache directory defaults to ``.trace_cache`` in the current working
directory and can be overridden with the ``REPRO_TRACE_CACHE`` environment
variable.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Callable

from repro.trace.io import read_trace, write_trace
from repro.trace.stream import Trace

__all__ = ["TraceCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """The trace cache directory (env override, else ``./.trace_cache``)."""
    override = os.environ.get("REPRO_TRACE_CACHE")
    if override:
        return Path(override)
    return Path.cwd() / ".trace_cache"


class TraceCache:
    """Content-addressed store of built traces."""

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory else default_cache_dir()

    def _path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return self.directory / f"{digest}.trace.gz"

    def get_or_build(self, key: str, builder: Callable[[], Trace]) -> Trace:
        """Return the cached trace for ``key``, building it on a miss.

        A corrupt cached file is rebuilt and overwritten rather than
        raised, so stale caches never break an experiment run.
        """
        path = self._path_for(key)
        if path.exists():
            try:
                return read_trace(path)
            except Exception:
                path.unlink(missing_ok=True)
        trace = builder()
        self.directory.mkdir(parents=True, exist_ok=True)
        # Unique-per-writer temp file: concurrent sweep workers may build
        # the same trace, and a shared temp name would let their writes
        # interleave (or one replace() race the other's).
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=f".{path.stem}.",
                                        suffix=".tmp")
        os.close(fd)
        tmp = Path(tmp_name)
        try:
            write_trace(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        return trace

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        if not self.directory.exists():
            return 0
        removed = 0
        for path in self.directory.glob("*.trace.gz"):
            path.unlink()
            removed += 1
        return removed
