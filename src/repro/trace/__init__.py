"""Dynamic instruction traces: records, containers, IO, stats, caching."""

from repro.trace.cache import TraceCache, default_cache_dir
from repro.trace.compare import TraceDiff, diff_traces, traces_equal
from repro.trace.io import TRACE_MAGIC, TRACE_VERSION, read_trace, write_trace
from repro.trace.records import TraceRecord
from repro.trace.sampling import sample_trace, split_trace
from repro.trace.stats import TraceStats, characterize
from repro.trace.stream import Trace

__all__ = [
    "TraceRecord",
    "Trace",
    "TraceStats",
    "characterize",
    "read_trace",
    "write_trace",
    "TRACE_MAGIC",
    "TRACE_VERSION",
    "TraceCache",
    "sample_trace",
    "diff_traces",
    "traces_equal",
    "TraceDiff",
    "split_trace",
    "default_cache_dir",
]
