"""Dynamic trace records.

A trace is the committed (architecturally correct) instruction stream of one
program execution.  Each record carries exactly what a front-end simulator
needs: the instruction address, its kind, whether control transferred, and
the address of the next committed instruction.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.isa import INSTRUCTION_BYTES, InstrKind

__all__ = ["TraceRecord"]


class TraceRecord(NamedTuple):
    """One committed dynamic instruction.

    ``taken`` is True whenever control actually transferred (always True
    for unconditional control instructions, the outcome for conditional
    branches, always False for non-control instructions).  ``next_pc`` is
    the address of the next committed instruction, whatever the transfer.
    """

    pc: int
    kind: InstrKind
    taken: bool
    next_pc: int

    @property
    def is_control(self) -> bool:
        return self.kind.is_control

    @property
    def redirects(self) -> bool:
        """True when the next instruction is not sequential."""
        return self.next_pc != self.pc + INSTRUCTION_BYTES

    def __repr__(self) -> str:
        arrow = "->" if self.taken else "=>"
        return (f"TraceRecord({self.pc:#x} {self.kind.name} "
                f"{arrow} {self.next_pc:#x})")
