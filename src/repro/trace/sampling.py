"""Trace sampling.

Long traces can be reduced for quick studies using systematic sampling:
alternate *measured* windows of ``sample`` instructions with *skipped*
gaps of ``skip`` instructions.  This is the classic trace-driven
methodology compromise — cheaper runs at the cost of cold-structure
transients at each window start (which is why :func:`sample_trace` keeps
windows contiguous rather than shuffling records).
"""

from __future__ import annotations

from repro.errors import TraceError
from repro.trace.stream import Trace

__all__ = ["sample_trace", "split_trace"]


def sample_trace(trace: Trace, sample: int, skip: int) -> Trace:
    """Keep alternating windows: ``sample`` records kept, ``skip`` dropped.

    The first window starts at record 0.  Raises
    :class:`~repro.errors.TraceError` when the parameters are
    non-positive or nothing would be kept.
    """
    if sample < 1:
        raise TraceError("sample window must be >= 1")
    if skip < 0:
        raise TraceError("skip gap must be >= 0")
    if skip == 0:
        return trace
    records = trace.records
    kept = []
    period = sample + skip
    for start in range(0, len(records), period):
        kept.extend(records[start:start + sample])
    if not kept:
        raise TraceError("sampling kept no records")
    return Trace(kept, name=f"{trace.name}[sampled {sample}/{period}]",
                 seed=trace.seed)


def split_trace(trace: Trace, parts: int) -> list[Trace]:
    """Split a trace into ``parts`` contiguous, near-equal sub-traces.

    Useful for per-phase analysis or for distributing one long trace
    across workers.  Every record lands in exactly one part.
    """
    if parts < 1:
        raise TraceError("parts must be >= 1")
    if parts > len(trace):
        raise TraceError(
            f"cannot split {len(trace)} records into {parts} parts")
    chunk = len(trace) // parts
    remainder = len(trace) % parts
    pieces = []
    start = 0
    for index in range(parts):
        size = chunk + (1 if index < remainder else 0)
        pieces.append(trace.slice(start, start + size))
        start += size
    return pieces
