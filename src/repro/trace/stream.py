"""In-memory trace container.

A :class:`Trace` is an immutable-by-convention sequence of committed
:class:`~repro.trace.records.TraceRecord` values plus identifying metadata.
The simulator consumes traces by index (it needs random access to look ahead
for fetch-block construction), so the records live in a list.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.cfg.model import Program
from repro.cfg.walker import TraceWalker
from repro.errors import TraceError
from repro.trace.records import TraceRecord

__all__ = ["Trace"]


class Trace:
    """A named, seeded committed-instruction trace."""

    def __init__(self, records: Sequence[TraceRecord], name: str = "trace",
                 seed: int = 0):
        if not records:
            raise TraceError("a trace must contain at least one record")
        self.name = name
        self.seed = seed
        self._records = list(records)

    @classmethod
    def from_program(cls, program: Program, length: int, seed: int = 0,
                     name: str | None = None) -> "Trace":
        """Walk ``program`` for ``length`` committed instructions."""
        walker = TraceWalker(program, seed=seed)
        records = walker.walk(length)
        return cls(records, name=name or program.name, seed=seed)

    @property
    def records(self) -> list[TraceRecord]:
        """The underlying record list (treat as read-only)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def slice(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering records [start, stop)."""
        if not 0 <= start < stop <= len(self._records):
            raise TraceError(
                f"invalid slice [{start}, {stop}) of a trace with "
                f"{len(self._records)} records")
        return Trace(self._records[start:stop],
                     name=f"{self.name}[{start}:{stop}]", seed=self.seed)

    def __repr__(self) -> str:
        return (f"Trace({self.name!r}, records={len(self._records)}, "
                f"seed={self.seed})")
