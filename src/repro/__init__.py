"""repro — Fetch Directed Instruction Prefetching (MICRO-32, 1999).

A from-scratch reproduction of Reinman, Calder and Austin's fetch-directed
instruction prefetching: a decoupled front end (fetch target buffer +
hybrid direction predictor + return address stack feeding a fetch target
queue), the FDIP prefetch engine with cache probe filtering, the classic
baselines it was evaluated against (tagged next-line prefetching and
stream buffers), and the cycle-level cache/bus/core substrate everything
runs on — driven by seeded synthetic workload traces.

Quickstart::

    from repro import SimConfig, PrefetchConfig, simulate
    from repro.workloads import build_trace

    trace = build_trace("gcc_like", length=200_000)
    config = SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                               filter_mode="enqueue"))
    result = simulate(trace, config)
    print(result.ipc, result.l1i_mpki)

The stable programmatic surface lives in :mod:`repro.api`
(:func:`simulate`, :func:`sweep`, :func:`~repro.api.make_runner`).
The long-deprecated ``run_simulation`` alias has been removed; call
:func:`simulate` (same signature and behavior).  Structured
observability — the event log, span tracing, and the cycle profiler —
lives in :mod:`repro.obs` (see ``docs/observability.md``).
"""

from repro.config import (
    CacheGeometry,
    CoreConfig,
    FilterMode,
    FrontEndConfig,
    MemoryConfig,
    PredictorConfig,
    PrefetchConfig,
    PrefetcherKind,
    SimConfig,
)
from repro.errors import (
    ConfigError,
    GenerationError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.api import (
    ExperimentSpec,
    Point,
    RunRequest,
    RunResponse,
    TelemetryNode,
    TelemetrySnapshot,
    execute,
    make_runner,
    merge_snapshots,
    profile_run,
    resolve_request,
    simulate,
    sweep,
)
from repro.sim import SimResult, Simulator
from repro.trace import Trace, TraceRecord, characterize

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # configuration
    "SimConfig",
    "CoreConfig",
    "FrontEndConfig",
    "PredictorConfig",
    "MemoryConfig",
    "CacheGeometry",
    "PrefetchConfig",
    "PrefetcherKind",
    "FilterMode",
    # simulation
    "Simulator",
    "SimResult",
    "simulate",
    "sweep",
    "make_runner",
    "profile_run",
    "execute",
    # experiment specs and typed requests
    "Point",
    "ExperimentSpec",
    "RunRequest",
    "RunResponse",
    "resolve_request",
    # telemetry
    "TelemetryNode",
    "TelemetrySnapshot",
    "merge_snapshots",
    # traces
    "Trace",
    "TraceRecord",
    "characterize",
    # errors
    "ReproError",
    "ConfigError",
    "TraceError",
    "GenerationError",
    "SimulationError",
]

# Removed names get an AttributeError with a migration hint instead of
# the bare "module has no attribute" — the cheapest possible docs.
_REMOVED = {
    "run_simulation": (
        "repro.run_simulation was removed; call repro.simulate(trace, "
        "config, name=...) instead (same signature and behavior)"),
}


def __getattr__(name: str):
    if name in _REMOVED:
        raise AttributeError(_REMOVED[name])
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
