"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed or exhausted unexpectedly."""


class GenerationError(ReproError):
    """The synthetic program generator was given unsatisfiable parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the simulator (or a hand-built component
    wired incorrectly), never a property of the simulated workload.
    """


class SweepExecutionError(ReproError):
    """Base class for failures of the fault-tolerant sweep executor.

    These describe *how a point failed to execute* (timed out, crashed,
    exhausted its retries), as opposed to what was wrong with the model
    or its inputs.
    """


class PointTimeoutError(SweepExecutionError):
    """A sweep point exceeded its per-attempt wall-clock timeout."""

    def __init__(self, key: str, timeout: float):
        self.key = key
        self.timeout = timeout
        super().__init__(
            f"point {key!r} exceeded its {timeout:g}s wall-clock timeout")


class WorkerCrashError(SweepExecutionError):
    """A worker process died (segfault, ``os._exit``, OOM-kill, ...).

    When a process-pool worker dies, every task in flight on that pool is
    reported with this error — the pool cannot attribute the death to one
    task, so innocent in-flight tasks are retried alongside the culprit.
    """

    def __init__(self, key: str, detail: str = ""):
        self.key = key
        message = f"worker process died while running point {key!r}"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class CheckpointError(ReproError):
    """An in-run checkpoint could not be written, read, or applied.

    Raised when a snapshot file is truncated or fails its SHA-256
    checksum (the file is quarantined, not deleted), when a snapshot
    was written by an incompatible schema version, or when a snapshot's
    identity (trace, seed, config) does not match the run trying to
    resume from it.
    """

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"checkpoint {path}: {reason}")


class WatchdogStallError(SimulationError):
    """The no-progress watchdog fired: no instruction retired for an
    entire watchdog interval.

    Converts a livelocked simulation (the cycle counter advances but the
    machine retires nothing) into a typed, diagnosable failure instead
    of a silent hang until the cycle cap.  ``state`` carries a dump of
    the machine's scheduling state at the moment the watchdog fired.
    """

    def __init__(self, cycle: int, retired: int, interval: int,
                 state: dict | None = None):
        self.cycle = cycle
        self.retired = retired
        self.interval = interval
        self.state = dict(state or {})
        super().__init__(
            f"no instruction retired in {interval} cycles (cycle {cycle}, "
            f"retired {retired}); machine state: {self.state}")


class ObservabilityError(ReproError):
    """The structured-observability layer was misused or fed bad data.

    Raised for malformed event-log lines or Chrome-trace files, unknown
    event kinds or correlation fields, and invalid ``REPRO_LOG_*``
    values.  Never raised on the emission fast path once configured —
    a sink that stops accepting writes degrades silently instead of
    killing the simulation it observes.
    """


class ServeError(ReproError):
    """The simulation service was misused or reached a bad state.

    Covers malformed service requests (unknown workload, bad priority),
    protocol violations between the daemon and its clients, and
    lookups of job ids the service has never seen.
    """


class QueueFullError(ServeError):
    """The service's admission queue is at capacity.

    Raised synchronously at submit time (and mapped to HTTP 429 by the
    daemon) so an overloaded service rejects work explicitly instead of
    letting clients block on an unbounded backlog.
    """

    def __init__(self, depth: int, limit: int):
        self.depth = depth
        self.limit = limit
        super().__init__(
            f"service queue is full ({depth}/{limit} requests pending); "
            f"retry later or raise max_queue_depth")


class CacheCorruptionError(ReproError):
    """A persisted cache entry is corrupt (truncated, garbled, or failing
    its content checksum); the entry has been quarantined, not deleted."""

    def __init__(self, path: str, reason: str):
        self.path = path
        self.reason = reason
        super().__init__(f"corrupt cache entry {path}: {reason}")


class RetryExhaustedError(SweepExecutionError):
    """A point failed on every attempt the retry policy allowed.

    ``attempts`` records the full attempt history (one entry per try, each
    with the error type, message, and duration) so the failure can be
    diagnosed after the sweep completes.
    """

    def __init__(self, key: str, attempts: list):
        self.key = key
        self.attempts = list(attempts)
        last = self.attempts[-1] if self.attempts else None
        detail = (f"; last error: {last.error_type}: {last.message}"
                  if last is not None else "")
        super().__init__(
            f"point {key!r} failed after {len(self.attempts)} "
            f"attempt(s){detail}")
