"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent with another value."""


class TraceError(ReproError):
    """A trace file or trace stream is malformed or exhausted unexpectedly."""


class GenerationError(ReproError):
    """The synthetic program generator was given unsatisfiable parameters."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This always indicates a bug in the simulator (or a hand-built component
    wired incorrectly), never a property of the simulated workload.
    """
