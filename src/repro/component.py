"""The uniform machine-component protocol.

Every piece of the modeled machine — the fetch engine, the FTQ, the
prediction unit, the direction predictor and RAS, the FTB, the caches,
MSHR file and bus, every prefetcher, and the CPU backend — implements
:class:`Component`: it has a stable ``name``, can :meth:`~Component.reset`
its accumulated statistics (the simulator does this when the warm-up
region ends), and reports them as one
:class:`~repro.stats.telemetry.TelemetryNode` via
:meth:`~Component.telemetry`.

The simulator no longer reaches into component-owned
:class:`~repro.stats.counters.StatGroup` objects and merges them into a
flat namespace; it asks each top-level component for its telemetry node
and assembles the tree.  Composite components (the memory system, a
two-level FTB, the prediction unit) surface their parts through
:meth:`StatsComponent.sub_components`, which nests the children's nodes
and recurses resets.

``reset()`` clears *statistics only* — architectural state (cache
contents, predictor tables, queue occupancy) survives, which is exactly
what end-of-warm-up needs.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.stats.counters import StatGroup
from repro.stats.telemetry import TelemetryNode

__all__ = ["Component", "StatsComponent"]


@runtime_checkable
class Component(Protocol):
    """Anything that owns statistics and can report them as telemetry."""

    @property
    def name(self) -> str:
        """Stable telemetry name (``l1i``, ``ftq``, ``fetch`` ...)."""
        ...

    def reset(self) -> None:
        """Zero accumulated statistics (architectural state survives)."""
        ...

    def telemetry(self) -> TelemetryNode:
        """Snapshot current statistics as one telemetry (sub)tree."""
        ...


class StatsComponent:
    """Default :class:`Component` wiring over one :class:`StatGroup`.

    Subclasses own ``self.stats`` (created in their ``__init__``); the
    mixin derives ``name`` from the group, resets it (and every
    sub-component) on :meth:`reset`, and builds the telemetry node from
    the group, the :meth:`derived_metrics`, and the sub-components'
    nodes.  ``__slots__`` is empty so slotted subclasses stay slotted.
    """

    __slots__ = ()

    stats: StatGroup

    @property
    def name(self) -> str:
        return self.stats.name

    def sub_components(self) -> Sequence[Component]:
        """Nested components whose telemetry belongs under this node."""
        return ()

    def derived_metrics(self) -> dict[str, float]:
        """Derived ratios worth exporting (recomputable from counters)."""
        return {}

    def reset(self) -> None:
        self.stats.reset()
        for component in self.sub_components():
            component.reset()

    def telemetry(self) -> TelemetryNode:
        return TelemetryNode.from_stat_group(
            self.stats,
            derived=self.derived_metrics(),
            children=[c.telemetry() for c in self.sub_components()],
        )
