"""The uniform machine-component protocol.

Every piece of the modeled machine — the fetch engine, the FTQ, the
prediction unit, the direction predictor and RAS, the FTB, the caches,
MSHR file and bus, every prefetcher, and the CPU backend — implements
:class:`Component`: it has a stable ``name``, can :meth:`~Component.reset`
its accumulated statistics (the simulator does this when the warm-up
region ends), and reports them as one
:class:`~repro.stats.telemetry.TelemetryNode` via
:meth:`~Component.telemetry`.

The simulator no longer reaches into component-owned
:class:`~repro.stats.counters.StatGroup` objects and merges them into a
flat namespace; it asks each top-level component for its telemetry node
and assembles the tree.  Composite components (the memory system, a
two-level FTB, the prediction unit) surface their parts through
:meth:`StatsComponent.sub_components`, which nests the children's nodes
and recurses resets.

``reset()`` clears *statistics only* — architectural state (cache
contents, predictor tables, queue occupancy) survives, which is exactly
what end-of-warm-up needs.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.stats.counters import StatGroup
from repro.stats.telemetry import TelemetryNode

__all__ = ["Component", "StatsComponent"]


@runtime_checkable
class Component(Protocol):
    """Anything that owns statistics and can report them as telemetry."""

    @property
    def name(self) -> str:
        """Stable telemetry name (``l1i``, ``ftq``, ``fetch`` ...)."""
        ...

    def reset(self) -> None:
        """Zero accumulated statistics (architectural state survives)."""
        ...

    def telemetry(self) -> TelemetryNode:
        """Snapshot current statistics as one telemetry (sub)tree."""
        ...

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the component's *full* state.

        Unlike :meth:`telemetry` this captures architectural state too
        (queue contents, predictor tables, cache tags, in-flight
        events), so that :meth:`load_state_dict` can resume a run
        mid-flight with bit-identical results.
        """
        ...

    def load_state_dict(self, state: dict) -> None:
        """Restore the state captured by :meth:`state_dict`.

        Implementations mutate existing objects in place rather than
        rebinding them, so cross-component references (the memory
        system's sidecar, a prefetcher's buffer) stay intact.
        """
        ...

    def next_wake_cycle(self, now: int) -> int | None:
        """The component's wake contract (event-engine scheduling).

        The earliest future cycle at which this component can do more
        than bump a stall counter, *absent new input from the rest of
        the machine*.  ``None`` means the component has no
        self-scheduled work — only external input (a delivered fetch
        block, a squash, a fill) can wake it.  The event engine
        (``sim/events.py``) uses these bounds to tick only components
        with pending work and to jump provably idle spans analytically;
        the bound is only consulted in states the skip proof has
        already pinned (see ``sim/fastpath.py``).
        """
        ...


class StatsComponent:
    """Default :class:`Component` wiring over one :class:`StatGroup`.

    Subclasses own ``self.stats`` (created in their ``__init__``); the
    mixin derives ``name`` from the group, resets it (and every
    sub-component) on :meth:`reset`, and builds the telemetry node from
    the group, the :meth:`derived_metrics`, and the sub-components'
    nodes.  ``__slots__`` is empty so slotted subclasses stay slotted.
    """

    __slots__ = ()

    stats: StatGroup

    @property
    def name(self) -> str:
        return self.stats.name

    def sub_components(self) -> Sequence[Component]:
        """Nested components whose telemetry belongs under this node."""
        return ()

    def derived_metrics(self) -> dict[str, float]:
        """Derived ratios worth exporting (recomputable from counters)."""
        return {}

    def next_wake_cycle(self, now: int) -> int | None:
        """Conservative default wake bound: may have work next cycle.

        Components with a genuinely predictable idle span (a pending
        fill, a scheduled completion, a timed promotion) override this
        with their exact bound — or ``None`` when only external input
        can wake them (see :meth:`Component.next_wake_cycle`).
        """
        return now + 1

    def reset(self) -> None:
        self.stats.reset()
        for component in self.sub_components():
            component.reset()

    def telemetry(self) -> TelemetryNode:
        return TelemetryNode.from_stat_group(
            self.stats,
            derived=self.derived_metrics(),
            children=[c.telemetry() for c in self.sub_components()],
        )

    # -- checkpointing ---------------------------------------------------

    def _extra_state(self) -> dict:
        """Subclass hook: architectural state beyond stats/children."""
        return {}

    def _load_extra_state(self, state: dict) -> None:
        """Subclass hook: inverse of :meth:`_extra_state`."""
        if state:
            raise ValueError(
                f"component {self.name!r} cannot restore extra state "
                f"{sorted(state)}")

    def state_dict(self) -> dict:
        """Default capture: stats group + sub-components + extra state."""
        return {
            "stats": self.stats.state_dict(),
            # Positional, not name-keyed: sibling names may collide
            # (a two-level FTB's levels both report as "ftb") while
            # sub_components() order is part of the component contract.
            "components": [c.state_dict() for c in self.sub_components()],
            "extra": self._extra_state(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Default restore, mirroring :meth:`state_dict`."""
        self.stats.load_state_dict(state["stats"])
        children = state["components"]
        subs = tuple(self.sub_components())
        if len(children) != len(subs):
            raise ValueError(
                f"component {self.name!r} expects {len(subs)} "
                f"sub-component states, snapshot holds {len(children)}")
        for component, payload in zip(subs, children):
            component.load_state_dict(payload)
        self._load_extra_state(state["extra"])
