"""Canonical simulation-point identity digests.

Every result cache in the system — the :class:`~repro.harness.persist.
ResultStore` behind ``REPRO_RESULT_CACHE``, the sweep manifest, the
in-memory :class:`~repro.harness.runner.Runner` memo, and the serving
layer's content-addressed :class:`~repro.serve.cache.ResultCache` —
keys entries by the same question: *which simulation is this?*  The
answer used to be computed in two places with subtly different logic
(``persist.result_key`` hashed ``repr(config)``, ``runner`` assembled
shard-variant strings by hand); this module is now the single source
of truth.

:func:`cache_key` digests the **canonical dict form** of the
configuration (:meth:`~repro.config.SimConfig.to_dict`, serialized
with sorted keys), the workload/trace identity ``(workload,
trace_length, seed)``, the package version, and the result
``SCHEMA_VERSION`` — so a key computed in a pool worker, another
process, or another session matches bit for bit, regardless of dict
insertion order, and any model or schema change invalidates old
entries instead of serving stale results.

:func:`shard_variant` renders the execution-variant tag for sharded
runs (``shards=K:overlap=N:warm=M``): a merged sharded result
approximates but does not equal the monolithic result and must never
be served from (or poison) the monolithic entry.

This module sits below the harness and the serving layer on purpose:
both import it, neither imports the other.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.config import SimConfig

__all__ = ["cache_key", "shard_variant"]

#: Hex digest length of a cache key (half a SHA-256, plenty of margin
#: against collisions at any realistic sweep size).
KEY_LENGTH = 32


def shard_variant(shards: int, overlap: int | None = None,
                  warm: str = "functional") -> str:
    """Cache-key variant tag for a sharded execution of a point.

    ``overlap=None`` resolves to the calibrated
    :data:`~repro.sim.sharding.DEFAULT_SHARD_OVERLAP`, mirroring what
    the shard planner itself does, so an explicit default and an
    omitted one produce the same key.
    """
    if overlap is None:
        from repro.sim.sharding import DEFAULT_SHARD_OVERLAP

        overlap = DEFAULT_SHARD_OVERLAP
    return f"shards={shards}:overlap={overlap}:warm={warm}"


def cache_key(workload: str, config: "SimConfig", trace_length: int,
              seed: int, variant: str = "") -> str:
    """Stable content-addressed identity of one simulation point.

    The digest covers everything that determines the result: the
    canonical config dict (sorted keys — insertion order can never
    matter), the trace identity, the package version, and the
    serialized-result schema version.  Two processes that agree on
    those inputs agree on the key; any disagreement (model change,
    schema bump, different seed) yields a disjoint key space.

    Execution-detail knobs (cycle engine, checkpoint/watchdog cadence,
    profiling, event logging) are normalized out first
    (:meth:`~repro.config.SimConfig.execution_normalized`): every
    engine is bit-identical, so a result computed under one serves a
    request made under any other.
    """
    import repro
    from repro.sim.serialize import SCHEMA_VERSION

    identity = {
        "version": repro.__version__,
        "result_schema": SCHEMA_VERSION,
        "workload": workload,
        "trace_length": int(trace_length),
        "seed": int(seed),
        "config": config.execution_normalized().to_dict(),
        "variant": variant,
    }
    blob = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:KEY_LENGTH]
