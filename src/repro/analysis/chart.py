"""Plain-text charts for terminal reports.

No plotting dependencies are available offline, so the report tooling
renders horizontal ASCII bar charts — good enough to see the shapes the
paper's figures show (who wins, where curves saturate).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["bar_chart", "histogram_chart"]

_BAR = "#"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, title: str | None = None,
              fmt: str = "{:.3f}") -> str:
    """Render one horizontal bar per (label, value).

    Bars are scaled to the maximum value; zero/negative values get an
    empty bar but keep their printed value.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = []
    if title:
        lines.append(title)
    if not labels:
        return "\n".join(lines) if lines else ""
    label_width = max(len(label) for label in labels)
    peak = max(values)
    for label, value in zip(labels, values):
        if peak > 0 and value > 0:
            length = max(1, round(width * value / peak))
        else:
            length = 0
        bar = _BAR * length
        lines.append(f"{label.ljust(label_width)}  "
                     f"{bar.ljust(width)}  {fmt.format(value)}")
    return "\n".join(lines)


def histogram_chart(hist: dict[int, int], width: int = 40,
                    title: str | None = None,
                    max_buckets: int = 20) -> str:
    """Render a value->count histogram as an ASCII bar chart.

    When the histogram has more than ``max_buckets`` distinct values,
    adjacent values are merged into equal-width ranges.
    """
    if not hist:
        return title or ""
    values = sorted(hist)
    if len(values) <= max_buckets:
        labels = [str(value) for value in values]
        counts = [float(hist[value]) for value in values]
    else:
        lo, hi = values[0], values[-1]
        span = (hi - lo + 1 + max_buckets - 1) // max_buckets
        labels = []
        counts = []
        for start in range(lo, hi + 1, span):
            end = min(start + span - 1, hi)
            labels.append(f"{start}-{end}" if end > start else str(start))
            counts.append(float(sum(hist.get(v, 0)
                                    for v in range(start, end + 1))))
    return bar_chart(labels, counts, width=width, title=title,
                     fmt="{:.0f}")
