"""Fetch-cycle accounting: where do the front end's cycles go?

The fetch engine bumps exactly one accounting counter per simulated cycle:

- ``active_cycles`` — it delivered instructions (correct or wrong path);
- ``miss_stall_cycles`` — waiting on an L1-I fill;
- ``window_stall_cycles`` — backend window full (back-pressure);
- ``ftq_empty_cycles`` — the prediction unit had produced nothing to
  fetch (mispredict recovery, or prediction falling behind);
- ``mshr_stall_cycles`` — a demand miss could not allocate an MSHR.

:func:`stall_breakdown` turns one :class:`SimResult` into normalized
fractions — the classic "where the cycles went" figure that motivates
instruction prefetching (miss stalls) and the decoupled front end
(everything else).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimResult
from repro.stats.telemetry import TelemetrySnapshot

__all__ = ["StallBreakdown", "stall_breakdown"]

# (label, counter on the fetch engine's telemetry node)
_CATEGORIES = (
    ("active", "active_cycles"),
    ("icache_miss", "miss_stall_cycles"),
    ("window_full", "window_stall_cycles"),
    ("ftq_empty", "ftq_empty_cycles"),
    ("mshr_full", "mshr_stall_cycles"),
)


@dataclass(frozen=True)
class StallBreakdown:
    """Normalized fetch-cycle accounting for one run."""

    name: str
    prefetcher: str
    cycles: int
    active: float
    icache_miss: float
    window_full: float
    ftq_empty: float
    mshr_full: float
    other: float

    def as_row(self) -> list[object]:
        """Row for a report table (matches :func:`headers`)."""
        return [self.name, self.prefetcher, self.active,
                self.icache_miss, self.window_full, self.ftq_empty,
                self.mshr_full, self.other]

    @staticmethod
    def headers() -> list[str]:
        return ["workload", "prefetcher", "active", "icache miss",
                "window full", "ftq empty", "mshr full", "other"]


def stall_breakdown(
        result: SimResult | TelemetrySnapshot) -> StallBreakdown:
    """Classify the run's cycles into fetch-accounting categories.

    Accepts a :class:`SimResult` or a raw telemetry snapshot; results
    carrying a snapshot read the fetch engine's node from the tree, and
    pre-telemetry results fall back to their flat counters — the values
    are identical either way.

    Fractions are of total measured cycles; ``other`` absorbs cycles the
    fetch engine did not attribute (for example cycles consumed while an
    access was classified but nothing else happened — normally a small
    residue).
    """
    snapshot = result if isinstance(result, TelemetrySnapshot) \
        else result.telemetry
    if snapshot is not None:
        name = str(snapshot.meta.get("name", ""))
        prefetcher = str(snapshot.meta.get("prefetcher", ""))
        total = int(snapshot.meta.get("cycles", 0))
        fetch = snapshot.node("fetch")

        def get(counter: str) -> int:
            return fetch.get(counter) if fetch is not None else 0
    else:
        name, prefetcher, total = result.name, result.prefetcher, \
            result.cycles

        def get(counter: str) -> int:
            return result.get(f"fetch.{counter}")

    cycles = max(total, 1)
    fractions = {}
    accounted = 0
    for label, counter in _CATEGORIES:
        value = get(counter)
        accounted += value
        fractions[label] = value / cycles
    other = max(0.0, 1.0 - accounted / cycles)
    return StallBreakdown(
        name=name,
        prefetcher=prefetcher,
        cycles=total,
        other=other,
        **fractions,
    )
