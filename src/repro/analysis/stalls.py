"""Fetch-cycle accounting: where do the front end's cycles go?

The fetch engine bumps exactly one accounting counter per simulated cycle:

- ``active_cycles`` — it delivered instructions (correct or wrong path);
- ``miss_stall_cycles`` — waiting on an L1-I fill;
- ``window_stall_cycles`` — backend window full (back-pressure);
- ``ftq_empty_cycles`` — the prediction unit had produced nothing to
  fetch (mispredict recovery, or prediction falling behind);
- ``mshr_stall_cycles`` — a demand miss could not allocate an MSHR.

:func:`stall_breakdown` turns one :class:`SimResult` into normalized
fractions — the classic "where the cycles went" figure that motivates
instruction prefetching (miss stalls) and the decoupled front end
(everything else).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimResult

__all__ = ["StallBreakdown", "stall_breakdown"]

_CATEGORIES = (
    ("active", "fetch.active_cycles"),
    ("icache_miss", "fetch.miss_stall_cycles"),
    ("window_full", "fetch.window_stall_cycles"),
    ("ftq_empty", "fetch.ftq_empty_cycles"),
    ("mshr_full", "fetch.mshr_stall_cycles"),
)


@dataclass(frozen=True)
class StallBreakdown:
    """Normalized fetch-cycle accounting for one run."""

    name: str
    prefetcher: str
    cycles: int
    active: float
    icache_miss: float
    window_full: float
    ftq_empty: float
    mshr_full: float
    other: float

    def as_row(self) -> list[object]:
        """Row for a report table (matches :func:`headers`)."""
        return [self.name, self.prefetcher, self.active,
                self.icache_miss, self.window_full, self.ftq_empty,
                self.mshr_full, self.other]

    @staticmethod
    def headers() -> list[str]:
        return ["workload", "prefetcher", "active", "icache miss",
                "window full", "ftq empty", "mshr full", "other"]


def stall_breakdown(result: SimResult) -> StallBreakdown:
    """Classify the run's cycles into fetch-accounting categories.

    Fractions are of total measured cycles; ``other`` absorbs cycles the
    fetch engine did not attribute (for example cycles consumed while an
    access was classified but nothing else happened — normally a small
    residue).
    """
    cycles = max(result.cycles, 1)
    fractions = {}
    accounted = 0
    for label, counter in _CATEGORIES:
        value = result.get(counter)
        accounted += value
        fractions[label] = value / cycles
    other = max(0.0, 1.0 - accounted / cycles)
    return StallBreakdown(
        name=result.name,
        prefetcher=result.prefetcher,
        cycles=result.cycles,
        other=other,
        **fractions,
    )
