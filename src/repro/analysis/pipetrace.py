"""Per-cycle front-end pipeline tracing.

Attach a :class:`PipeTracer` to a :class:`~repro.sim.Simulator` to record
a window of cycles in detail — FTQ/window occupancy, fetch-engine state,
instructions retired — and render it as a text timeline.  Intended for
debugging and for teaching how the decoupled front end behaves around
misses and squashes; tracing every cycle of a long run would be slow and
unreadable, so the tracer records only ``[start, start + length)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PipeTracer", "CycleSnapshot"]


@dataclass(frozen=True)
class CycleSnapshot:
    """One traced cycle."""

    cycle: int
    ftq_occupancy: int
    window_occupancy: int
    retired_total: int
    fetch_stalled_on_miss: bool
    awaiting_resolution: bool
    in_flight_fills: int

    def flags(self) -> str:
        flags = []
        if self.fetch_stalled_on_miss:
            flags.append("MISS")
        if self.awaiting_resolution:
            flags.append("WRONG-PATH")
        return ",".join(flags)


class PipeTracer:
    """Records :class:`CycleSnapshot` for a window of cycles."""

    def __init__(self, start: int = 1, length: int = 200):
        if start < 1:
            raise ValueError("start must be >= 1")
        if length < 1:
            raise ValueError("length must be >= 1")
        self.start = start
        self.length = length
        self.snapshots: list[CycleSnapshot] = []

    @property
    def end(self) -> int:
        return self.start + self.length

    def record(self, cycle: int, simulator) -> None:
        """Called by the simulator once per cycle."""
        if not self.start <= cycle < self.end:
            return
        self.snapshots.append(CycleSnapshot(
            cycle=cycle,
            ftq_occupancy=simulator.ftq.occupancy(),
            window_occupancy=simulator.backend.occupancy,
            retired_total=simulator.backend.retired,
            fetch_stalled_on_miss=simulator.fetch_engine.stalled_on_miss,
            awaiting_resolution=simulator.predict_unit.awaiting_resolution,
            in_flight_fills=len(simulator.memory.mshrs),
        ))

    def render(self, every: int = 1) -> str:
        """Text timeline, one line per ``every``-th traced cycle."""
        if every < 1:
            raise ValueError("every must be >= 1")
        lines = [
            "cycle    ftq  win  fills  retired  flags",
            "-----    ---  ---  -----  -------  -----",
        ]
        previous_retired = None
        for snap in self.snapshots[::every]:
            delta = ("" if previous_retired is None
                     else f" (+{snap.retired_total - previous_retired})")
            previous_retired = snap.retired_total
            lines.append(
                f"{snap.cycle:<8d} {snap.ftq_occupancy:<4d} "
                f"{snap.window_occupancy:<4d} {snap.in_flight_fills:<6d} "
                f"{snap.retired_total:<7d}{delta:<6s} {snap.flags()}")
        return "\n".join(lines)

    def retire_rate(self) -> float:
        """Mean instructions retired per traced cycle."""
        if len(self.snapshots) < 2:
            return 0.0
        first, last = self.snapshots[0], self.snapshots[-1]
        cycles = last.cycle - first.cycle
        if cycles <= 0:
            return 0.0
        return (last.retired_total - first.retired_total) / cycles
