"""Shard-accuracy analysis: merged-vs-monolithic deltas vs overlap.

Sharded simulation is an approximation — each window's entry state is
reconstructed (functionally fast-forwarded prefix + timed overlap)
rather than inherited, so the merged IPC/MPKI drift from the monolithic
run.  :func:`overlap_sensitivity` measures that drift across a grid of
shard counts and overlaps on one workload, producing the calibration
table from which :data:`~repro.sim.sharding.DEFAULT_SHARD_OVERLAP` was
chosen (see ``docs/performance.md``; regenerate with ``repro shard
--calibrate``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.sim.results import SimResult

__all__ = ["ShardAccuracy", "overlap_sensitivity",
           "DEFAULT_CALIBRATION_SHARDS", "DEFAULT_CALIBRATION_OVERLAPS"]

DEFAULT_CALIBRATION_SHARDS = (2, 4, 8)
DEFAULT_CALIBRATION_OVERLAPS = (0, 1000, 2000, 4000)


@dataclass(frozen=True)
class ShardAccuracy:
    """Merged-vs-monolithic deltas for one (shards, overlap) cell."""

    shards: int
    overlap: int
    ipc: float
    ipc_error: float          # (sharded - mono) / mono
    l1i_mpki: float
    l1i_mpki_delta: float     # sharded - mono
    overhead: float           # extra simulated instructions fraction

    def row(self) -> list:
        return [self.shards, self.overlap, self.ipc,
                f"{self.ipc_error * 100:+.3f}%", self.l1i_mpki,
                f"{self.l1i_mpki_delta:+.4f}",
                f"{self.overhead * 100:.2f}%"]

    @staticmethod
    def headers() -> list[str]:
        return ["shards", "overlap", "ipc", "ipc err", "l1i mpki",
                "mpki delta", "extra sim"]


def overlap_sensitivity(workload: str, trace_length: int,
                        seed: int = 1,
                        config: SimConfig | None = None, *,
                        shard_counts=DEFAULT_CALIBRATION_SHARDS,
                        overlaps=DEFAULT_CALIBRATION_OVERLAPS,
                        warm: str = "functional",
                        processes: int | None = 1,
                        ) -> tuple[SimResult, list[ShardAccuracy]]:
    """Measure merged-vs-monolithic error across (shards, overlap).

    Simulates the workload once monolithically, then once per grid
    cell, and returns ``(monolithic_result, cells)``.  ``processes``
    defaults to inline execution (the grid is small and each cell is
    itself parallelizable); pass ``None`` to let each cell fan out.
    """
    from repro.harness.shard_runner import run_sharded_workload
    from repro.sim.sharding import plan_shards
    from repro.workloads import build_trace

    if config is None:
        config = SimConfig()
    if config.warmup_instructions == 0:
        config = config.replace(warmup_instructions=trace_length // 5)

    trace = build_trace(workload, trace_length, seed=seed)
    from repro.api import simulate

    mono = simulate(trace, config, name=workload)
    cells: list[ShardAccuracy] = []
    for shards in shard_counts:
        for overlap in overlaps:
            try:
                # Infeasible cells (run-level warm-up larger than the
                # first window) are skipped, not fatal — they only
                # occur for aggressive shard counts on short traces.
                plan = plan_shards(trace_length, shards, overlap,
                                   warmup=config.warmup_instructions)
            except ConfigError:
                continue
            result = run_sharded_workload(
                workload, trace_length, seed, config, shards=shards,
                overlap=overlap, warm=warm, processes=processes)
            cells.append(ShardAccuracy(
                shards=shards, overlap=overlap, ipc=result.ipc,
                ipc_error=(result.ipc - mono.ipc) / mono.ipc,
                l1i_mpki=result.l1i_mpki,
                l1i_mpki_delta=result.l1i_mpki - mono.l1i_mpki,
                overhead=plan.overhead))
    return mono, cells
