"""Post-simulation analysis: stall accounting and prefetch timeliness."""

from repro.analysis.chart import bar_chart, histogram_chart
from repro.analysis.pipetrace import CycleSnapshot, PipeTracer
from repro.analysis.stalls import StallBreakdown, stall_breakdown
from repro.analysis.timeliness import TimelinessSummary, timeliness_summary

__all__ = [
    "bar_chart",
    "histogram_chart",
    "PipeTracer",
    "CycleSnapshot",
    "StallBreakdown",
    "stall_breakdown",
    "TimelinessSummary",
    "timeliness_summary",
]
