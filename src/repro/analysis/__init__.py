"""Post-simulation analysis: stall accounting, prefetch timeliness,
and shard-accuracy calibration."""

from repro.analysis.chart import bar_chart, histogram_chart
from repro.analysis.pipetrace import CycleSnapshot, PipeTracer
from repro.analysis.sharding import ShardAccuracy, overlap_sensitivity
from repro.analysis.stalls import StallBreakdown, stall_breakdown
from repro.analysis.timeliness import TimelinessSummary, timeliness_summary

__all__ = [
    "bar_chart",
    "histogram_chart",
    "ShardAccuracy",
    "overlap_sensitivity",
    "PipeTracer",
    "CycleSnapshot",
    "StallBreakdown",
    "stall_breakdown",
    "TimelinessSummary",
    "timeliness_summary",
]
