"""Prefetch timeliness analysis.

A prefetch only helps if it completes *before* the fetch engine demands
the block.  The prefetch buffer records, for every useful prefetch, the
lead time between its fill and its first demand use; demand merges into
in-flight prefetches (``late prefetches``) are the ones that arrived too
late to hide the full miss latency.

:func:`timeliness_summary` condenses the recorded distribution into the
numbers a paper-style table reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.results import SimResult
from repro.stats.telemetry import TelemetrySnapshot

__all__ = ["TimelinessSummary", "timeliness_summary"]


@dataclass(frozen=True)
class TimelinessSummary:
    """Condensed prefetch-lead-time distribution for one run."""

    name: str
    prefetcher: str
    useful: int
    late: int
    mean_lead_cycles: float
    p50_lead_cycles: int
    p90_lead_cycles: int

    @property
    def late_fraction(self) -> float:
        """Fraction of covered misses that arrived after being demanded."""
        covered = self.useful + self.late
        if covered == 0:
            return 0.0
        return self.late / covered

    def as_row(self) -> list[object]:
        return [self.name, self.prefetcher, self.useful, self.late,
                self.late_fraction, self.mean_lead_cycles,
                self.p50_lead_cycles, self.p90_lead_cycles]

    @staticmethod
    def headers() -> list[str]:
        return ["workload", "prefetcher", "useful", "late", "late frac",
                "mean lead", "p50 lead", "p90 lead"]


def _percentile(hist: dict[int, int], q: float) -> int:
    total = sum(hist.values())
    if total == 0:
        return 0
    needed = q * total
    running = 0
    for value in sorted(hist):
        running += hist[value]
        if running >= needed:
            return value
    return max(hist)


def timeliness_summary(
        result: SimResult | TelemetrySnapshot) -> TimelinessSummary:
    """Summarize a run's prefetch lead-time distribution.

    Accepts a :class:`SimResult` or a raw telemetry snapshot; with a
    snapshot the lead histogram is located in the tree (whichever node
    records ``lead_cycles`` — the prefetch buffer) rather than through
    the result's flattened view.

    Runs without a lead histogram (no prefetcher, or a prefetcher whose
    storage does not record leads) yield an all-zero summary.
    """
    if isinstance(result, TelemetrySnapshot):
        snapshot = result
        lead_node = snapshot.root.find(
            lambda node: "lead_cycles" in node.histograms)
        hist = (lead_node.histograms["lead_cycles"]
                if lead_node is not None else {})
        flat = snapshot.flat_counters()
        name = str(snapshot.meta.get("name", ""))
        prefetcher = str(snapshot.meta.get("prefetcher", ""))
        useful = flat.get("pbuf.useful_hits", 0) \
            + flat.get("stream.head_hits", 0)
        late = flat.get("mem.late_prefetch_fills", 0)
    else:
        hist = result.prefetch_lead_hist
        name, prefetcher = result.name, result.prefetcher
        useful, late = result.prefetches_useful, result.prefetches_late
    total = sum(hist.values())
    mean = (sum(k * v for k, v in hist.items()) / total) if total else 0.0
    return TimelinessSummary(
        name=name,
        prefetcher=prefetcher,
        useful=useful,
        late=late,
        mean_lead_cycles=mean,
        p50_lead_cycles=_percentile(hist, 0.5),
        p90_lead_cycles=_percentile(hist, 0.9),
    )
