"""Configuration dataclasses for the FDIP simulator.

All configuration is expressed as frozen dataclasses so that a configuration
can be hashed, compared, and safely shared between experiment sweeps.  Each
dataclass validates itself on construction; invalid values raise
:class:`~repro.errors.ConfigError` immediately rather than failing deep inside
the simulator.

The default values follow the machine the MICRO-1999 paper simulates: an
8-wide out-of-order core with a small (16KB, 2-way) instruction cache backed
by a unified L2 over a shared bus, a 32-entry fetch target queue, and a
32-entry fully-associative prefetch buffer.
"""

from __future__ import annotations

import dataclasses
import difflib
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = [
    "CoreConfig",
    "PredictorConfig",
    "FrontEndConfig",
    "CacheGeometry",
    "MemoryConfig",
    "FilterMode",
    "PrefetcherKind",
    "PrefetchConfig",
    "ENGINES",
    "SimConfig",
    "config_to_dict",
    "config_from_dict",
    "is_power_of_two",
]


def is_power_of_two(value: int) -> bool:
    """Return True if ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of the simplified out-of-order backend.

    The backend is intentionally simple: instructions delivered by the fetch
    engine enter an in-order window bounded by ``window_size``; up to
    ``issue_width`` instructions retire per cycle once their completion time
    has passed.  Branches resolve ``branch_resolve_latency`` cycles after
    dispatch, which sets the misprediction penalty together with the
    front-end refill time.
    """

    fetch_width: int = 8
    # Demand I-cache accesses per cycle (a banked/dual-ported cache can
    # fetch across a block boundary in one cycle).
    fetch_accesses_per_cycle: int = 1
    issue_width: int = 8
    window_size: int = 128
    pipeline_depth: int = 5
    branch_resolve_latency: int = 6
    load_latency: int = 2
    # Fidelity option: wrong-path instructions occupy backend window
    # slots until the squash flushes them (default off: discarded at
    # fetch, which is the cheaper and common trace-driven simplification).
    wrong_path_in_window: bool = False

    def __post_init__(self) -> None:
        _require(self.fetch_width >= 1, "fetch_width must be >= 1")
        _require(self.fetch_accesses_per_cycle >= 1,
                 "fetch_accesses_per_cycle must be >= 1")
        _require(self.issue_width >= 1, "issue_width must be >= 1")
        _require(self.window_size >= self.issue_width,
                 "window_size must be >= issue_width")
        _require(self.pipeline_depth >= 1, "pipeline_depth must be >= 1")
        _require(self.branch_resolve_latency >= 1,
                 "branch_resolve_latency must be >= 1")
        _require(self.load_latency >= 1, "load_latency must be >= 1")


@dataclass(frozen=True)
class PredictorConfig:
    """Direction predictor, FTB, and return-address-stack geometry.

    The direction predictor is a McFarling-style hybrid: a bimodal table and
    a gshare table arbitrated by a meta chooser.  The fetch target buffer
    (FTB) is the fetch-block-oriented BTB of Reinman et al. (ISCA 1999) that
    the FDIP paper builds on.
    """

    direction: str = "hybrid"
    bimodal_entries: int = 4096
    gshare_entries: int = 4096
    history_bits: int = 12
    meta_entries: int = 4096
    ras_depth: int = 32
    ftb_sets: int = 512
    ftb_ways: int = 4
    # Optional second-level FTB (scalable front-end, ISCA 1999); 0 sets
    # disables it and the FTB is monolithic.
    ftb_l2_sets: int = 0
    ftb_l2_ways: int = 8
    ftb_l2_latency: int = 3

    DIRECTION_KINDS = ("hybrid", "gshare", "bimodal", "local",
                       "always_taken", "always_not_taken")

    def __post_init__(self) -> None:
        _require(self.direction in self.DIRECTION_KINDS,
                 f"unknown direction predictor {self.direction!r}")
        for name in ("bimodal_entries", "gshare_entries", "meta_entries",
                     "ftb_sets"):
            _require(is_power_of_two(getattr(self, name)),
                     f"{name} must be a power of two")
        _require(1 <= self.history_bits <= 30,
                 "history_bits must be between 1 and 30")
        _require((1 << self.history_bits) <= self.gshare_entries * 65536,
                 "history_bits is too large for the gshare table")
        _require(self.ras_depth >= 1, "ras_depth must be >= 1")
        _require(self.ftb_ways >= 1, "ftb_ways must be >= 1")
        if self.ftb_l2_sets:
            _require(is_power_of_two(self.ftb_l2_sets),
                     "ftb_l2_sets must be a power of two (or 0)")
            _require(self.ftb_l2_ways >= 1, "ftb_l2_ways must be >= 1")
            _require(self.ftb_l2_latency >= 1,
                     "ftb_l2_latency must be >= 1")


@dataclass(frozen=True)
class FrontEndConfig:
    """The decoupled front end: FTQ geometry and prediction behaviour."""

    ftq_depth: int = 32
    max_fetch_block: int = 16
    model_wrong_path: bool = True
    # Oracle conditional-direction prediction (idealized-front-end
    # studies); FTB misses, indirect targets, and RAS behaviour are
    # unchanged, so mispredictions do not vanish entirely.
    perfect_direction: bool = False
    predictor: PredictorConfig = field(default_factory=PredictorConfig)

    def __post_init__(self) -> None:
        _require(self.ftq_depth >= 1, "ftq_depth must be >= 1")
        _require(self.max_fetch_block >= 1, "max_fetch_block must be >= 1")


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one set-associative cache."""

    size_bytes: int
    assoc: int
    block_bytes: int = 32

    def __post_init__(self) -> None:
        _require(is_power_of_two(self.block_bytes),
                 "block_bytes must be a power of two")
        _require(self.assoc >= 1, "assoc must be >= 1")
        _require(self.size_bytes % (self.assoc * self.block_bytes) == 0,
                 "size_bytes must be a multiple of assoc * block_bytes")
        _require(is_power_of_two(self.num_sets),
                 "the number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.block_bytes)

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes


@dataclass(frozen=True)
class MemoryConfig:
    """The memory hierarchy below the fetch engine.

    The L1 instruction cache has ``icache_tag_ports`` tag ports per cycle;
    ports left idle by demand fetch are what cache probe filtering uses.
    The L2 is reached over a shared bus that transfers one cache block in
    ``bus_transfer_cycles``; demand misses always have priority over
    prefetches for the bus.
    """

    icache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(size_bytes=16 * 1024, assoc=2))
    icache_hit_latency: int = 1
    icache_tag_ports: int = 2
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            size_bytes=1024 * 1024, assoc=4, block_bytes=32))
    l2_hit_latency: int = 12
    memory_latency: int = 70
    bus_transfer_cycles: int = 4
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        _require(self.icache_hit_latency >= 1,
                 "icache_hit_latency must be >= 1")
        _require(self.icache_tag_ports >= 1, "icache_tag_ports must be >= 1")
        _require(self.l2_hit_latency >= 1, "l2_hit_latency must be >= 1")
        _require(self.memory_latency >= self.l2_hit_latency,
                 "memory_latency must be >= l2_hit_latency")
        _require(self.bus_transfer_cycles >= 1,
                 "bus_transfer_cycles must be >= 1")
        _require(self.mshr_entries >= 1, "mshr_entries must be >= 1")
        _require(self.icache.block_bytes == self.l2.block_bytes,
                 "L1-I and L2 must use the same block size")


class FilterMode:
    """Cache probe filtering variants (string constants).

    - ``NONE``: every prefetch candidate is enqueued unfiltered.
    - ``ENQUEUE``: probe the I-cache tags when a candidate enters the PIQ,
      but only if an idle tag port is available this cycle.
    - ``REMOVE``: ``ENQUEUE`` plus idle ports are used to re-probe entries
      already waiting in the PIQ and drop those that hit.
    - ``IDEAL``: oracle filtering; every redundant prefetch is dropped with
      no port constraint.
    """

    NONE = "none"
    ENQUEUE = "enqueue"
    REMOVE = "remove"
    IDEAL = "ideal"

    ALL = (NONE, ENQUEUE, REMOVE, IDEAL)


class PrefetcherKind:
    """Instruction prefetching techniques evaluated by the paper."""

    NONE = "none"
    NLP = "nlp"
    STREAM = "stream"
    FDIP = "fdip"
    COMBINED = "fdip_nlp"

    ALL = (NONE, NLP, STREAM, FDIP, COMBINED)


@dataclass(frozen=True)
class PrefetchConfig:
    """Configuration of the instruction prefetcher.

    ``kind`` selects the technique.  FDIP-specific knobs: ``piq_depth`` (the
    prefetch instruction queue between the FTQ scanner and the bus),
    ``filter_mode`` (cache probe filtering variant) and ``buffer_entries``
    (the fully-associative prefetch buffer probed in parallel with the
    L1-I).  Stream-buffer knobs: ``stream_buffers`` x ``stream_depth`` with
    an optional two-miss allocation filter.
    """

    kind: str = PrefetcherKind.FDIP
    buffer_entries: int = 32
    fill_l1_directly: bool = False
    # FDIP
    piq_depth: int = 32
    filter_mode: str = FilterMode.ENQUEUE
    max_prefetches_per_cycle: int = 1
    # FTQ lookahead window scanned for candidates: queue positions
    # [min_lookahead, max_lookahead); None = to the FTQ tail.
    min_lookahead: int = 1
    max_lookahead: int | None = None
    # Stream buffers
    stream_buffers: int = 8
    stream_depth: int = 4
    allocation_filter: bool = True
    # How many leading slots of each buffer a demand access compares
    # against (1 = classic Jouppi head-only compare).
    stream_probe_depth: int = 1
    # Next-line
    nlp_tagged: bool = True
    nlp_degree: int = 1

    def __post_init__(self) -> None:
        _require(self.kind in PrefetcherKind.ALL,
                 f"unknown prefetcher kind {self.kind!r}")
        _require(self.filter_mode in FilterMode.ALL,
                 f"unknown filter mode {self.filter_mode!r}")
        _require(self.buffer_entries >= 1, "buffer_entries must be >= 1")
        _require(self.piq_depth >= 1, "piq_depth must be >= 1")
        _require(self.max_prefetches_per_cycle >= 1,
                 "max_prefetches_per_cycle must be >= 1")
        _require(self.min_lookahead >= 1, "min_lookahead must be >= 1")
        if self.max_lookahead is not None:
            _require(self.max_lookahead > self.min_lookahead,
                     "max_lookahead must exceed min_lookahead")
        _require(self.stream_buffers >= 1, "stream_buffers must be >= 1")
        _require(self.stream_depth >= 1, "stream_depth must be >= 1")
        _require(self.stream_probe_depth >= 1,
                 "stream_probe_depth must be >= 1")
        _require(self.nlp_degree >= 1, "nlp_degree must be >= 1")


#: Cycle-engine names accepted by :attr:`SimConfig.engine` (and the
#: CLI ``--engine`` flag).  All three are bit-identical; see
#: ``docs/performance.md`` for when each wins.
ENGINES = ("naive", "fast", "event")


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulator configuration.

    Besides :meth:`replace` (shallow, field-by-field), a config can be
    round-tripped through plain dicts — :meth:`to_dict` /
    :meth:`from_dict` — and rewritten with nested-aware
    :meth:`with_overrides`.  That round trip is the canonical
    serialization: shard workers, sweep checkpoints, and the CLI all
    exchange configs as dicts rather than pickles, so a config written
    by one process always validates on the way back in.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    frontend: FrontEndConfig = field(default_factory=FrontEndConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    prefetch: PrefetchConfig = field(default_factory=PrefetchConfig)
    max_instructions: int | None = None
    warmup_instructions: int = 0
    # Functional fast-forward: warm caches/FTB/predictor over this many
    # leading trace records without timing them, then simulate the rest
    # cycle-accurately.  Much cheaper than timed warm-up for long traces.
    fast_forward_instructions: int = 0
    max_cycles: int | None = None
    # Cycle-engine selection (see docs/performance.md, "Engine
    # selection").  All three engines are bit-identical; they differ
    # only in wall-clock cost:
    #
    # - "naive": tick every component every cycle.  The reference loop.
    # - "fast":  the naive loop plus machine-wide idle-window skipping
    #            (sim/fastpath.py), attempted on every non-delivering
    #            cycle.  Fastest on fully stall-bound runs; auto-falls
    #            back to the naive loop when a probe window shows the
    #            skip machinery never wins (logged as engine_fallback).
    # - "event": wake scheduling (sim/events.py) — components are
    #            ticked only when their wake contract says they can do
    #            real work, and jump attempts are gated on prefetcher
    #            quiescence.  The default: it matches "fast" on
    #            stall-bound runs without its overhead elsewhere.
    engine: str = "event"
    # Deprecated pre-engine knob, kept for one release: False forces
    # the naive loop regardless of ``engine``; True (the default)
    # defers to ``engine``.  Use ``engine="naive"`` instead.
    fast_loop: bool = True
    # Interval telemetry: record a per-window time series (cycles,
    # retired instructions, demand misses, FTQ occupancy mass) every
    # this-many cycles.  0 disables the series; the counter tree is
    # always collected.  Sampling is fast-loop aware and bit-identical
    # between the fast and naive loops (see docs/telemetry.md).
    telemetry_window: int = 0
    # In-run checkpointing: snapshot the full machine state every
    # this-many cycles (0 disables).  Snapshots are consistent
    # end-of-cycle states; a run resumed from any of them is
    # bit-identical to an uninterrupted run (see docs/robustness.md).
    checkpoint_interval: int = 0
    # No-progress watchdog: if no instruction retires for this many
    # consecutive cycles, raise WatchdogStallError with a state dump
    # instead of spinning until the cycle cap (0 disables).
    watchdog_interval: int = 0
    # Cycle-attribution profiling: classify every simulated cycle into
    # a per-component stall bucket (see repro.obs.profile).  The
    # profile lives outside the telemetry snapshot, so the SimResult
    # is bit-identical with profiling on or off, under either engine.
    profile: bool = False
    # Structured event log: append this run's lifecycle events
    # (run start/end, warmup boundary, watchdog stalls, checkpoints)
    # to the given JSONL file (see repro.obs.events; None disables).
    event_log: str | None = None

    def __post_init__(self) -> None:
        _require(self.engine in ENGINES,
                 f"unknown engine {self.engine!r}; expected one of "
                 f"{', '.join(ENGINES)}")
        _require(isinstance(self.fast_loop, bool),
                 "fast_loop must be a bool")
        if self.max_instructions is not None:
            _require(self.max_instructions >= 1,
                     "max_instructions must be >= 1 when given")
        _require(self.warmup_instructions >= 0,
                 "warmup_instructions must be >= 0")
        _require(self.fast_forward_instructions >= 0,
                 "fast_forward_instructions must be >= 0")
        _require(self.telemetry_window >= 0,
                 "telemetry_window must be >= 0")
        _require(self.checkpoint_interval >= 0,
                 "checkpoint_interval must be >= 0")
        _require(self.watchdog_interval >= 0,
                 "watchdog_interval must be >= 0")
        _require(isinstance(self.profile, bool),
                 "profile must be a bool")
        if self.event_log is not None:
            _require(isinstance(self.event_log, str)
                     and bool(self.event_log),
                     "event_log must be a non-empty path or None")
        if self.max_cycles is not None:
            _require(self.max_cycles >= 1, "max_cycles must be >= 1")

    @property
    def resolved_engine(self) -> str:
        """The cycle engine this config actually selects.

        The deprecated ``fast_loop=False`` knob forces the naive loop
        (its pre-``engine`` meaning); otherwise :attr:`engine` decides.
        """
        return "naive" if not self.fast_loop else self.engine

    def execution_normalized(self) -> "SimConfig":
        """A copy with execution-detail knobs pinned to their defaults.

        ``engine``, ``fast_loop``, ``checkpoint_interval``,
        ``watchdog_interval``, ``profile``, and ``event_log`` select
        *how* a run executes or what it logs, never what it computes —
        every engine is bit-identical and observability never perturbs
        the result.  Identity digests (cache keys, checkpoint snapshot
        metadata) hash this normalized form so results and snapshots
        stay shareable across engine, cadence, and logging choices.
        """
        return self.replace(engine="event", fast_loop=True,
                            checkpoint_interval=0, watchdog_interval=0,
                            profile=False, event_log=None)

    def replace(self, **changes: object) -> "SimConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-compatible nested-dict form (see :func:`config_to_dict`)."""
        return config_to_dict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimConfig":
        """Reconstruct a validated config from :meth:`to_dict` output.

        Unknown keys (at any nesting level) raise
        :class:`~repro.errors.ConfigError` naming the offending key and
        the valid alternatives; every constructed dataclass re-runs its
        own ``__post_init__`` validation.
        """
        return config_from_dict(cls, data)

    def with_overrides(self, **overrides: object) -> "SimConfig":
        """A copy with nested-aware ``overrides`` applied and validated.

        Overrides may be dotted paths or partial nested dicts — these
        are equivalent::

            config.with_overrides(**{"prefetch.kind": "none"})
            config.with_overrides(prefetch={"kind": "none"})

        Unlike :meth:`replace`, nested dicts merge into the existing
        sub-config instead of replacing it wholesale.  Unknown keys are
        rejected with :class:`~repro.errors.ConfigError`.
        """
        data = self.to_dict()
        for key, value in overrides.items():
            _deep_set(data, key, value)
        return type(self).from_dict(data)


# ----------------------------------------------------------------------
# Canonical dict round-trip
# ----------------------------------------------------------------------

# Nested dataclass-valued fields of each config class.  Everything not
# listed here is a scalar (int / float / bool / str / None).
_NESTED_FIELDS: dict[type, dict[str, type]] = {}


def _nested_fields(cls: type) -> dict[str, type]:
    if not _NESTED_FIELDS:
        _NESTED_FIELDS.update({
            SimConfig: {"core": CoreConfig, "frontend": FrontEndConfig,
                        "memory": MemoryConfig, "prefetch": PrefetchConfig},
            FrontEndConfig: {"predictor": PredictorConfig},
            MemoryConfig: {"icache": CacheGeometry, "l2": CacheGeometry},
        })
    return _NESTED_FIELDS.get(cls, {})


def config_to_dict(config: object) -> dict:
    """Nested plain-dict form of any config dataclass (JSON compatible)."""
    nested = _nested_fields(type(config))
    out: dict = {}
    for field_info in dataclasses.fields(config):  # type: ignore[arg-type]
        value = getattr(config, field_info.name)
        out[field_info.name] = (config_to_dict(value)
                                if field_info.name in nested else value)
    return out


def config_from_dict(cls: type, data: dict, _path: str = "") -> object:
    """Inverse of :func:`config_to_dict` for ``cls``; validates keys.

    Missing keys fall back to the dataclass defaults (so partial dicts
    work for overrides); unknown keys raise
    :class:`~repro.errors.ConfigError` with their full dotted path.
    """
    if not isinstance(data, dict):
        where = _path or cls.__name__
        raise ConfigError(
            f"{where}: expected a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        prefix = f"{_path}." if _path else ""
        close = difflib.get_close_matches(unknown[0], sorted(known), n=1,
                                          cutoff=0.6)
        hint = (f" (did you mean '{prefix}{close[0]}'?)" if close else "")
        raise ConfigError(
            f"unknown config key '{prefix}{unknown[0]}'{hint}; "
            f"valid keys: {', '.join(sorted(known))}")
    nested = _nested_fields(cls)
    kwargs: dict = {}
    for name, value in data.items():
        if name in nested:
            child_path = f"{_path}.{name}" if _path else name
            kwargs[name] = config_from_dict(nested[name], value, child_path)
        else:
            kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        where = _path or cls.__name__
        raise ConfigError(f"{where}: {exc}") from exc


def _deep_set(data: dict, key: str, value: object) -> None:
    """Apply one override into the nested dict form.

    Dotted keys descend; dict values merge key-by-key into the existing
    sub-dict (validation of the key names happens in
    :func:`config_from_dict`).
    """
    head, _, rest = key.partition(".")
    if rest:
        node = data.setdefault(head, {})
        if not isinstance(node, dict):
            raise ConfigError(
                f"cannot descend into scalar config field {head!r} "
                f"(override {key!r})")
        _deep_set(node, rest, value)
    elif isinstance(value, dict) and isinstance(data.get(head), dict):
        for sub_key, sub_value in value.items():
            _deep_set(data[head], sub_key, sub_value)
    else:
        data[head] = value
