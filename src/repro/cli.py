"""Command-line interface.

Subcommands::

    python -m repro list                         # workloads + techniques
    python -m repro characterize -w gcc_like     # trace characterization
    python -m repro run -w perl_like -p fdip     # one simulation
    python -m repro stats -w gcc_like --json     # full telemetry tree
    python -m repro experiment E3                # regenerate one table
    python -m repro calibrate                    # workload band checks
    python -m repro report -o report.md          # all experiments -> md
    python -m repro sweep -t none fdip_enqueue   # fault-tolerant sweep
    python -m repro shard -w gcc_like --shards 4 # sharded single trace
    python -m repro perf                         # engine throughput
    python -m repro profile -w gcc_like          # cycle attribution
    python -m repro serve --port 8357            # simulation service
    python -m repro submit -w gcc_like --wait 60 # request via the daemon
    python -m repro status job-000001            # job state snapshot
    python -m repro fetch job-000001 --wait 60   # typed result retrieval

Every subcommand accepts ``--length`` (alias ``--trace-length``) and
``--seed``; the pool-backed subcommands (``sweep``, ``stats``,
``shard``, ``perf``) share ``--processes``, ``--max-retries``, and
``--point-timeout`` via one parent parser, so the flags spell and
behave identically everywhere.
``run`` prints a metrics table, or JSON with ``--json``.  ``stats``
dumps the full hierarchical telemetry tree — human table by default,
the versioned snapshot schema with ``--json``, flat
``path,counter,value`` rows with ``--csv``, and per-window interval
series (``--window N``) alongside.

Observability (see ``docs/observability.md``): ``run``, ``stats``,
``sweep``, ``shard``, and ``profile`` share ``--log-file`` /
``--log-stderr`` (structured ``repro.events/v1`` JSONL, inherited by
worker processes) and ``--trace-export`` (convert the event log into
Chrome trace-event JSON loadable in Perfetto).  ``profile`` and
``stats --profile`` report the per-component cycle-attribution
breakdown.

Serving (see ``docs/serving.md``): ``serve`` runs the HTTP simulation
service daemon (priority queue, request coalescing, content-addressed
result cache); ``submit`` / ``status`` / ``fetch`` are its client
commands and share ``--host`` / ``--port`` via one parent parser.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import env
from repro.config import ENGINES, FilterMode, PrefetcherKind, SimConfig
from repro.errors import ConfigError, ReproError
from repro.harness import (
    EXPERIMENTS,
    ResultStore,
    Runner,
    TECHNIQUE_ORDER,
    parallel_sweep,
    technique_config,
)
from repro.api import profile_run, simulate
from repro.harness.report import generate_report
from repro.obs import events as obs_events
from repro.obs.profile import CATEGORIES as PROFILE_CATEGORIES
from repro.obs.spans import export_chrome_trace
from repro.stats import IntervalSeries, format_table, rows_to_csv, \
    telemetry_table
from repro.trace import characterize
from repro.workloads import ALL_WORKLOADS, build_trace, get_profile

__all__ = ["main", "build_parser"]

_DEFAULT_LENGTH = 60_000


def _trace_flags() -> argparse.ArgumentParser:
    """Shared ``--length``/``--seed`` parent parser.

    ``--length`` defaults to ``None`` so each subcommand can resolve
    its own fallback (see :func:`_length`); most use 60 000, ``perf``
    keeps its quick/default benchmark lengths.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--length", "--trace-length", dest="length",
                        type=int, default=None,
                        help="trace length in instructions "
                             f"(default {_DEFAULT_LENGTH})")
    parent.add_argument("--seed", type=int, default=1,
                        help="trace walk seed")
    return parent


def _pool_flags() -> argparse.ArgumentParser:
    """Shared supervised-pool parent parser (sweep/stats/shard/perf)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--processes", type=int, default=None,
                        help="worker processes (1 = inline)")
    parent.add_argument("--max-retries", type=int, default=2,
                        help="retries per point after the first attempt")
    parent.add_argument("--point-timeout", type=float, default=None,
                        help="wall-clock seconds per point attempt")
    return parent


def _checkpoint_flags() -> argparse.ArgumentParser:
    """Shared in-run checkpoint/watchdog parent parser (run/stats)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--checkpoint-interval", type=int, default=0,
                        metavar="CYCLES",
                        help="write a resumable machine snapshot every "
                             "N cycles (0 = off; needs --machine-"
                             "checkpoint-dir)")
    parent.add_argument("--machine-checkpoint-dir", default=None,
                        metavar="DIR",
                        help="directory for in-run machine snapshots; "
                             "an existing valid snapshot of this exact "
                             "run is resumed automatically")
    parent.add_argument("--watchdog-interval", type=int, default=0,
                        metavar="CYCLES",
                        help="abort with a state dump if no instruction "
                             "retires for N cycles (0 = off)")
    return parent


def _obs_flags() -> argparse.ArgumentParser:
    """Shared observability parent parser (run/stats/sweep/shard/profile)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--log-file", default=None, metavar="JSONL",
                        help="append structured repro.events/v1 events "
                             "to this JSON-lines file (worker processes "
                             "inherit the sink)")
    parent.add_argument("--log-stderr", action="store_true",
                        help="mirror structured events to stderr")
    parent.add_argument("--trace-export", default=None, metavar="JSON",
                        help="after the command, convert the event log "
                             "into Chrome trace-event JSON (loadable in "
                             "Perfetto); implies an event log")
    return parent


def _endpoint_flags() -> argparse.ArgumentParser:
    """Shared ``--host``/``--port`` parent parser (serve and clients)."""
    from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT

    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--host", default=DEFAULT_HOST,
                        help=f"service address (default {DEFAULT_HOST})")
    parent.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"service port (default {DEFAULT_PORT}; "
                             f"'serve' accepts 0 for an ephemeral port)")
    return parent


def _length(args: argparse.Namespace,
            fallback: int = _DEFAULT_LENGTH) -> int:
    return args.length if args.length is not None else fallback


def _apply_robustness_flags(config: SimConfig,
                            args: argparse.Namespace) -> SimConfig:
    """Fold the checkpoint/watchdog flags into the run's config."""
    if getattr(args, "checkpoint_interval", 0):
        config = config.replace(
            checkpoint_interval=args.checkpoint_interval)
    if getattr(args, "watchdog_interval", 0):
        config = config.replace(watchdog_interval=args.watchdog_interval)
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fetch Directed Instruction Prefetching (MICRO-32 "
                    "1999) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    trace_flags = _trace_flags()
    pool_flags = _pool_flags()
    checkpoint_flags = _checkpoint_flags()
    obs_flags = _obs_flags()

    sub.add_parser("list", help="list workloads and techniques")

    p_char = sub.add_parser("characterize", parents=[trace_flags],
                            help="characterize a workload trace")
    p_char.add_argument("-w", "--workload", required=True,
                        choices=ALL_WORKLOADS)

    p_run = sub.add_parser("run",
                           parents=[trace_flags, checkpoint_flags,
                                    obs_flags],
                           help="run one simulation")
    p_run.add_argument("-w", "--workload", required=True,
                       choices=ALL_WORKLOADS)
    p_run.add_argument("-p", "--prefetcher", default=PrefetcherKind.FDIP,
                       choices=PrefetcherKind.ALL)
    p_run.add_argument("-f", "--filter", default=FilterMode.ENQUEUE,
                       choices=FilterMode.ALL,
                       help="cache probe filtering mode (fdip only)")
    p_run.add_argument("--warmup", type=int, default=0)
    p_run.add_argument("--json", action="store_true",
                       help="emit metrics as JSON")
    p_run.add_argument("--engine", default=None, choices=ENGINES,
                       help="cycle engine (default: config default, "
                            "'event'; results are identical under "
                            "every engine)")
    p_run.add_argument("--naive-loop", action="store_true",
                       help="deprecated: use --engine naive "
                            "(one-release shim)")
    p_run.add_argument("--resume-from", default=None, metavar="SNAPSHOT",
                       help="resume from one explicit snapshot file "
                            "(written under --machine-checkpoint-dir)")

    p_stats = sub.add_parser(
        "stats",
        parents=[trace_flags, pool_flags, checkpoint_flags, obs_flags],
        help="run one simulation, dump the hierarchical telemetry tree")
    p_stats.add_argument("-w", "--workload", required=True,
                         choices=ALL_WORKLOADS)
    p_stats.add_argument("-p", "--prefetcher", default=PrefetcherKind.FDIP,
                         choices=PrefetcherKind.ALL)
    p_stats.add_argument("-f", "--filter", default=FilterMode.ENQUEUE,
                         choices=FilterMode.ALL,
                         help="cache probe filtering mode (fdip only)")
    p_stats.add_argument("--warmup", type=int, default=0)
    p_stats.add_argument("--window", type=int, default=0,
                         help="interval sampling window in cycles "
                              "(0 = no interval series)")
    fmt = p_stats.add_mutually_exclusive_group()
    fmt.add_argument("--json", action="store_true",
                     help="emit the full versioned snapshot as JSON")
    fmt.add_argument("--csv", action="store_true",
                     help="emit flat path,counter,value CSV")
    p_stats.add_argument("--intervals", action="store_true",
                         help="with --csv: emit the interval series "
                              "instead of the counters")
    p_stats.add_argument("--shards", type=int, default=1,
                         help="split the trace into this many merged "
                              "windows (see 'repro shard')")
    p_stats.add_argument("--shard-overlap", type=int, default=None,
                         help="timed warm-up overlap per shard "
                              "(instructions)")
    p_stats.add_argument("--profile", action="store_true",
                         help="also report the per-component "
                              "cycle-attribution profile (monolithic "
                              "runs only)")

    p_exp = sub.add_parser("experiment", parents=[trace_flags],
                           help="regenerate one experiment")
    p_exp.add_argument("experiment_id", choices=sorted(EXPERIMENTS),
                       metavar="EXPERIMENT",
                       help=f"one of {', '.join(sorted(EXPERIMENTS))}")

    p_cal = sub.add_parser("calibrate", parents=[trace_flags],
                           help="check workload profiles against their "
                                "calibration bands")
    p_cal.add_argument("-w", "--workload", default=None,
                       choices=ALL_WORKLOADS,
                       help="one profile (default: the whole suite)")

    p_sw = sub.add_parser(
        "sweep", parents=[trace_flags, pool_flags, obs_flags],
        help="fault-tolerant parallel sweep over workloads x techniques")
    p_sw.add_argument("-w", "--workloads", nargs="+", default=None,
                      choices=ALL_WORKLOADS,
                      help="workload subset (default: the whole suite)")
    p_sw.add_argument("-t", "--techniques", nargs="+",
                      default=["none", "fdip_enqueue"],
                      choices=TECHNIQUE_ORDER)
    p_sw.add_argument("--resume", action="store_true",
                      help="skip points already in the checkpoint store")
    p_sw.add_argument("--checkpoint-dir", default=None,
                      help="result store + sweep manifest directory "
                           "(default: $REPRO_RESULT_CACHE)")
    p_sw.add_argument("--machine-checkpoints", default=None,
                      metavar="DIR",
                      help="in-run machine snapshot directory: killed or "
                           "hung workers resume their point mid-run "
                           "instead of restarting it")
    p_sw.add_argument("--checkpoint-interval", type=int, default=None,
                      metavar="CYCLES",
                      help="snapshot cadence for --machine-checkpoints")

    p_shard = sub.add_parser(
        "shard", parents=[trace_flags, pool_flags, obs_flags],
        help="simulate one trace as K merged windows "
             "(sharded execution)")
    p_shard.add_argument("-w", "--workload", required=True,
                         choices=ALL_WORKLOADS)
    p_shard.add_argument("-p", "--prefetcher",
                         default=PrefetcherKind.FDIP,
                         choices=PrefetcherKind.ALL)
    p_shard.add_argument("-f", "--filter", default=FilterMode.ENQUEUE,
                         choices=FilterMode.ALL,
                         help="cache probe filtering mode (fdip only)")
    p_shard.add_argument("--warmup", type=int, default=0,
                         help="run-level warm-up instructions "
                              "(default: length // 5)")
    p_shard.add_argument("--shards", type=int, default=4,
                         help="number of merged windows")
    p_shard.add_argument("--shard-overlap", type=int, default=None,
                         help="timed warm-up overlap per shard "
                              "(instructions)")
    p_shard.add_argument("--warm", default="functional",
                         choices=("functional", "overlap"),
                         help="shard warm-up mode")
    p_shard.add_argument("--compare", action="store_true",
                         help="also run monolithically and report the "
                              "merged-vs-monolithic deltas")
    p_shard.add_argument("--calibrate", action="store_true",
                         help="sweep (shards x overlap) and report the "
                              "accuracy table instead of one run")
    p_shard.add_argument("--json", action="store_true",
                         help="emit metrics + shard provenance as JSON")

    p_prof = sub.add_parser(
        "profile", parents=[trace_flags, obs_flags],
        help="run one simulation, report the per-component "
             "cycle-attribution breakdown")
    p_prof.add_argument("-w", "--workload", required=True,
                        choices=ALL_WORKLOADS)
    p_prof.add_argument("-p", "--prefetcher",
                        default=PrefetcherKind.FDIP,
                        choices=PrefetcherKind.ALL)
    p_prof.add_argument("-f", "--filter", default=FilterMode.ENQUEUE,
                        choices=FilterMode.ALL,
                        help="cache probe filtering mode (fdip only)")
    p_prof.add_argument("--warmup", type=int, default=0)
    p_prof.add_argument("--engine", default=None, choices=ENGINES,
                        help="cycle engine to profile under (the "
                             "profile is identical under every engine)")
    p_prof.add_argument("--naive-loop", action="store_true",
                        help="deprecated: use --engine naive "
                             "(one-release shim)")
    p_prof.add_argument("--json", action="store_true",
                        help="emit the repro.profile/v1 document")

    p_perf = sub.add_parser(
        "perf", parents=[trace_flags, pool_flags],
        help="measure simulated-instructions/second across the "
             "cycle engines")
    p_perf.add_argument("--quick", action="store_true",
                        help="short traces (CI smoke mode)")
    p_perf.add_argument("--output", default=None,
                        help="report JSON path (default: BENCH_perf.json)")
    p_perf.add_argument("--baseline", default=None,
                        help="baseline JSON to compare against "
                             "(default: benchmarks/perf_baseline.json "
                             "when it exists)")
    p_perf.add_argument("--max-regression", type=float, default=None,
                        help="allowed fractional speedup drop vs the "
                             "baseline, per engine (default 0.15)")
    p_perf.add_argument("--reps", type=int, default=None,
                        help="timing repetitions per point "
                             "(median-of; default 5)")
    p_perf.add_argument("--warmup", type=int, default=None,
                        help="untimed warm-up repetitions per point "
                             "before timing starts (default 1)")

    endpoint_flags = _endpoint_flags()

    p_serve = sub.add_parser(
        "serve", parents=[endpoint_flags, obs_flags],
        help="run the HTTP simulation service daemon")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="concurrent simulation worker threads")
    p_serve.add_argument("--max-queue-depth", type=int, default=16,
                         help="queued-request bound; submissions beyond "
                              "it are rejected with HTTP 429")
    p_serve.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="content-addressed result cache directory "
                              "(default: $REPRO_SERVE_CACHE; unset "
                              "disables the cache)")

    p_sub = sub.add_parser(
        "submit", parents=[endpoint_flags, trace_flags],
        help="submit one simulation request to a running daemon")
    p_sub.add_argument("-w", "--workload", required=True,
                       choices=ALL_WORKLOADS)
    p_sub.add_argument("-p", "--prefetcher", default=PrefetcherKind.FDIP,
                       choices=PrefetcherKind.ALL)
    p_sub.add_argument("-f", "--filter", default=FilterMode.ENQUEUE,
                       choices=FilterMode.ALL,
                       help="cache probe filtering mode (fdip only)")
    p_sub.add_argument("--warmup", type=int, default=0)
    p_sub.add_argument("--shards", type=int, default=None,
                       help="sharded execution (see 'repro shard')")
    p_sub.add_argument("--shard-overlap", type=int, default=None,
                       help="timed warm-up overlap per shard")
    p_sub.add_argument("--priority", type=int, default=0,
                       help="queue priority (higher runs sooner)")
    p_sub.add_argument("--wait", type=float, default=0.0, metavar="S",
                       help="block up to S seconds and print the "
                            "result (default: print the job id only)")
    p_sub.add_argument("--json", action="store_true",
                       help="with --wait: emit the metrics as JSON")

    p_stat = sub.add_parser(
        "status", parents=[endpoint_flags],
        help="print one job's state snapshot as JSON")
    p_stat.add_argument("job", help="job id from 'repro submit'")

    p_fetch = sub.add_parser(
        "fetch", parents=[endpoint_flags],
        help="retrieve one job's result from the daemon")
    p_fetch.add_argument("job", help="job id from 'repro submit'")
    p_fetch.add_argument("--wait", type=float, default=0.0, metavar="S",
                         help="block up to S seconds for completion")
    p_fetch.add_argument("--json", action="store_true",
                         help="emit metrics as JSON")

    p_rep = sub.add_parser("report", parents=[trace_flags],
                           help="run every experiment, emit markdown")
    p_rep.add_argument("-o", "--output", default="-",
                       help="output file ('-' for stdout)")
    p_rep.add_argument("--experiments", nargs="*", default=None,
                       help="subset of experiment ids (default: all)")
    p_rep.add_argument("--processes", type=int, default=None,
                       help="prewarm the main grid with this many "
                            "supervised workers before reporting")

    return parser


def _cmd_list() -> int:
    print("workloads:")
    for name in ALL_WORKLOADS:
        profile = get_profile(name)
        print(f"  {name:16s} [{profile.category}] {profile.description}")
    print("\nprefetchers:", ", ".join(PrefetcherKind.ALL))
    print("filter modes (fdip):", ", ".join(FilterMode.ALL))
    print("experiments:", ", ".join(sorted(
        EXPERIMENTS, key=lambda e: int(e[1:]))))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, _length(args), seed=args.seed)
    stats = characterize(trace)
    rows = [
        ["records", stats.n_records],
        ["distinct pcs", stats.distinct_pcs],
        ["footprint KB", stats.footprint_kb],
        ["distinct 32B blocks", stats.distinct_blocks],
        ["control fraction", stats.control_fraction],
        ["taken fraction", stats.taken_fraction],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.workload} ({_length(args)} instrs)"))
    return 0


def _resolve_engine(args: argparse.Namespace) -> str | None:
    """Engine selection shared by ``run`` and ``profile``.

    Honours the deprecated ``--naive-loop`` flag for one release:
    it warns and maps to ``--engine naive``, and conflicts with an
    explicit ``--engine`` choice.
    """
    if getattr(args, "naive_loop", False):
        if args.engine is not None and args.engine != "naive":
            raise ConfigError(
                "--naive-loop conflicts with --engine "
                f"{args.engine}; drop the deprecated flag")
        print("warning: --naive-loop is deprecated and will be removed "
              "next release; use --engine naive", file=sys.stderr)
        return "naive"
    return args.engine


def _cmd_run(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, _length(args), seed=args.seed)
    config = SimConfig()
    config = technique_config(_technique_name(args), config)
    if args.warmup:
        config = config.replace(warmup_instructions=args.warmup)
    config = _apply_robustness_flags(config, args)
    engine = _resolve_engine(args)

    footer = None
    if args.resume_from:
        from pathlib import Path

        from repro.sim import CheckpointManager, Simulator, snapshot_meta

        meta = snapshot_meta(trace, config)
        manager = CheckpointManager(Path(args.resume_from).parent,
                                    meta=meta)
        state = manager.load(args.resume_from)
        sim = Simulator(trace, config, engine=engine)
        sim.load_state_dict(state)
        if args.machine_checkpoint_dir and config.checkpoint_interval > 0:
            sink = CheckpointManager(args.machine_checkpoint_dir,
                                     meta=meta)
            sim.checkpoint_sink = sink.write
        result = sim.run()
        footer = (f"checkpointing: resumed from {args.resume_from} "
                  f"(cycle {state['cycle']})")
    elif args.machine_checkpoint_dir:
        from repro.sim import run_with_checkpoints

        run = run_with_checkpoints(trace, config,
                                   directory=args.machine_checkpoint_dir,
                                   name=args.workload, engine=engine)
        result = run.result
        footer = (f"checkpointing: {run.snapshots_written} snapshots "
                  f"written to {args.machine_checkpoint_dir}")
        if run.resumed_from_cycle is not None:
            footer += f", resumed from cycle {run.resumed_from_cycle}"
        if run.quarantined:
            footer += f", {run.quarantined} corrupt snapshots quarantined"
    else:
        result = simulate(trace, config, engine=engine)
    if footer is not None:
        print(footer, file=sys.stderr)
    if args.json:
        payload = {
            "workload": result.name,
            "prefetcher": result.prefetcher,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": result.ipc,
            "l1i_mpki": result.l1i_mpki,
            "bus_utilization": result.bus_utilization,
            "prefetches_issued": result.prefetches_issued,
            "prefetch_accuracy": result.prefetch_accuracy,
            "prefetch_coverage": result.prefetch_coverage,
            "mispredicts_per_ki": result.mispredicts_per_ki,
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        ["IPC", result.ipc],
        ["cycles", result.cycles],
        ["L1-I MPKI", result.l1i_mpki],
        ["bus utilization", result.bus_utilization],
        ["prefetches issued", result.prefetches_issued],
        ["prefetch accuracy", result.prefetch_accuracy],
        ["prefetch coverage", result.prefetch_coverage],
        ["mispredicts / ki", result.mispredicts_per_ki],
        ["bpred accuracy", result.bpred_accuracy],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.workload} / {_technique_name(args)}"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, _length(args), seed=args.seed)
    config = technique_config(_technique_name(args), SimConfig())
    if args.warmup:
        config = config.replace(warmup_instructions=args.warmup)
    if args.window:
        config = config.replace(telemetry_window=args.window)
    config = _apply_robustness_flags(config, args)
    if args.profile and args.shards > 1:
        print("error: --profile needs a monolithic run; drop --shards",
              file=sys.stderr)
        return 2
    if args.profile and args.machine_checkpoint_dir:
        print("error: --profile does not compose with "
              "--machine-checkpoint-dir; profile a plain run",
              file=sys.stderr)
        return 2
    if args.profile and args.csv:
        print("error: the profile has no CSV form; use --json or the "
              "human table", file=sys.stderr)
        return 2
    profile = None
    if args.shards > 1:
        from repro.harness.shard_runner import run_sharded

        result = run_sharded(trace, config, shards=args.shards,
                             overlap=args.shard_overlap,
                             processes=args.processes,
                             max_retries=args.max_retries,
                             point_timeout=args.point_timeout,
                             checkpoint_dir=args.machine_checkpoint_dir)
    elif args.machine_checkpoint_dir:
        from repro.sim import run_with_checkpoints

        run = run_with_checkpoints(trace, config,
                                   directory=args.machine_checkpoint_dir,
                                   name=args.workload)
        result = run.result
        print(f"checkpointing: {run.snapshots_written} snapshots written"
              + (f", resumed from cycle {run.resumed_from_cycle}"
                 if run.resumed_from_cycle is not None else ""),
              file=sys.stderr)
    elif args.profile:
        response = profile_run(trace, config, name=args.workload)
        result, profile = response.result, response.profile
    else:
        result = simulate(trace, config)
    snapshot = result.telemetry
    assert snapshot is not None   # live runs always carry a snapshot

    if args.csv and args.intervals:
        if snapshot.intervals is None:
            print("error: no interval series recorded; pass --window N",
                  file=sys.stderr)
            return 2
        print(rows_to_csv(IntervalSeries.headers(),
                          snapshot.intervals.rows()), end="")
        return 0
    if args.json:
        if profile is not None:
            payload = json.loads(snapshot.to_json())
            payload["profile"] = profile
            print(json.dumps(payload, indent=2))
        else:
            print(snapshot.to_json(indent=2))
        return 0
    if args.csv:
        print(rows_to_csv(snapshot.counter_headers(),
                          snapshot.counter_rows()), end="")
        return 0
    print(telemetry_table(snapshot))
    if snapshot.intervals is not None:
        print()
        print(format_table(
            IntervalSeries.headers(), snapshot.intervals.rows(),
            title=f"interval series (window "
                  f"{snapshot.intervals.window} cycles)"))
    if profile is not None:
        print()
        _print_profile(profile,
                       title=f"cycle attribution ({args.workload})")
    return 0


def _print_profile(profile: dict, *, title: str) -> None:
    """Render a ``repro.profile/v1`` document as a human table."""
    buckets = profile["buckets"]
    total = max(profile["cycles"], 1)
    rows: list[list[object]] = [
        [component, name, buckets[name],
         f"{buckets[name] / total * 100:5.1f}%"]
        for name, component in PROFILE_CATEGORIES
        if buckets.get(name, 0) > 0]
    rows.append(["total", "", profile["cycles"], "100.0%"])
    print(format_table(["component", "cause", "cycles", "share"],
                       rows, title=title))
    bus_busy = (profile.get("overlap") or {}).get("bus_busy")
    if bus_busy is not None:
        print(f"bus busy (overlaps the buckets above): {bus_busy} "
              f"cycles ({bus_busy / total * 100:.1f}%)")


def _cmd_profile(args: argparse.Namespace) -> int:
    trace = build_trace(args.workload, _length(args), seed=args.seed)
    config = technique_config(_technique_name(args), SimConfig())
    if args.warmup:
        config = config.replace(warmup_instructions=args.warmup)
    response = profile_run(trace, config, name=args.workload,
                           engine=_resolve_engine(args))
    result, profile = response.result, response.profile
    if args.json:
        print(json.dumps(profile, indent=2))
        return 0
    _print_profile(
        profile,
        title=f"{args.workload} / {_technique_name(args)} "
              f"(ipc {result.ipc:.4f}, {result.cycles} cycles)")
    return 0


def _technique_name(args: argparse.Namespace) -> str:
    if args.prefetcher != PrefetcherKind.FDIP:
        return args.prefetcher
    suffix = "nofilter" if args.filter == FilterMode.NONE else args.filter
    return f"fdip_{suffix}"


def _cmd_experiment(args: argparse.Namespace) -> int:
    runner = Runner(trace_length=_length(args), seed=args.seed)
    table = EXPERIMENTS[args.experiment_id](runner)
    print(table.formatted())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.workloads import calibrate, calibrate_suite
    if args.workload:
        reports = [calibrate(args.workload, _length(args), args.seed)]
    else:
        reports = calibrate_suite(_length(args), args.seed)
    rows = [[r.name, "ok" if r.ok else "FAIL", r.dyn_footprint_kb,
             r.control_fraction, r.taken_fraction, r.base_mpki,
             "; ".join(r.failures)] for r in reports]
    print(format_table(
        ["workload", "status", "dyn KB", "ctrl", "taken", "mpki",
         "failures"], rows,
        title=f"calibration at {_length(args)} instructions"))
    return 0 if all(r.ok for r in reports) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    workloads = args.workloads or list(ALL_WORKLOADS)
    triples = [(workload, technique, technique_config(technique))
               for workload in workloads
               for technique in args.techniques]
    points = [(workload, config) for workload, _, config in triples]
    checkpoint = args.checkpoint_dir or env.result_cache_dir()
    if args.resume and checkpoint is None:
        raise ConfigError("--resume needs --checkpoint-dir (or "
                          "REPRO_RESULT_CACHE) to know where results "
                          "were checkpointed")
    store = ResultStore(checkpoint) if checkpoint else None
    extra = {}
    if args.checkpoint_interval is not None:
        extra["checkpoint_interval"] = args.checkpoint_interval
    outcome = parallel_sweep(
        points, trace_length=_length(args), seed=args.seed,
        processes=args.processes, max_retries=args.max_retries,
        point_timeout=args.point_timeout, store=store,
        checkpoint=checkpoint, resume=args.resume,
        machine_checkpoints=args.machine_checkpoints, **extra)
    rows = []
    for workload, technique, config in triples:
        result = outcome.results.get((workload, config))
        if result is None:
            continue
        rows.append([workload, technique, result.ipc, result.l1i_mpki,
                     result.bus_utilization])
    print(format_table(
        ["workload", "technique", "ipc", "l1i_mpki", "bus util"], rows,
        title=f"sweep at {_length(args)} instructions, "
              f"seed {args.seed}"))
    technique_of = {(workload, config): technique
                    for workload, technique, config in triples}
    for failure in outcome.failures:
        label = technique_of.get((failure.workload, failure.config),
                                 failure.key)
        print(f"FAILED {failure.workload}/{label}: {failure.error_type}: "
              f"{failure.message} "
              f"({len(failure.attempts)} attempts)", file=sys.stderr)
    print(outcome.summary())
    return 0 if outcome.ok else 3


def _cmd_shard(args: argparse.Namespace) -> int:
    length = _length(args)
    config = technique_config(_technique_name(args), SimConfig())
    warmup = args.warmup or length // 5
    config = config.replace(warmup_instructions=warmup)

    if args.calibrate:
        from repro.analysis.sharding import (
            ShardAccuracy,
            overlap_sensitivity,
        )

        mono, cells = overlap_sensitivity(
            args.workload, length, args.seed, config, warm=args.warm,
            processes=args.processes)
        print(format_table(
            ShardAccuracy.headers(), [cell.row() for cell in cells],
            title=f"{args.workload} sharding accuracy vs monolithic "
                  f"(ipc {mono.ipc:.4f}, l1i mpki {mono.l1i_mpki:.4f}, "
                  f"{length} instrs, warm={args.warm})"))
        return 0

    from repro.harness.shard_runner import run_sharded_workload

    result = run_sharded_workload(
        args.workload, length, args.seed, config, shards=args.shards,
        overlap=args.shard_overlap, warm=args.warm,
        processes=args.processes, max_retries=args.max_retries,
        point_timeout=args.point_timeout)
    provenance = result.telemetry.meta["sharding"]

    mono = None
    if args.compare:
        trace = build_trace(args.workload, length, seed=args.seed)
        mono = simulate(trace, config, name=args.workload)

    if args.json:
        payload = {
            "workload": result.name,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": result.ipc,
            "l1i_mpki": result.l1i_mpki,
            "sharding": provenance,
        }
        if mono is not None:
            payload["monolithic"] = {
                "cycles": mono.cycles, "ipc": mono.ipc,
                "l1i_mpki": mono.l1i_mpki,
                "ipc_error": (result.ipc - mono.ipc) / mono.ipc,
            }
        print(json.dumps(payload, indent=2))
        return 0

    rows = [
        ["IPC", result.ipc],
        ["cycles", result.cycles],
        ["instructions", result.instructions],
        ["L1-I MPKI", result.l1i_mpki],
        ["shards", provenance["shards"]],
        ["overlap", provenance["overlap"]],
        ["warm mode", provenance["warm"]],
    ]
    if mono is not None:
        rows.append(["monolithic IPC", mono.ipc])
        rows.append(["IPC error",
                     f"{(result.ipc - mono.ipc) / mono.ipc * 100:+.3f}%"])
        rows.append(["monolithic L1-I MPKI", mono.l1i_mpki])
        rows.append(["MPKI delta",
                     f"{result.l1i_mpki - mono.l1i_mpki:+.4f}"])
    print(format_table(
        ["metric", "value"], rows,
        title=f"{args.workload} sharded x{provenance['shards']} "
              f"({length} instrs)"))
    windows = [[w["shard"], w["start"], w["stop"], w["warmup"],
                w["instructions"],
                f"{w['cycle_range'][0]}..{w['cycle_range'][1]}"]
               for w in provenance["windows"]]
    print()
    print(format_table(
        ["shard", "start", "stop", "warmup", "instrs", "cycle range"],
        windows, title="shard windows"))
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import os

    from repro import perf

    if args.processes not in (None, 1):
        print("note: perf times each point inline; --processes is "
              "ignored to keep timings honest", file=sys.stderr)
    length = args.length
    if length is None:
        length = perf.QUICK_LENGTH if args.quick else perf.DEFAULT_LENGTH
    reps = args.reps if args.reps is not None else perf.DEFAULT_REPS
    warmup = (args.warmup if args.warmup is not None
              else perf.DEFAULT_WARMUP)
    report = perf.run_perf(length=length, reps=reps, warmup=warmup,
                           seed=args.seed if args.seed != 1 else None)
    output = args.output or perf.DEFAULT_OUTPUT
    perf.write_report(report, output)
    print(perf.format_report(report))
    print(f"wrote {output}", file=sys.stderr)

    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(perf.DEFAULT_BASELINE):
        baseline_path = perf.DEFAULT_BASELINE
    failures = []
    if baseline_path:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
        max_regression = args.max_regression
        if max_regression is None:
            max_regression = perf.DEFAULT_MAX_REGRESSION
        failures = perf.compare_to_baseline(report, baseline,
                                            max_regression)
    else:
        failures = [f"{name}: results differ between cycle engines"
                    for name, data in report["points"].items()
                    if not data["identical"]]
    for failure in failures:
        print(f"PERF FAIL {failure}", file=sys.stderr)
    return 4 if failures else 0


def _cmd_report(args: argparse.Namespace) -> int:
    runner = Runner(trace_length=_length(args), seed=args.seed)
    text = generate_report(runner, experiment_ids=args.experiments,
                           processes=args.processes)
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w", encoding="utf-8") as out:
            out.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServiceDaemon, SimulationService

    service = SimulationService(cache_dir=args.cache_dir,
                                workers=args.workers,
                                max_queue_depth=args.max_queue_depth)
    daemon = ServiceDaemon(service, host=args.host, port=args.port)
    host, port = daemon.address
    # The startup line is machine-readable on purpose: with --port 0
    # it is how callers (the smoke test included) learn the bound port.
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _serve_request(args: argparse.Namespace) -> "RunRequest":
    """One typed request from the submit command's flags."""
    from repro.spec import RunRequest

    config = technique_config(_technique_name(args), SimConfig())
    if args.warmup:
        config = config.replace(warmup_instructions=args.warmup)
    return RunRequest(workload=args.workload, config=config,
                      trace_length=_length(args), seed=args.seed,
                      shards=args.shards,
                      shard_overlap=args.shard_overlap)


def _print_response(job_id: str, response, *, json_out: bool) -> int:
    result = response.result
    if json_out:
        payload = {
            "job": job_id,
            "source": response.source,
            "workload": result.name,
            "prefetcher": result.prefetcher,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": result.ipc,
            "l1i_mpki": result.l1i_mpki,
            "bus_utilization": result.bus_utilization,
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = [
        ["source", response.source],
        ["IPC", result.ipc],
        ["cycles", result.cycles],
        ["instructions", result.instructions],
        ["L1-I MPKI", result.l1i_mpki],
        ["bus utilization", result.bus_utilization],
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{job_id} ({result.name} / "
                             f"{result.prefetcher})"))
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import Client

    client = Client(args.host, args.port)
    job_id = client.submit(_serve_request(args), priority=args.priority)
    if args.wait > 0:
        return _print_response(job_id,
                               client.fetch(job_id, wait=args.wait),
                               json_out=args.json)
    print(job_id)
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.serve import Client

    print(json.dumps(Client(args.host, args.port).status(args.job),
                     indent=2))
    return 0


def _cmd_fetch(args: argparse.Namespace) -> int:
    from repro.serve import Client

    response = Client(args.host, args.port).fetch(args.job,
                                                  wait=args.wait)
    return _print_response(args.job, response, json_out=args.json)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "characterize":
        return _cmd_characterize(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "shard":
        return _cmd_shard(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "perf":
        return _cmd_perf(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args)
    if args.command == "fetch":
        return _cmd_fetch(args)
    raise AssertionError(f"unhandled command {args.command!r}")


def _configure_obs(args: argparse.Namespace
                   ) -> tuple[str | None, bool, bool]:
    """Set up structured event logging from the shared obs flags.

    Returns ``(events_path, temporary, configured)``: the JSONL path
    that will feed a later ``--trace-export`` (``--trace-export``
    without ``--log-file`` logs to a temporary file we own and delete),
    and whether this process configured logging (and so should reset it
    on the way out — env-adopted logging is left alone).
    """
    log_file = getattr(args, "log_file", None)
    log_stderr = bool(getattr(args, "log_stderr", False))
    trace_export = getattr(args, "trace_export", None)
    temporary = False
    if trace_export and not log_file:
        import tempfile

        fd, log_file = tempfile.mkstemp(prefix="repro-events-",
                                        suffix=".jsonl")
        import os

        os.close(fd)
        temporary = True
    if log_file or log_stderr:
        obs_events.configure_logging(file=log_file, stderr=log_stderr)
        return log_file, temporary, True
    return log_file, temporary, False


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        events_path, temporary, configured = _configure_obs(args)
        try:
            code = _dispatch(args)
            trace_export = getattr(args, "trace_export", None)
            if trace_export and events_path:
                count = export_chrome_trace(events_path, trace_export)
                print(f"wrote {trace_export} ({count} trace events)",
                      file=sys.stderr)
            return code
        finally:
            if configured:
                obs_events.reset_logging()
            if temporary:
                import os

                try:
                    os.remove(events_path)
                except OSError:
                    pass
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
