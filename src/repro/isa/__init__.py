"""Synthetic ISA: instruction kinds and the static instruction model."""

from repro.isa.instructions import INSTRUCTION_BYTES, InstrKind, StaticInstr

__all__ = ["INSTRUCTION_BYTES", "InstrKind", "StaticInstr"]
