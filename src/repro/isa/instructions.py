"""The synthetic ISA used by the workload generator and simulator.

Instructions are fixed-width (4 bytes) and word aligned, matching the
RISC-style machines of the paper's era (the authors' SimpleScalar baseline
models a MIPS-like PISA).  The simulator never interprets operand values;
only the *kind* of each instruction and its control-flow behaviour matter to
the front end, so that is all the ISA encodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

__all__ = ["INSTRUCTION_BYTES", "InstrKind", "StaticInstr"]

INSTRUCTION_BYTES = 4
"""Size of every instruction in bytes (word aligned, RISC style)."""


class InstrKind(IntEnum):
    """Instruction classes distinguished by the front end and backend.

    ``IntEnum`` so trace files can store the kind as a single byte and the
    hot simulation loop can compare kinds as integers.
    """

    ALU = 0
    LOAD = 1
    STORE = 2
    BRANCH_COND = 3      # conditional direct branch
    JUMP_DIRECT = 4      # unconditional direct jump
    JUMP_INDIRECT = 5    # unconditional indirect jump (e.g. switch tables)
    CALL = 6             # direct call (pushes return address)
    CALL_INDIRECT = 7    # indirect call (function pointers, virtual calls)
    RETURN = 8           # return (pops return address)

    @property
    def is_control(self) -> bool:
        """True for every instruction that can redirect the fetch stream."""
        return self >= InstrKind.BRANCH_COND

    @property
    def is_conditional(self) -> bool:
        """True only for conditional branches."""
        return self == InstrKind.BRANCH_COND

    @property
    def is_unconditional(self) -> bool:
        """True for control instructions that always transfer control."""
        return self >= InstrKind.JUMP_DIRECT

    @property
    def is_call(self) -> bool:
        return self in (InstrKind.CALL, InstrKind.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        return self == InstrKind.RETURN

    @property
    def is_indirect(self) -> bool:
        """True when the target comes from a register, not the encoding."""
        return self in (InstrKind.JUMP_INDIRECT, InstrKind.CALL_INDIRECT,
                        InstrKind.RETURN)

    @property
    def is_memory(self) -> bool:
        return self in (InstrKind.LOAD, InstrKind.STORE)


@dataclass(frozen=True)
class StaticInstr:
    """One instruction in the static program image.

    ``target`` is the statically-encoded target for direct control
    transfers; ``None`` for non-control and indirect instructions (indirect
    targets are chosen dynamically by the trace walker).
    """

    pc: int
    kind: InstrKind
    target: int | None = None

    def __post_init__(self) -> None:
        if self.pc % INSTRUCTION_BYTES != 0:
            raise ValueError(f"pc {self.pc:#x} is not word aligned")
        if self.target is not None and self.target % INSTRUCTION_BYTES != 0:
            raise ValueError(f"target {self.target:#x} is not word aligned")

    @property
    def next_sequential(self) -> int:
        """Address of the instruction that follows this one in memory."""
        return self.pc + INSTRUCTION_BYTES

    def __repr__(self) -> str:
        tgt = f", target={self.target:#x}" if self.target is not None else ""
        return f"StaticInstr(pc={self.pc:#x}, kind={self.kind.name}{tgt})"
