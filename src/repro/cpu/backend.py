"""Simplified out-of-order backend.

The paper's results are front-end bound; the backend's job in this
reproduction is to (a) convert delivered instruction streams into retired
instructions per cycle under a finite window and issue width, and (b)
apply back-pressure to the fetch engine when the window fills.

Model: each delivered instruction completes ``pipeline_depth`` cycles after
delivery plus its execution latency (loads take ``load_latency``, all else
one cycle).  Instructions retire in order, at most ``issue_width`` per
cycle, once complete.  This under-models issue contention but preserves the
property the evaluation needs: cycles lost in the front end are cycles lost
in IPC.
"""

from __future__ import annotations

from collections import deque

from repro.component import StatsComponent
from repro.config import CoreConfig
from repro.isa import InstrKind
from repro.stats import StatGroup
from repro.trace import TraceRecord

__all__ = ["Backend"]


class Backend(StatsComponent):
    """Finite-window, in-order-retire backend model."""

    def __init__(self, core: CoreConfig):
        self.core = core
        self.stats = StatGroup("backend")
        self._window: deque[int] = deque()   # completion cycles, FIFO
        self._wrong_path_occupancy = 0       # squashed at flush
        self.retired = 0

    @property
    def free_slots(self) -> int:
        """Window slots available for newly fetched instructions."""
        return (self.core.window_size - len(self._window)
                - self._wrong_path_occupancy)

    @property
    def occupancy(self) -> int:
        return len(self._window) + self._wrong_path_occupancy

    def deliver(self, records: list[TraceRecord], now: int) -> None:
        """Accept fetched instructions into the window."""
        if len(records) > self.free_slots:
            raise OverflowError(
                f"delivered {len(records)} instructions into "
                f"{self.free_slots} free slots")
        base = now + self.core.pipeline_depth
        load_latency = self.core.load_latency
        for record in records:
            latency = load_latency if record.kind == InstrKind.LOAD else 1
            self._window.append(base + latency)
        self.stats.bump("delivered", len(records))

    def retire(self, now: int) -> int:
        """Retire up to ``issue_width`` completed instructions, in order."""
        window = self._window
        n = 0
        width = self.core.issue_width
        while window and n < width and window[0] <= now:
            window.popleft()
            n += 1
        self.retired += n
        self.stats.bump("retired", n)
        if n == 0 and window:
            self.stats.bump("retire_stall_cycles")
        return n

    def deliver_wrong_path(self, count: int) -> None:
        """Wrong-path instructions enter the window (never retire)."""
        if count > self.free_slots:
            raise OverflowError(
                f"delivered {count} wrong-path instructions into "
                f"{self.free_slots} free slots")
        self._wrong_path_occupancy += count
        self.stats.bump("wrong_path_delivered", count)

    def flush_wrong_path(self) -> int:
        """Squash: drop all wrong-path occupants; returns how many."""
        flushed = self._wrong_path_occupancy
        self._wrong_path_occupancy = 0
        self.stats.bump("wrong_path_flushed", flushed)
        return flushed

    @property
    def drained(self) -> bool:
        return not self._window

    @property
    def next_completion(self) -> int | None:
        """Completion cycle of the oldest instruction (None when empty)."""
        return self._window[0] if self._window else None

    def next_wake_cycle(self, now: int) -> int | None:
        """Wake contract: in-order retirement cannot begin before the
        oldest instruction completes; an empty window retires nothing
        until fetch delivers (external input)."""
        return self._window[0] if self._window else None

    def _extra_state(self) -> dict:
        return {"window": list(self._window),
                "wrong_path_occupancy": self._wrong_path_occupancy,
                "retired": self.retired}

    def _load_extra_state(self, state: dict) -> None:
        self._window = deque(int(c) for c in state["window"])
        self._wrong_path_occupancy = int(state["wrong_path_occupancy"])
        self.retired = int(state["retired"])
