"""Simplified out-of-order core backend."""

from repro.cpu.backend import Backend

__all__ = ["Backend"]
