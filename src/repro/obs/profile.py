"""Cycle-attribution profiler: which component ate each cycle?

:class:`CycleProfiler` is an opt-in (``SimConfig(profile=True)``)
observer the simulator consults once per simulated cycle.  It
classifies the cycle into exactly one cause bucket, attributed to the
component responsible, so the buckets **sum to the measured cycle
count** — the per-structure cycle budget that "where did the fetch
cycles go" figures are built from:

===============  ==============  =======================================
bucket           component       the cycle was spent...
===============  ==============  =======================================
active           fetch           delivering instructions
icache_miss      memory.l1i      waiting on an L1-I fill
bpred_redirect   predict         recovering from a mispredicted branch
ftb_l2_wait      ftb             waiting on an L2-FTB promotion
predict_lag      predict         FTQ empty, prediction merely behind
drained          trace           FTQ empty, trace exhausted (run tail)
window_full      backend         backend window back-pressure
mshr_full        memory.mshrs    a demand miss blocked on MSHR space
other            sim             none of the above (residue)
===============  ==============  =======================================

The classifier reads only machine state that the fast-path engine's
skip proof pins inside an idle window (see ``sim/fastpath.py``), so a
skipped window of ``n`` cycles is attributed with one ``observe(n)``
call to exactly the bucket each of its cycles would have landed in
under the naive loop — profiles are **identical under both cycle
engines**, and profiling never perturbs the simulation (the profile
lives outside the telemetry snapshot, so ``SimResult`` stays
bit-identical with profiling on or off).

``bus_busy`` is reported alongside as an *overlapping* metric (a bus
transfer proceeds under cycles attributed elsewhere), taken from the
bus's own cycle counter rather than sampled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ObservabilityError

if TYPE_CHECKING:
    from repro.config import SimConfig
    from repro.sim.results import SimResult  # noqa: F401
    from repro.spec import RunResponse
    from repro.trace import Trace

__all__ = ["PROFILE_SCHEMA", "CATEGORIES", "CycleProfiler", "profile_run"]

PROFILE_SCHEMA = "repro.profile/v1"

#: (bucket, owning component path) in reporting order.
CATEGORIES = (
    ("active", "fetch"),
    ("icache_miss", "memory.l1i"),
    ("bpred_redirect", "predict"),
    ("ftb_l2_wait", "ftb"),
    ("predict_lag", "predict"),
    ("drained", "trace"),
    ("window_full", "backend"),
    ("mshr_full", "memory.mshrs"),
    ("other", "sim"),
)

_COMPONENT_OF = dict(CATEGORIES)


class CycleProfiler:
    """Per-cycle cause accounting over one simulator's component tree."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {name: 0 for name, _ in CATEGORIES}

    # ------------------------------------------------------------------
    # Observation (the per-cycle hot path)
    # ------------------------------------------------------------------

    @staticmethod
    def classify(sim, fetched: bool) -> str:
        """The cause bucket for the cycle that just completed.

        Priority mirrors the fetch engine's one-counter-per-cycle
        accounting (fetch state first, then the prediction unit's
        reason the FTQ is empty), evaluated on end-of-cycle state —
        which the fast path proves constant across a skipped window.
        """
        if fetched:
            return "active"
        if sim.fetch_engine.waiting_until is not None:
            return "icache_miss"
        if sim.ftq.head() is None:
            predict = sim.predict_unit
            if predict.awaiting_resolution:
                return "bpred_redirect"
            if predict.ftb_wait_until is not None:
                return "ftb_l2_wait"
            if predict.out_of_records:
                return "drained"
            return "predict_lag"
        if sim.backend.free_slots <= 0:
            return "window_full"
        if sim.memory.mshrs.full:
            return "mshr_full"
        if sim.predict_unit.awaiting_resolution:
            # FTQ holds wrong-path work while the mispredicted branch
            # resolves; charge the cycle to the redirect, not "other".
            # (_resolve_at bounds every skip window, so this state is
            # pinned inside one — see sim/fastpath.py.)
            return "bpred_redirect"
        return "other"

    def observe(self, sim, fetched: bool, cycles: int = 1) -> None:
        """Attribute ``cycles`` end-of-cycle observations of ``sim``."""
        self.counts[self.classify(sim, fetched)] += cycles

    def reset(self) -> None:
        """Zero the accounting (measurement-region boundary)."""
        for name in self.counts:
            self.counts[name] = 0

    # ------------------------------------------------------------------
    # Checkpoint round trip
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        return dict(self.counts)

    def load_state_dict(self, state: dict) -> None:
        unknown = sorted(set(state) - set(self.counts))
        if unknown:
            raise ObservabilityError(
                f"profile snapshot has unknown bucket {unknown[0]!r}")
        for name in self.counts:
            self.counts[name] = int(state.get(name, 0))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def report(self, *, meta: dict | None = None,
               bus_busy: int | None = None) -> dict:
        """The profile as a JSON-compatible, schema-tagged document.

        ``buckets`` is the exclusive per-cause accounting (sums to
        ``cycles``); ``components`` regroups the same cycles by owning
        component; ``overlap`` carries non-exclusive concurrency
        metrics (currently the bus's busy cycles).
        """
        components: dict[str, dict[str, int]] = {}
        for name, component in CATEGORIES:
            if self.counts[name]:
                components.setdefault(component, {})[name] = \
                    self.counts[name]
        document = {
            "schema": PROFILE_SCHEMA,
            "cycles": self.total,
            "buckets": dict(self.counts),
            "components": components,
        }
        if bus_busy is not None:
            document["overlap"] = {"bus_busy": int(bus_busy)}
        if meta:
            document["meta"] = dict(meta)
        return document

    def rows(self) -> list[list[object]]:
        """``[component, cause, cycles, fraction]`` table rows."""
        total = max(self.total, 1)
        return [[component, name, self.counts[name],
                 self.counts[name] / total]
                for name, component in CATEGORIES
                if self.counts[name] > 0]


def profile_run(trace: "Trace", config: "SimConfig | None" = None, *,
                name: str | None = None,
                fast_loop: bool | None = None,
                engine: str | None = None,
                ) -> "RunResponse":
    """Simulate ``trace`` with profiling on; return a typed response.

    The returned :class:`~repro.spec.RunResponse` carries the
    :class:`~repro.sim.results.SimResult` on ``.result`` and the
    :meth:`CycleProfiler.report` document for the measured region on
    ``.profile`` — its buckets sum to ``result.cycles`` — and the
    result itself is bit-identical to an unprofiled run of the same
    configuration.  Unpacking the response as the old ``(result,
    profile)`` tuple still works for one release and warns with a
    migration hint (the ``run_simulation`` removal precedent).

    Routed through the shared :func:`~repro.spec.resolve_request`
    normalization, like every other run entry point.
    """
    from repro.api import execute
    from repro.spec import resolve_request

    request = resolve_request(
        workload=trace.name or "trace", config=config,
        trace_length=len(trace), seed=trace.seed, label=name)
    return execute(request, trace=trace, profile=True,
                   fast_loop=fast_loop, engine=engine)
