"""Structured observability: event log, span tracing, cycle profiler.

Zero-dependency observability spine for the whole stack (see
``docs/observability.md``):

- :mod:`repro.obs.events` — typed, versioned JSON-lines events with
  monotonic timestamps and run/point/shard/attempt correlation ids,
  emitted by the simulator, the supervised pool, the shard runner, and
  the result store; sinks (file / stderr / none) configured via the
  CLI, :func:`configure_logging`, or ``REPRO_LOG_*`` env vars;
- :mod:`repro.obs.spans` — nested spans reconstructed from the event
  log (or recorded directly with :class:`SpanRecorder`), exported as
  Chrome ``trace_event`` JSON loadable in Perfetto;
- :mod:`repro.obs.profile` — an opt-in per-component cycle-attribution
  profiler whose buckets sum to the measured cycle count, identical
  under both cycle engines, surfaced as ``repro profile`` and
  ``repro stats --profile``.

Everything degrades to a no-op when not configured: simulation results
are bit-identical whether or not any observability feature is on.
"""

from repro.obs.events import (
    KINDS,
    SCHEMA as EVENT_SCHEMA,
    configure_logging,
    current_context,
    current_run_id,
    emit,
    logging_active,
    obs_context,
    parse_event_line,
    read_events,
    reset_logging,
    validate_event,
)
from repro.obs.profile import (
    CATEGORIES as PROFILE_CATEGORIES,
    PROFILE_SCHEMA,
    CycleProfiler,
    profile_run,
)
from repro.obs.spans import (
    Span,
    SpanRecorder,
    export_chrome_trace,
    spans_from_events,
    trace_from_events,
    validate_chrome_trace,
)

__all__ = [
    # events
    "EVENT_SCHEMA",
    "KINDS",
    "configure_logging",
    "reset_logging",
    "logging_active",
    "current_run_id",
    "emit",
    "obs_context",
    "current_context",
    "validate_event",
    "parse_event_line",
    "read_events",
    # spans
    "Span",
    "SpanRecorder",
    "spans_from_events",
    "trace_from_events",
    "export_chrome_trace",
    "validate_chrome_trace",
    # profiler
    "PROFILE_SCHEMA",
    "PROFILE_CATEGORIES",
    "CycleProfiler",
    "profile_run",
]
