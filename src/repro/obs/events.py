"""Structured JSON-lines event log (schema ``repro.events/v1``).

One event is one JSON object on one line::

    {"schema": "repro.events/v1", "kind": "task_retry", "ts": 12.034,
     "wall": 1754550123.4, "pid": 4242, "seq": 17,
     "run": "a3f9c2e1b4d0", "point": "8c2f...", "shard": null,
     "attempt": 2, "data": {"error_type": "WorkerCrashError", ...}}

Required fields:

- ``schema`` — the literal :data:`SCHEMA` string (versioned);
- ``kind`` — one of :data:`KINDS`;
- ``ts`` — monotonic seconds in the emitting process (ordering within
  a process); ``wall`` — epoch seconds (alignment *across* processes);
- ``pid`` / ``seq`` — emitting process and its per-process sequence
  number (``(pid, seq)`` is a total order per process);
- ``run`` / ``point`` / ``shard`` / ``attempt`` — correlation ids
  (``None`` when not applicable).  ``run`` identifies one top-level
  invocation and is inherited by pool workers through the environment;
  ``point`` is the supervised task key (sweep-point hash, ``shardN``,
  or a workload name); ``attempt`` counts from 1.
- ``data`` — kind-specific payload (JSON-compatible scalars only).

Sinks are pluggable and process-global: a JSONL file (opened with
``O_APPEND`` so concurrent writers interleave whole lines, never
fragments) and/or stderr.  Configuration comes from three equivalent
places — :func:`configure_logging`, the CLI ``--log-file`` /
``--log-stderr`` flags, or the ``REPRO_LOG_FILE`` / ``REPRO_LOG_STDERR``
environment variables (read lazily on first emit, which is how pool
workers pick the parent's configuration up).  With no sink configured,
:func:`emit` is a cheap no-op — the instrumented hot paths stay free.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import sys
import threading
import time
from typing import Any, Iterable, Iterator

from repro.errors import ObservabilityError

__all__ = [
    "SCHEMA",
    "KINDS",
    "configure_logging",
    "attach_log_file",
    "reset_logging",
    "logging_active",
    "current_run_id",
    "emit",
    "obs_context",
    "current_context",
    "validate_event",
    "parse_event_line",
    "read_events",
]

SCHEMA = "repro.events/v1"

#: Closed set of event kinds.  Growing it is a schema revision (bump
#: :data:`SCHEMA` when an existing kind's payload changes meaning).
KINDS = frozenset({
    # simulator lifecycle
    "run_start", "warmup_end", "run_end", "watchdog_stall",
    "engine_fallback",
    # in-run machine checkpointing
    "checkpoint_written", "checkpoint_resumed", "checkpoint_quarantined",
    # supervised pool
    "task_spawn", "task_done", "task_retry", "task_failed",
    "task_timeout", "task_stall", "worker_crash", "pool_rebuild",
    # sweep / shard orchestration
    "sweep_start", "sweep_end", "shard_start", "shard_end",
    # result store
    "store_quarantine",
    # simulation service (daemon lifecycle + request lifecycle)
    "serve_start", "serve_stop", "serve_enqueued", "serve_coalesced",
    "serve_cache_hit", "serve_scheduled", "serve_running", "serve_done",
    "serve_failed", "serve_rejected",
})

_ENV_FILE = "REPRO_LOG_FILE"
_ENV_STDERR = "REPRO_LOG_STDERR"
_ENV_RUN_ID = "REPRO_LOG_RUN_ID"

_CORRELATION_FIELDS = ("run", "point", "shard", "attempt")

# ----------------------------------------------------------------------
# Correlation context
# ----------------------------------------------------------------------

_context: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_obs_context", default={})


@contextlib.contextmanager
def obs_context(**ids: Any) -> Iterator[None]:
    """Bind correlation ids (``run``/``point``/``shard``/``attempt``)
    to every event emitted inside the ``with`` block.

    Contexts nest: inner bindings shadow outer ones field by field and
    are restored on exit.  Unknown fields raise
    :class:`~repro.errors.ObservabilityError` (they would silently never
    appear in the log).
    """
    for name in ids:
        if name not in _CORRELATION_FIELDS:
            raise ObservabilityError(
                f"unknown correlation field {name!r}; expected one of "
                f"{', '.join(_CORRELATION_FIELDS)}")
    merged = {**_context.get(), **ids}
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


def current_context() -> dict:
    """The correlation ids currently bound (a copy)."""
    return dict(_context.get())


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class _State:
    """Process-global sink configuration (lazily env-initialized)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.configured = False
        self.file_path: str | None = None
        self.file_fd: int | None = None
        self.stderr = False
        self.run_id: str | None = None
        self.seq = 0


_state = _State()


def _make_run_id() -> str:
    return os.urandom(6).hex()


def _open_append(path: str) -> int:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    # O_APPEND makes each whole-line write atomic between processes on
    # POSIX; workers and the supervisor share one JSONL file safely.
    return os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)


def _ensure_configured() -> None:
    """Adopt the environment configuration once per process."""
    if _state.configured:
        return
    with _state.lock:
        if _state.configured:
            return
        from repro import env

        path = env.log_file()
        _state.file_path = path
        _state.stderr = env.log_stderr()
        _state.run_id = env.log_run_id()
        if path is not None:
            _state.file_fd = _open_append(path)
        _state.configured = True


def configure_logging(*, file: str | None = None, stderr: bool = False,
                      run_id: str | None = None,
                      propagate: bool = True) -> str:
    """Install the process-global event sinks; returns the run id.

    ``file`` appends events as JSON lines; ``stderr`` mirrors them to
    the standard error stream.  ``run_id`` defaults to a fresh random
    id.  With ``propagate`` (the default) the configuration is exported
    through ``REPRO_LOG_*`` environment variables so worker processes
    spawned later log to the same file under the same run id.
    """
    with _state.lock:
        if _state.file_fd is not None:
            os.close(_state.file_fd)
        _state.file_path = file
        _state.file_fd = _open_append(file) if file is not None else None
        _state.stderr = stderr
        _state.run_id = run_id or _make_run_id()
        _state.configured = True
        if propagate:
            if file is not None:
                os.environ[_ENV_FILE] = file
            else:
                os.environ.pop(_ENV_FILE, None)
            os.environ[_ENV_STDERR] = "1" if stderr else "0"
            os.environ[_ENV_RUN_ID] = _state.run_id
        return _state.run_id


def attach_log_file(path: str) -> str:
    """Ensure events append to ``path`` when no file sink exists yet.

    This is the ``SimConfig.event_log`` hook: idempotent, and an
    already-installed file sink (CLI/env configuration is
    process-global) takes precedence over the per-run config field.
    Returns the effective run id.
    """
    _ensure_configured()
    with _state.lock:
        if _state.file_fd is None:
            _state.file_path = path
            _state.file_fd = _open_append(path)
        if _state.run_id is None:
            _state.run_id = _make_run_id()
        return _state.run_id


def reset_logging(*, scrub_env: bool = True) -> None:
    """Drop all sinks and forget the run id (used by tests and the CLI)."""
    with _state.lock:
        if _state.file_fd is not None:
            os.close(_state.file_fd)
        _state.file_path = None
        _state.file_fd = None
        _state.stderr = False
        _state.run_id = None
        _state.configured = False
        _state.seq = 0
        if scrub_env:
            for name in (_ENV_FILE, _ENV_STDERR, _ENV_RUN_ID):
                os.environ.pop(name, None)


def logging_active() -> bool:
    """Whether any sink is currently installed (env included)."""
    _ensure_configured()
    return _state.file_fd is not None or _state.stderr


def current_run_id() -> str | None:
    """The configured run id, or None when logging is inactive."""
    _ensure_configured()
    return _state.run_id


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------

def emit(kind: str, *, data: dict | None = None, **ids: Any) -> None:
    """Emit one event to the configured sinks (no-op when there are none).

    ``ids`` are correlation-field overrides (``point=...``,
    ``attempt=...``); anything not given falls back to the ambient
    :func:`obs_context` and the ``run`` id falls back to the process
    configuration.
    """
    _ensure_configured()
    if _state.file_fd is None and not _state.stderr:
        return
    if kind not in KINDS:
        raise ObservabilityError(
            f"unknown event kind {kind!r}; known kinds: "
            f"{', '.join(sorted(KINDS))}")
    context = _context.get()
    record: dict = {"schema": SCHEMA, "kind": kind,
                    "ts": time.monotonic(), "wall": time.time(),
                    "pid": os.getpid()}
    with _state.lock:
        _state.seq += 1
        record["seq"] = _state.seq
    for name in _CORRELATION_FIELDS:
        value = ids.get(name, context.get(name))
        if name == "run" and value is None:
            value = _state.run_id
        record[name] = value
    record["data"] = dict(data) if data else {}
    line = json.dumps(record, separators=(",", ":")) + "\n"
    payload = line.encode("utf-8")
    if _state.file_fd is not None:
        try:
            os.write(_state.file_fd, payload)
        except OSError:
            pass   # a full disk must not kill the simulation
    if _state.stderr:
        try:
            sys.stderr.write(line)
        except (OSError, ValueError):
            pass


# ----------------------------------------------------------------------
# Parsing / validation
# ----------------------------------------------------------------------

def validate_event(event: dict) -> dict:
    """Check one decoded event against the v1 schema; returns it.

    Raises :class:`~repro.errors.ObservabilityError` naming the first
    defect (wrong schema tag, unknown kind, missing or mistyped field).
    """
    if not isinstance(event, dict):
        raise ObservabilityError(
            f"event must be a JSON object, got {type(event).__name__}")
    if event.get("schema") != SCHEMA:
        raise ObservabilityError(
            f"unsupported event schema {event.get('schema')!r} "
            f"(this build reads {SCHEMA})")
    kind = event.get("kind")
    if kind not in KINDS:
        raise ObservabilityError(f"unknown event kind {kind!r}")
    for name, types in (("ts", (int, float)), ("wall", (int, float)),
                        ("pid", int), ("seq", int)):
        value = event.get(name)
        if not isinstance(value, types) or isinstance(value, bool):
            raise ObservabilityError(
                f"event field {name!r} must be "
                f"{'numeric' if name in ('ts', 'wall') else 'an int'}, "
                f"got {value!r}")
    for name in _CORRELATION_FIELDS:
        if name not in event:
            raise ObservabilityError(f"event is missing the correlation "
                                     f"field {name!r}")
    attempt = event["attempt"]
    if attempt is not None and (not isinstance(attempt, int)
                                or isinstance(attempt, bool)):
        raise ObservabilityError(
            f"event field 'attempt' must be an int or null, "
            f"got {attempt!r}")
    if not isinstance(event.get("data"), dict):
        raise ObservabilityError("event field 'data' must be an object")
    return event


def parse_event_line(line: str) -> dict:
    """Decode and validate one JSONL event line."""
    try:
        event = json.loads(line)
    except ValueError as exc:
        raise ObservabilityError(
            f"event line is not valid JSON ({exc})") from None
    return validate_event(event)


def read_events(path: str | os.PathLike,
                kinds: Iterable[str] | None = None) -> list[dict]:
    """All validated events in a JSONL file, optionally kind-filtered.

    Events are returned in stable order across emitting processes:
    by wall time, tie-broken by ``(pid, seq)``.
    """
    wanted = frozenset(kinds) if kinds is not None else None
    events = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            event = parse_event_line(line)
            if wanted is None or event["kind"] in wanted:
                events.append(event)
    events.sort(key=lambda e: (e["wall"], e["pid"], e["seq"]))
    return events
