"""Span tracing: nested spans and Chrome ``trace_event`` export.

Two complementary paths produce the same Chrome-trace JSON (the format
Perfetto and ``chrome://tracing`` load):

- :class:`SpanRecorder` records spans programmatically — nested
  ``with recorder.span("name"):`` blocks, with arbitrary JSON args
  (cycles, instructions) attached per span;
- :func:`spans_from_events` / :func:`export_chrome_trace` reconstruct
  the span tree of a whole run from its structured event log (see
  :mod:`repro.obs.events`): sweep → point attempt → simulation →
  warmup/measure phases, with shard simulations appearing under their
  worker process ids.  Timestamps use the events' wall clock, so spans
  from different processes align on one timeline.

The export is the minimal stable subset of the trace-event format:
complete spans (``"ph": "X"``, microsecond ``ts``/``dur``) plus
process-scoped instant markers (``"ph": "i"``) for point-in-time
events (checkpoints written, watchdog stalls, pool rebuilds, ...).
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.errors import ObservabilityError
from repro.obs.events import read_events, validate_event

__all__ = [
    "Span",
    "SpanRecorder",
    "spans_from_events",
    "trace_from_events",
    "export_chrome_trace",
    "validate_chrome_trace",
]


@dataclass
class Span:
    """One completed span: a named, nested wall-clock interval."""

    name: str
    start: float              # wall-clock seconds
    duration: float           # seconds
    pid: int = 0
    tid: int = 0
    args: dict = field(default_factory=dict)

    def to_trace_event(self, origin: float) -> dict:
        """The span as one Chrome ``"ph": "X"`` complete event."""
        return {"name": self.name, "ph": "X", "cat": "repro",
                "ts": round((self.start - origin) * 1e6, 3),
                "dur": round(self.duration * 1e6, 3),
                "pid": self.pid, "tid": self.tid, "args": self.args}


class SpanRecorder:
    """Programmatic nested span recording with Chrome-trace export.

    Thread-unaware by design (one recorder per logical thread of work);
    nesting comes from the ``with`` structure::

        rec = SpanRecorder()
        with rec.span("sweep", points=4):
            with rec.span("point", workload="gcc_like"):
                ...
        rec.export("sweep.trace.json")
    """

    def __init__(self, pid: int = 0, tid: int = 0):
        self.pid = pid
        self.tid = tid
        self.spans: list[Span] = []
        self._depth = 0

    @contextlib.contextmanager
    def span(self, name: str, **args: object) -> Iterator[dict]:
        """Record one span around the ``with`` body.

        Yields the span's mutable ``args`` dict, so the body can attach
        results it only knows at the end (cycles, instructions)::

            with rec.span("simulate") as span_args:
                result = simulate(trace, config)
                span_args["cycles"] = result.cycles
        """
        span_args: dict = dict(args)
        self._depth += 1
        start = time.time()
        began = time.perf_counter()
        try:
            yield span_args
        finally:
            duration = time.perf_counter() - began
            self._depth -= 1
            self.spans.append(Span(name=name, start=start,
                                   duration=duration, pid=self.pid,
                                   tid=self.tid, args=span_args))

    def to_chrome_trace(self) -> dict:
        """The recorded spans as a Chrome trace-event document."""
        origin = min((s.start for s in self.spans), default=0.0)
        return {"traceEvents": [s.to_trace_event(origin)
                                for s in self.spans],
                "displayTimeUnit": "ms"}

    def export(self, path: str | Path) -> int:
        """Write the Chrome-trace JSON; returns the span count."""
        Path(path).write_text(json.dumps(self.to_chrome_trace(), indent=1),
                              encoding="utf-8")
        return len(self.spans)


# ----------------------------------------------------------------------
# Event log -> span tree
# ----------------------------------------------------------------------

# (open kind, {closing kind: phase suffix or None})
_SIM_OPEN = "run_start"
_ATTEMPT_SETTLES = ("task_done", "task_retry", "task_failed",
                    "task_timeout")
_INSTANT_KINDS = ("checkpoint_written", "checkpoint_resumed",
                  "checkpoint_quarantined", "watchdog_stall",
                  "task_stall", "worker_crash", "pool_rebuild",
                  "store_quarantine")


def _label(event: dict) -> str:
    point = event.get("point")
    shard = event.get("shard")
    if point and shard is not None:
        return f"{point}/shard{shard}"
    if point:
        return str(point)
    if shard is not None:
        return f"shard{shard}"
    return str(event.get("data", {}).get("name", "") or "run")


def spans_from_events(events: list[dict]) -> list[Span]:
    """Reconstruct the span tree of one logged run.

    Produced spans:

    - ``sweep`` — ``sweep_start`` → ``sweep_end``;
    - ``attempt <point> #<n>`` — ``task_spawn`` → the matching
      settle (``task_done`` / ``task_retry`` / ``task_failed`` /
      ``task_timeout``), keyed by ``(point, attempt)``;
    - ``sim <label>`` — ``run_start`` → ``run_end`` within one
      process, with ``warmup``/``measure`` child phases when a
      ``warmup_end`` was logged in between;
    - ``shard <k>`` — ``shard_start`` → ``shard_end``.

    Unclosed opens (a crashed worker's ``run_start``) are dropped —
    a crash is visible through its ``worker_crash`` instant instead.
    """
    spans: list[Span] = []
    open_attempts: dict[tuple, dict] = {}
    open_sims: dict[tuple, list[dict]] = {}
    open_shards: dict[tuple, dict] = {}
    sweep_open: dict | None = None
    tids: dict[tuple, int] = {}

    def tid_for(pid: int, label: str) -> int:
        return tids.setdefault((pid, label), len(
            [k for k in tids if k[0] == pid]) + 1)

    def close(name: str, opened: dict, closed: dict,
              extra: dict | None = None, tid: int | None = None) -> None:
        args = dict(opened.get("data", {}))
        args.update(closed.get("data", {}))
        if extra:
            args.update(extra)
        for key in ("run", "point", "shard", "attempt"):
            if opened.get(key) is not None:
                args.setdefault(key, opened[key])
        spans.append(Span(
            name=name, start=opened["wall"],
            duration=max(0.0, closed["wall"] - opened["wall"]),
            pid=opened["pid"],
            tid=tid if tid is not None else tid_for(opened["pid"],
                                                    _label(opened)),
            args=args))

    for event in events:
        kind = event["kind"]
        pid = event["pid"]
        if kind == "sweep_start":
            sweep_open = event
        elif kind == "sweep_end" and sweep_open is not None:
            close("sweep", sweep_open, event, tid=0)
            sweep_open = None
        elif kind == "task_spawn":
            open_attempts[(event.get("point"), event.get("attempt"))] = \
                event
        elif kind in _ATTEMPT_SETTLES:
            key = (event.get("point"), event.get("attempt"))
            opened = open_attempts.pop(key, None)
            if opened is not None:
                close(f"attempt {_label(event)} #{event.get('attempt')}",
                      opened, event, extra={"outcome": kind})
        elif kind == _SIM_OPEN:
            open_sims.setdefault((pid, _label(event)), []).append(event)
        elif kind == "warmup_end":
            stack = open_sims.get((pid, _label(event)))
            if stack:
                stack.append(event)
        elif kind == "run_end":
            stack = open_sims.pop((pid, _label(event)), None)
            if stack:
                started = stack[0]
                close(f"sim {_label(started)}", started, event)
                if len(stack) > 1:          # a warmup_end in between
                    boundary = stack[1]
                    close("warmup", started, boundary)
                    close("measure", boundary, event)
        elif kind == "shard_start":
            open_shards[(pid, event.get("shard"))] = event
        elif kind == "shard_end":
            opened = open_shards.pop((pid, event.get("shard")), None)
            if opened is not None:
                close(f"shard {event.get('shard')}", opened, event)
    return spans


def trace_from_events(events: list[dict]) -> dict:
    """Chrome trace-event document for one event log.

    Spans (see :func:`spans_from_events`) become complete events;
    point-in-time kinds become process-scoped instant markers.  The
    time origin is the earliest event's wall clock.
    """
    for event in events:
        validate_event(event)
    origin = min((e["wall"] for e in events), default=0.0)
    trace_events = [span.to_trace_event(origin)
                    for span in spans_from_events(events)]
    for event in events:
        if event["kind"] in _INSTANT_KINDS:
            args = dict(event.get("data", {}))
            for key in ("run", "point", "shard", "attempt"):
                if event.get(key) is not None:
                    args[key] = event[key]
            trace_events.append({
                "name": event["kind"], "ph": "i", "s": "p",
                "cat": "repro",
                "ts": round((event["wall"] - origin) * 1e6, 3),
                "pid": event["pid"], "tid": 0, "args": args})
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def export_chrome_trace(events_path: str | Path,
                        out_path: str | Path) -> int:
    """Convert one JSONL event log into a Chrome-trace JSON file.

    Returns the number of trace events written.  The output loads
    directly in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.
    """
    document = trace_from_events(read_events(events_path))
    Path(out_path).write_text(json.dumps(document, indent=1),
                              encoding="utf-8")
    return len(document["traceEvents"])


def validate_chrome_trace(data: dict) -> dict:
    """Structural check of one trace-event document; returns it.

    Verifies the container shape and every event's required fields —
    the checks Perfetto's loader effectively performs — raising
    :class:`~repro.errors.ObservabilityError` on the first defect.
    """
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ObservabilityError(
            "chrome trace must be an object with a 'traceEvents' list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ObservabilityError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ObservabilityError(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in ("X", "i"):
            raise ObservabilityError(
                f"{where}: unsupported phase {ph!r} (this build writes "
                f"'X' and 'i' events)")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ObservabilityError(f"{where}: missing event name")
        for key in ("ts",) + (("dur",) if ph == "X" else ()):
            value = event.get(key)
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool) or value < 0:
                raise ObservabilityError(
                    f"{where}: field {key!r} must be a non-negative "
                    f"number, got {value!r}")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ObservabilityError(
                    f"{where}: field {key!r} must be an int")
    return data
