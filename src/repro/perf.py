"""Simulation-throughput benchmark across the three cycle engines.

Measures simulated instructions per wall-clock second on a small matrix
of configurations chosen to bracket the cycle engines' best and worst
cases:

- ``stall_heavy`` — no prefetching, an instruction working set several
  times the L1-I, and an extreme memory latency.  The machine spends
  almost all of its cycles fully stalled on fills, which is exactly the
  pattern the idle-cycle jump engines collapse.
- ``prefetch_saturated`` — FDIP with enqueue filtering at stock
  latencies.  The prefetcher touches the memory system nearly every
  cycle, so almost nothing is skippable; this point exists to verify
  that the skip machinery costs (close to) nothing when it cannot help.
- ``mixed_phases`` — FDIP with enqueue filtering against 800-cycle
  memory: prefetch bursts alternate with fully drained stall windows.
  The fast engine loses its saturated-phase overhead here while the
  event engine's per-component elision and adaptive jump gating win
  both phases — the point the event engine exists for.

Each point is simulated under every engine (``naive``, ``fast``,
``event``), timed as the **median** of ``reps`` repetitions after
``warmup`` untimed runs, with the repetitions interleaved across
engines so clock-frequency drift lands on all of them equally; each
engine's speedup is the median of its *per-round* ratios against the
same round's naive run, which cancels machine-speed drift between
rounds as well.  The
per-engine :class:`~repro.sim.results.SimResult` objects are compared
for full equality — the benchmark doubles as an end-to-end equivalence
check.  Results are written as JSON (``BENCH_perf.json`` by default)
and optionally compared against a committed baseline
(``benchmarks/perf_baseline.json``), failing when any engine's
*speedup over naive* regresses by more than ``max_regression``
(speedups are wall-clock ratios, so the comparison is
machine-independent in a way raw instructions/second is not).

Run it via ``python -m repro perf`` or ``make perf``; interpretation
notes live in ``docs/performance.md``.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass, replace
from typing import Iterable

from repro.api import simulate
from repro.cfg import ProgramShape, generate_program
from repro.config import ENGINES, PrefetchConfig, SimConfig
from repro.sim.results import SimResult
from repro.trace import Trace

__all__ = ["PerfPoint", "PERF_MATRIX", "run_perf", "compare_to_baseline",
           "write_report", "format_report"]

DEFAULT_OUTPUT = "BENCH_perf.json"
DEFAULT_BASELINE = "benchmarks/perf_baseline.json"
DEFAULT_LENGTH = 40_000
QUICK_LENGTH = 15_000
DEFAULT_REPS = 5
DEFAULT_WARMUP = 1
DEFAULT_MAX_REGRESSION = 0.15

# Working set of ~64KB (16k instructions x 4B) against a 16KB L1-I:
# capacity misses on every pass through the program.
_SHAPE = ProgramShape(target_instrs=16384, n_functions=48, n_levels=6,
                      dispatcher_fanout=6)
_PROGRAM_SEED = 11
_TRACE_SEED = 3


@dataclass(frozen=True)
class PerfPoint:
    """One (name, config) cell of the benchmark matrix."""

    name: str
    config: SimConfig
    description: str


def _stall_heavy() -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind="none"))
    return replace(config,
                   memory=replace(config.memory, memory_latency=1600))


def _prefetch_saturated() -> SimConfig:
    return SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                             filter_mode="enqueue"))


def _mixed_phases() -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                               filter_mode="enqueue"))
    return replace(config,
                   memory=replace(config.memory, memory_latency=800))


PERF_MATRIX: tuple[PerfPoint, ...] = (
    PerfPoint("stall_heavy", _stall_heavy(),
              "no prefetch, thrashing L1-I, 1600-cycle memory"),
    PerfPoint("prefetch_saturated", _prefetch_saturated(),
              "fdip/enqueue at stock latencies"),
    PerfPoint("mixed_phases", _mixed_phases(),
              "fdip/enqueue against 800-cycle memory: prefetch bursts "
              "alternating with drained stall windows"),
)


def _build_trace(length: int, seed: int | None = None) -> Trace:
    program = generate_program(_SHAPE, seed=_PROGRAM_SEED)
    return Trace.from_program(program, length,
                              seed=_TRACE_SEED if seed is None else seed)


def _time_engines(trace: Trace, config: SimConfig, reps: int,
                  warmup: int) -> dict[str, tuple[float, float, SimResult]]:
    """Median-of-``reps`` wall time and speedup per engine, interleaved.

    Each repetition round runs every engine once back to back, so a
    machine speeding up or slowing down mid-benchmark biases all
    engines equally instead of whichever happened to run last.  The
    reported speedup is the **median of per-round ratios** — each
    engine's time divided by the *same round's* naive time — which
    cancels machine-speed drift between rounds in a way dividing two
    independent medians does not.

    Returns ``{engine: (median_seconds, median_speedup, result)}``
    (speedup is 1.0 for naive itself).
    """
    configs = {engine: config.replace(engine=engine)
               for engine in ENGINES}
    results: dict[str, SimResult] = {}
    for _ in range(max(warmup, 1)):   # at least one untimed warm run
        for engine in ENGINES:
            results[engine] = simulate(trace, configs[engine])
    times: dict[str, list[float]] = {engine: [] for engine in ENGINES}
    for _ in range(reps):
        for engine in ENGINES:
            start = time.perf_counter()
            results[engine] = simulate(trace, configs[engine])
            times[engine].append(time.perf_counter() - start)
    timed = {}
    for engine in ENGINES:
        speedup = statistics.median(
            naive / mine for naive, mine
            in zip(times["naive"], times[engine]))
        timed[engine] = (statistics.median(times[engine]), speedup,
                         results[engine])
    return timed


def run_perf(length: int = DEFAULT_LENGTH, reps: int = DEFAULT_REPS,
             points: Iterable[PerfPoint] = PERF_MATRIX,
             seed: int | None = None,
             warmup: int = DEFAULT_WARMUP) -> dict:
    """Run the benchmark matrix; returns the version-2 report dict.

    ``seed`` overrides the canonical benchmark trace seed — results are
    only comparable to the committed baseline at the default.
    """
    trace = _build_trace(length, seed)
    default_engine = SimConfig().engine
    report = {"version": 2, "length": length, "reps": reps,
              "warmup": warmup, "default_engine": default_engine,
              "points": {}}
    instructions = len(trace)
    for point in points:
        timed = _time_engines(trace, point.config, reps, warmup)
        naive_result = timed["naive"][2]
        engines = {}
        for engine, (seconds, speedup, result) in timed.items():
            row = {"seconds": round(seconds, 6),
                   "ips": round(instructions / seconds, 1),
                   "identical": result == naive_result}
            if engine != "naive":
                row["speedup"] = round(speedup, 3)
            engines[engine] = row
        report["points"][point.name] = {
            "description": point.description,
            "instructions": instructions,
            "cycles": naive_result.cycles,
            "engine": default_engine,
            "engines": engines,
            "speedup": engines[default_engine]["speedup"],
            "identical": all(row["identical"]
                             for row in engines.values()),
        }
    return report


def compare_to_baseline(report: dict, baseline: dict,
                        max_regression: float = DEFAULT_MAX_REGRESSION,
                        ) -> list[str]:
    """Failure messages for points regressing beyond ``max_regression``.

    Compares each engine's speedup-over-naive point by point — a
    wall-clock ratio, so a uniformly faster or slower machine cancels
    out.  A point or engine missing from the baseline is skipped (it is
    new).  Version-1 baselines (fast engine only) are compared on their
    single recorded speedup.  An empty list means the report is
    acceptable.
    """
    failures = []
    for name, data in report["points"].items():
        base = baseline.get("points", {}).get(name)
        if base is None:
            continue
        base_engines = base.get("engines")
        if base_engines is None:
            # Version-1 baseline: one fast-vs-naive speedup per point.
            base_engines = {"fast": {"speedup": base["speedup"]}}
        for engine, base_row in base_engines.items():
            base_speedup = base_row.get("speedup")
            row = data["engines"].get(engine)
            if base_speedup is None or row is None:
                continue
            floor = base_speedup * (1.0 - max_regression)
            if row["speedup"] < floor:
                failures.append(
                    f"{name}: {engine}-engine speedup "
                    f"{row['speedup']:.2f}x is below {floor:.2f}x "
                    f"(baseline {base_speedup:.2f}x - "
                    f"{max_regression:.0%})")
    for name, data in report["points"].items():
        if not data["identical"]:
            failures.append(
                f"{name}: engine results DIFFER — an engine is "
                f"broken, fix before worrying about speed")
    return failures


def write_report(report: dict, path: str) -> None:
    """Write ``report`` as JSON, keeping foreign sections of ``path``.

    The baseline file carries sections owned by other benches (the
    sharding reference lives under ``"shard"``, written by
    ``benchmarks/bench_shard.py``); overwriting an existing file keeps
    any top-level key this report does not produce, so regenerating the
    engine matrix never discards the shard numbers.
    """
    import os

    merged = dict(report)
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                previous = json.load(fh)
        except (OSError, ValueError):
            previous = {}
        for key, value in previous.items():
            if key not in merged:
                merged[key] = value
    with open(path, "w", encoding="utf-8") as out:
        json.dump(merged, out, indent=2, sort_keys=True)
        out.write("\n")


def format_report(report: dict) -> str:
    lines = [f"perf: {report['length']} instructions, median of "
             f"{report['reps']} (after {report.get('warmup', 0)} "
             f"warmup), default engine {report['default_engine']}"]
    for name, data in report["points"].items():
        engines = data["engines"]
        cells = [f"{engine} {row['ips']:>12,.0f} instr/s"
                 + (f" ({row['speedup']:.2f}x)"
                    if "speedup" in row else "")
                 for engine, row in engines.items()]
        lines.append(
            f"  {name:20s} " + "   ".join(cells) + "   "
            + ("identical" if data["identical"] else "RESULTS DIFFER"))
    return "\n".join(lines)
