"""Simulation-throughput benchmark: the fast path versus the naive loop.

Measures simulated instructions per wall-clock second on a small matrix
of configurations chosen to bracket the fast path's best and worst
cases:

- ``stall_heavy`` — no prefetching, an instruction working set several
  times the L1-I, and an extreme memory latency.  The machine spends
  almost all of its cycles fully stalled on fills, which is exactly the
  pattern the idle-cycle skip engine collapses.
- ``prefetch_saturated`` — FDIP with enqueue filtering at stock
  latencies.  The prefetcher touches the memory system nearly every
  cycle, so almost nothing is skippable; this point exists to verify
  that the skip machinery costs (close to) nothing when it cannot help.

Each point is simulated with the fast loop off and on, best-of-``reps``
timing, and the two :class:`~repro.sim.results.SimResult` objects are
compared for full equality — the benchmark doubles as an end-to-end
equivalence check.  Results are written as JSON (``BENCH_perf.json`` by
default) and optionally compared against a committed baseline
(``benchmarks/perf_baseline.json``), failing when fast-loop
instructions/second regresses by more than ``max_regression``.

Run it via ``python -m repro perf`` or ``make perf``; interpretation
notes live in ``docs/performance.md``.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from typing import Iterable

from repro.api import simulate
from repro.cfg import ProgramShape, generate_program
from repro.config import PrefetchConfig, SimConfig
from repro.sim.results import SimResult
from repro.trace import Trace

__all__ = ["PerfPoint", "PERF_MATRIX", "run_perf", "compare_to_baseline",
           "write_report"]

DEFAULT_OUTPUT = "BENCH_perf.json"
DEFAULT_BASELINE = "benchmarks/perf_baseline.json"
DEFAULT_LENGTH = 40_000
QUICK_LENGTH = 15_000
DEFAULT_MAX_REGRESSION = 0.30

# Working set of ~64KB (16k instructions x 4B) against a 16KB L1-I:
# capacity misses on every pass through the program.
_SHAPE = ProgramShape(target_instrs=16384, n_functions=48, n_levels=6,
                      dispatcher_fanout=6)
_PROGRAM_SEED = 11
_TRACE_SEED = 3


@dataclass(frozen=True)
class PerfPoint:
    """One (name, config) cell of the benchmark matrix."""

    name: str
    config: SimConfig
    description: str


def _stall_heavy() -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind="none"))
    return replace(config,
                   memory=replace(config.memory, memory_latency=1600))


def _prefetch_saturated() -> SimConfig:
    return SimConfig(prefetch=PrefetchConfig(kind="fdip",
                                             filter_mode="enqueue"))


PERF_MATRIX: tuple[PerfPoint, ...] = (
    PerfPoint("stall_heavy", _stall_heavy(),
              "no prefetch, thrashing L1-I, 1600-cycle memory"),
    PerfPoint("prefetch_saturated", _prefetch_saturated(),
              "fdip/enqueue at stock latencies"),
)


def _build_trace(length: int, seed: int | None = None) -> Trace:
    program = generate_program(_SHAPE, seed=_PROGRAM_SEED)
    return Trace.from_program(program, length,
                              seed=_TRACE_SEED if seed is None else seed)


def _time_run(trace: Trace, config: SimConfig, fast: bool,
              reps: int) -> tuple[float, SimResult]:
    """Best-of-``reps`` wall time for one configuration."""
    best = float("inf")
    result = None
    for _ in range(reps):
        start = time.perf_counter()
        result = simulate(trace, config, fast_loop=fast)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def run_perf(length: int = DEFAULT_LENGTH, reps: int = 3,
             points: Iterable[PerfPoint] = PERF_MATRIX,
             seed: int | None = None) -> dict:
    """Run the benchmark matrix; returns the report dict.

    ``seed`` overrides the canonical benchmark trace seed — results are
    only comparable to the committed baseline at the default.
    """
    trace = _build_trace(length, seed)
    report = {"version": 1, "length": length, "reps": reps, "points": {}}
    for point in points:
        naive_s, naive_result = _time_run(trace, point.config, False, reps)
        fast_s, fast_result = _time_run(trace, point.config, True, reps)
        instructions = len(trace)
        report["points"][point.name] = {
            "description": point.description,
            "instructions": instructions,
            "naive_seconds": round(naive_s, 6),
            "fast_seconds": round(fast_s, 6),
            "naive_ips": round(instructions / naive_s, 1),
            "fast_ips": round(instructions / fast_s, 1),
            "speedup": round(naive_s / fast_s, 3),
            "identical": naive_result == fast_result,
            "cycles": fast_result.cycles,
        }
    return report


def compare_to_baseline(report: dict, baseline: dict,
                        max_regression: float = DEFAULT_MAX_REGRESSION,
                        ) -> list[str]:
    """Failure messages for points regressing beyond ``max_regression``.

    Compares fast-loop instructions/second point by point; a point
    missing from the baseline is skipped (it is new).  An empty list
    means the report is acceptable.
    """
    failures = []
    for name, data in report["points"].items():
        base = baseline.get("points", {}).get(name)
        if base is None:
            continue
        floor = base["fast_ips"] * (1.0 - max_regression)
        if data["fast_ips"] < floor:
            failures.append(
                f"{name}: fast-loop throughput {data['fast_ips']:.0f} "
                f"instr/s is below {floor:.0f} (baseline "
                f"{base['fast_ips']:.0f} - {max_regression:.0%})")
    for name, data in report["points"].items():
        if not data["identical"]:
            failures.append(
                f"{name}: fast and naive results DIFFER — the fast "
                f"path is broken, fix before worrying about speed")
    return failures


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as out:
        json.dump(report, out, indent=2, sort_keys=True)
        out.write("\n")


def format_report(report: dict) -> str:
    lines = [f"perf: {report['length']} instructions, "
             f"best of {report['reps']}"]
    for name, data in report["points"].items():
        lines.append(
            f"  {name:20s} naive {data['naive_ips']:>12,.0f} instr/s   "
            f"fast {data['fast_ips']:>12,.0f} instr/s   "
            f"speedup {data['speedup']:.2f}x   "
            f"{'identical' if data['identical'] else 'RESULTS DIFFER'}")
    return "\n".join(lines)
