"""Typed experiment point and request specifications.

Sweeps historically took bare ``(workload, SimConfig)`` tuples, which
left no room for per-point metadata — a display label, or a per-point
shard count — without growing parallel argument lists.  :class:`Point`
is the typed replacement; :class:`ExperimentSpec` is an immutable,
iterable collection of points with a name.

Bare ``(workload, config)`` tuples are no longer accepted:
:func:`normalize_points` rejects them with a
:class:`~repro.errors.ConfigError` naming the :class:`Point`
replacement (they were deprecated with a warning for several releases
first).

:class:`RunRequest` / :class:`RunResponse` are the canonical
request/response pair of the unified run API: one frozen bundle of
everything that identifies a simulation — workload, configuration,
trace length, seed, sharding — with a wire form (:meth:`RunRequest.
to_dict`) and a content-addressed identity (:meth:`RunRequest.
cache_key`).  :func:`resolve_request` is the single normalization
path: :func:`repro.api.simulate`, :func:`repro.api.profile_run`,
:func:`repro.api.execute`, the memoizing runner, and the serving
daemon all resolve their inputs through it, so the key a cache stores
under and the simulation a library call runs can never disagree.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.cachekey import cache_key, shard_variant
from repro.config import SimConfig
from repro.errors import ConfigError

if TYPE_CHECKING:
    from repro.sim.results import SimResult

__all__ = ["Point", "ExperimentSpec", "normalize_points",
           "RunRequest", "RunResponse", "resolve_request"]

#: Wire-format tag of one serialized :class:`RunRequest`.
REQUEST_SCHEMA = "repro.request/v1"


@dataclass(frozen=True)
class Point:
    """One sweep point: a workload simulated under a configuration.

    ``label`` names the point in reports (defaults to the workload
    name); ``shards`` asks the runner to split this point's trace into
    that many windows and merge the telemetry (see
    :mod:`repro.sim.sharding`) — ``None`` inherits the runner's
    sharding policy, ``1`` forces a monolithic run.
    """

    workload: str
    config: SimConfig
    label: str | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                f"Point.workload must be a non-empty string, "
                f"got {self.workload!r}")
        if not isinstance(self.config, SimConfig):
            raise ConfigError(
                f"Point.config must be a SimConfig, "
                f"got {type(self.config).__name__}")
        if self.shards is not None and self.shards < 1:
            raise ConfigError(
                f"Point.shards must be >= 1 or None, got {self.shards}")

    @property
    def name(self) -> str:
        """The point's display name (``label`` or the workload)."""
        return self.label if self.label is not None else self.workload

    @property
    def key(self) -> tuple[str, SimConfig]:
        """The ``(workload, config)`` identity sweeps key results by."""
        return (self.workload, self.config)


@dataclass(frozen=True)
class ExperimentSpec:
    """An immutable, named collection of sweep points.

    Iterates and indexes like a sequence of :class:`Point`.  Build one
    from an iterable of points with :meth:`of`.
    """

    points: tuple[Point, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        for point in self.points:
            if not isinstance(point, Point):
                raise ConfigError(
                    f"ExperimentSpec.points must contain Point objects; "
                    f"got {type(point).__name__} (build specs with "
                    f"ExperimentSpec.of)")

    @classmethod
    def of(cls, points: "Iterable[Point]",
           name: str = "") -> "ExperimentSpec":
        """Build a spec from an iterable of :class:`Point` objects."""
        return cls(points=tuple(normalize_points(points)), name=name)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    @property
    def workloads(self) -> tuple[str, ...]:
        """Unique workloads, in first-appearance order."""
        return tuple(dict.fromkeys(p.workload for p in self.points))

    @property
    def configs(self) -> tuple[SimConfig, ...]:
        """Unique configurations, in first-appearance order."""
        return tuple(dict.fromkeys(p.config for p in self.points))


def normalize_points(points: "Iterable[Point] | ExperimentSpec",
                     ) -> list[Point]:
    """Coerce a point collection to a list of :class:`Point`.

    Accepts :class:`Point` instances and :class:`ExperimentSpec`.
    Legacy ``(workload, config)`` tuples — deprecated with a warning
    for several releases — are now rejected with a
    :class:`~repro.errors.ConfigError` that names the replacement.
    """
    if isinstance(points, ExperimentSpec):
        return list(points.points)
    normalized: list[Point] = []
    for entry in points:
        if isinstance(entry, Point):
            normalized.append(entry)
        elif isinstance(entry, Sequence) and not isinstance(entry, str) \
                and len(entry) == 2:
            workload = entry[0]
            raise ConfigError(
                f"legacy (workload, config) tuple sweep points were "
                f"removed; pass repro.Point({workload!r}, config) "
                f"instead")
        else:
            raise ConfigError(
                f"sweep points must be Point objects; got {entry!r}")
    return normalized


# ----------------------------------------------------------------------
# Unified run request / response
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RunRequest:
    """Everything that identifies one simulation run.

    A request bundles the workload/trace identity ``(workload,
    trace_length, seed)``, the full :class:`~repro.config.SimConfig`,
    and the execution variant (``shards``/``shard_overlap``); ``label``
    names the run in reports and never contributes to identity.

    ``trace_length=None`` and ``shards=None`` mean "use the default" —
    :func:`resolve_request` pins them down.  Only a *resolved* request
    (:attr:`resolved` true) has a :meth:`cache_key`; every cache in the
    system keys on that digest.
    """

    workload: str
    config: SimConfig = field(default_factory=SimConfig)
    trace_length: int | None = None
    seed: int = 1
    shards: int | None = None
    shard_overlap: int | None = None
    label: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                f"RunRequest.workload must be a non-empty string, "
                f"got {self.workload!r}")
        if not isinstance(self.config, SimConfig):
            raise ConfigError(
                f"RunRequest.config must be a SimConfig, "
                f"got {type(self.config).__name__}")
        if self.trace_length is not None and self.trace_length < 1:
            raise ConfigError(
                f"RunRequest.trace_length must be >= 1 or None, "
                f"got {self.trace_length}")
        if self.shards is not None and self.shards < 1:
            raise ConfigError(
                f"RunRequest.shards must be >= 1 or None, "
                f"got {self.shards}")
        if self.shard_overlap is not None and self.shard_overlap < 0:
            raise ConfigError(
                f"RunRequest.shard_overlap must be >= 0 or None, "
                f"got {self.shard_overlap}")

    @property
    def name(self) -> str:
        """Display name (``label`` or the workload)."""
        return self.label if self.label is not None else self.workload

    @property
    def resolved(self) -> bool:
        """Whether every identity-bearing default has been pinned down."""
        return self.trace_length is not None and self.shards is not None

    def variant(self) -> str:
        """Execution-variant tag ('' monolithic, else the shard tag)."""
        if self.shards is None or self.shards <= 1:
            return ""
        return shard_variant(self.shards, self.shard_overlap)

    def cache_key(self) -> str:
        """Content-addressed identity digest (resolved requests only).

        See :func:`repro.cachekey.cache_key` for exactly what the
        digest covers; an unresolved request has no stable identity and
        raises :class:`~repro.errors.ConfigError`.
        """
        if not self.resolved:
            raise ConfigError(
                "cache_key needs a resolved request (trace_length and "
                "shards pinned); pass it through resolve_request first")
        assert self.trace_length is not None
        return cache_key(self.workload, self.config, self.trace_length,
                         self.seed, self.variant())

    def to_dict(self) -> dict:
        """JSON-compatible wire form (the daemon's request body)."""
        return {
            "schema": REQUEST_SCHEMA,
            "workload": self.workload,
            "config": self.config.to_dict(),
            "trace_length": self.trace_length,
            "seed": self.seed,
            "shards": self.shards,
            "shard_overlap": self.shard_overlap,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRequest":
        """Inverse of :meth:`to_dict`; validates schema and every field."""
        if not isinstance(data, dict):
            raise ConfigError(
                f"RunRequest payload must be a mapping, "
                f"got {type(data).__name__}")
        schema = data.get("schema", REQUEST_SCHEMA)
        if schema != REQUEST_SCHEMA:
            raise ConfigError(
                f"unsupported request schema {schema!r} "
                f"(this build reads {REQUEST_SCHEMA!r})")
        known = {"schema", "workload", "config", "trace_length", "seed",
                 "shards", "shard_overlap", "label"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown request key {unknown[0]!r}; valid keys: "
                f"{', '.join(sorted(known))}")
        config = data.get("config")
        return cls(
            workload=data.get("workload", ""),
            config=(SimConfig.from_dict(config)
                    if isinstance(config, dict) else SimConfig()),
            trace_length=data.get("trace_length"),
            seed=data.get("seed", 1),
            shards=data.get("shards"),
            shard_overlap=data.get("shard_overlap"),
            label=data.get("label"),
        )


@dataclass(frozen=True)
class RunResponse:
    """One executed (or served) :class:`RunRequest`.

    ``source`` says where the result came from: ``"computed"`` (a
    simulation actually ran), ``"cache"`` (served from the
    content-addressed result cache), or ``"coalesced"`` (this client
    shared another client's in-flight simulation).  ``profile`` carries
    the ``repro.profile/v1`` document when the run was profiled.
    """

    result: "SimResult"
    request: RunRequest
    source: str = "computed"
    profile: dict | None = None

    SOURCES = ("computed", "cache", "coalesced")

    def __post_init__(self) -> None:
        if self.source not in self.SOURCES:
            raise ConfigError(
                f"RunResponse.source must be one of "
                f"{', '.join(self.SOURCES)}; got {self.source!r}")

    def __iter__(self) -> Iterator[Any]:
        # One-release shim: profile_run used to return a bare
        # (result, profile) tuple, so unpacking must keep working.
        warnings.warn(
            "unpacking a RunResponse as (result, profile) is "
            "deprecated; use response.result and response.profile "
            "(profile_run now returns a RunResponse)",
            DeprecationWarning, stacklevel=2)
        yield self.result
        yield self.profile


def resolve_request(request: RunRequest | None = None, *,
                    workload: str | None = None,
                    config: SimConfig | None = None,
                    trace_length: int | None = None,
                    seed: int | None = None,
                    shards: int | None = None,
                    shard_overlap: int | None = None,
                    label: str | None = None) -> RunRequest:
    """Normalize a request (or kwargs) into one resolved RunRequest.

    This is the single normalization path of the run API: defaults are
    applied exactly once, here — ``config`` to a stock
    :class:`~repro.config.SimConfig`, ``trace_length`` to the
    environment-controlled experiment default, ``shards`` to 1
    (monolithic), and ``shard_overlap`` to the calibrated default when
    sharding is on (and ``None`` when it is off, so a monolithic
    request can never encode a meaningless overlap into its identity).
    Explicit keyword arguments override the corresponding fields of a
    given ``request``.
    """
    if request is not None and not isinstance(request, RunRequest):
        raise ConfigError(
            f"expected a RunRequest, got {type(request).__name__} "
            f"(build one with repro.RunRequest(workload, config))")
    if request is None:
        if workload is None:
            raise ConfigError(
                "resolve_request needs a RunRequest or workload=...")
        request = RunRequest(workload=workload,
                             config=config or SimConfig(),
                             trace_length=trace_length,
                             seed=seed if seed is not None else 1,
                             shards=shards, shard_overlap=shard_overlap,
                             label=label)
    else:
        overrides: dict[str, Any] = {}
        if workload is not None:
            overrides["workload"] = workload
        if config is not None:
            overrides["config"] = config
        if trace_length is not None:
            overrides["trace_length"] = trace_length
        if seed is not None:
            overrides["seed"] = seed
        if shards is not None:
            overrides["shards"] = shards
        if shard_overlap is not None:
            overrides["shard_overlap"] = shard_overlap
        if label is not None:
            overrides["label"] = label
        if overrides:
            request = replace(request, **overrides)

    resolved_length = request.trace_length
    if resolved_length is None:
        from repro.harness.runner import default_trace_length

        resolved_length = default_trace_length()
    nshards = request.shards if request.shards is not None else 1
    nshards = max(1, min(nshards, resolved_length))
    overlap = request.shard_overlap
    if nshards > 1:
        if overlap is None:
            from repro.sim.sharding import DEFAULT_SHARD_OVERLAP

            overlap = DEFAULT_SHARD_OVERLAP
    else:
        overlap = None
    return replace(request, trace_length=resolved_length,
                   shards=nshards, shard_overlap=overlap)
