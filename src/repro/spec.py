"""Typed experiment point specifications.

Sweeps historically took bare ``(workload, SimConfig)`` tuples, which
left no room for per-point metadata — a display label, or a per-point
shard count — without growing parallel argument lists.  :class:`Point`
is the typed replacement; :class:`ExperimentSpec` is an immutable,
iterable collection of points with a name.

Bare ``(workload, config)`` tuples are no longer accepted:
:func:`normalize_points` rejects them with a
:class:`~repro.errors.ConfigError` naming the :class:`Point`
replacement (they were deprecated with a warning for several releases
first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.config import SimConfig
from repro.errors import ConfigError

__all__ = ["Point", "ExperimentSpec", "normalize_points"]


@dataclass(frozen=True)
class Point:
    """One sweep point: a workload simulated under a configuration.

    ``label`` names the point in reports (defaults to the workload
    name); ``shards`` asks the runner to split this point's trace into
    that many windows and merge the telemetry (see
    :mod:`repro.sim.sharding`) — ``None`` inherits the runner's
    sharding policy, ``1`` forces a monolithic run.
    """

    workload: str
    config: SimConfig
    label: str | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                f"Point.workload must be a non-empty string, "
                f"got {self.workload!r}")
        if not isinstance(self.config, SimConfig):
            raise ConfigError(
                f"Point.config must be a SimConfig, "
                f"got {type(self.config).__name__}")
        if self.shards is not None and self.shards < 1:
            raise ConfigError(
                f"Point.shards must be >= 1 or None, got {self.shards}")

    @property
    def name(self) -> str:
        """The point's display name (``label`` or the workload)."""
        return self.label if self.label is not None else self.workload

    @property
    def key(self) -> tuple[str, SimConfig]:
        """The ``(workload, config)`` identity sweeps key results by."""
        return (self.workload, self.config)


@dataclass(frozen=True)
class ExperimentSpec:
    """An immutable, named collection of sweep points.

    Iterates and indexes like a sequence of :class:`Point`.  Build one
    from an iterable of points with :meth:`of`.
    """

    points: tuple[Point, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        for point in self.points:
            if not isinstance(point, Point):
                raise ConfigError(
                    f"ExperimentSpec.points must contain Point objects; "
                    f"got {type(point).__name__} (build specs with "
                    f"ExperimentSpec.of)")

    @classmethod
    def of(cls, points: "Iterable[Point]",
           name: str = "") -> "ExperimentSpec":
        """Build a spec from an iterable of :class:`Point` objects."""
        return cls(points=tuple(normalize_points(points)), name=name)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    @property
    def workloads(self) -> tuple[str, ...]:
        """Unique workloads, in first-appearance order."""
        return tuple(dict.fromkeys(p.workload for p in self.points))

    @property
    def configs(self) -> tuple[SimConfig, ...]:
        """Unique configurations, in first-appearance order."""
        return tuple(dict.fromkeys(p.config for p in self.points))


def normalize_points(points: "Iterable[Point] | ExperimentSpec",
                     ) -> list[Point]:
    """Coerce a point collection to a list of :class:`Point`.

    Accepts :class:`Point` instances and :class:`ExperimentSpec`.
    Legacy ``(workload, config)`` tuples — deprecated with a warning
    for several releases — are now rejected with a
    :class:`~repro.errors.ConfigError` that names the replacement.
    """
    if isinstance(points, ExperimentSpec):
        return list(points.points)
    normalized: list[Point] = []
    for entry in points:
        if isinstance(entry, Point):
            normalized.append(entry)
        elif isinstance(entry, Sequence) and not isinstance(entry, str) \
                and len(entry) == 2:
            workload = entry[0]
            raise ConfigError(
                f"legacy (workload, config) tuple sweep points were "
                f"removed; pass repro.Point({workload!r}, config) "
                f"instead")
        else:
            raise ConfigError(
                f"sweep points must be Point objects; got {entry!r}")
    return normalized
