"""Typed experiment point specifications.

Sweeps historically took bare ``(workload, SimConfig)`` tuples, which
left no room for per-point metadata — a display label, or a per-point
shard count — without growing parallel argument lists.  :class:`Point`
is the typed replacement; :class:`ExperimentSpec` is an immutable,
iterable collection of points with a name.

Bare tuples remain accepted everywhere points are (``Runner.sweep``,
``repro.api.sweep``): :func:`normalize_points` converts them and warns
once per process with a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.config import SimConfig
from repro.errors import ConfigError

__all__ = ["Point", "ExperimentSpec", "normalize_points"]


@dataclass(frozen=True)
class Point:
    """One sweep point: a workload simulated under a configuration.

    ``label`` names the point in reports (defaults to the workload
    name); ``shards`` asks the runner to split this point's trace into
    that many windows and merge the telemetry (see
    :mod:`repro.sim.sharding`) — ``None`` inherits the runner's
    sharding policy, ``1`` forces a monolithic run.
    """

    workload: str
    config: SimConfig
    label: str | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                f"Point.workload must be a non-empty string, "
                f"got {self.workload!r}")
        if not isinstance(self.config, SimConfig):
            raise ConfigError(
                f"Point.config must be a SimConfig, "
                f"got {type(self.config).__name__}")
        if self.shards is not None and self.shards < 1:
            raise ConfigError(
                f"Point.shards must be >= 1 or None, got {self.shards}")

    @property
    def name(self) -> str:
        """The point's display name (``label`` or the workload)."""
        return self.label if self.label is not None else self.workload

    @property
    def key(self) -> tuple[str, SimConfig]:
        """The ``(workload, config)`` identity sweeps key results by."""
        return (self.workload, self.config)


@dataclass(frozen=True)
class ExperimentSpec:
    """An immutable, named collection of sweep points.

    Iterates and indexes like a sequence of :class:`Point`.  Build one
    from any mix of points and legacy tuples with :meth:`of`.
    """

    points: tuple[Point, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        for point in self.points:
            if not isinstance(point, Point):
                raise ConfigError(
                    f"ExperimentSpec.points must contain Point objects; "
                    f"got {type(point).__name__} (use ExperimentSpec.of "
                    f"to normalize legacy tuples)")

    @classmethod
    def of(cls, points: "Iterable[Point | tuple]",
           name: str = "") -> "ExperimentSpec":
        """Build a spec, normalizing legacy tuples (with a warning)."""
        return cls(points=tuple(normalize_points(points)), name=name)

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

    def __getitem__(self, index: int) -> Point:
        return self.points[index]

    @property
    def workloads(self) -> tuple[str, ...]:
        """Unique workloads, in first-appearance order."""
        return tuple(dict.fromkeys(p.workload for p in self.points))

    @property
    def configs(self) -> tuple[SimConfig, ...]:
        """Unique configurations, in first-appearance order."""
        return tuple(dict.fromkeys(p.config for p in self.points))


_warned_legacy_tuples = False


def _warn_legacy_tuples() -> None:
    global _warned_legacy_tuples
    if _warned_legacy_tuples:
        return
    _warned_legacy_tuples = True
    warnings.warn(
        "passing sweep points as (workload, config) tuples is deprecated; "
        "use repro.Point(workload, config) instead",
        DeprecationWarning, stacklevel=4)


def _reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process tuple deprecation (for tests)."""
    global _warned_legacy_tuples
    _warned_legacy_tuples = False


def normalize_points(points: "Iterable[Point | tuple] | ExperimentSpec",
                     ) -> list[Point]:
    """Coerce a mixed point collection to a list of :class:`Point`.

    Accepts :class:`Point` instances, an :class:`ExperimentSpec`, and
    legacy ``(workload, config)`` tuples; the first tuple seen in this
    process emits a :class:`DeprecationWarning`.  Anything else raises
    :class:`~repro.errors.ConfigError`.
    """
    if isinstance(points, ExperimentSpec):
        return list(points.points)
    normalized: list[Point] = []
    saw_tuple = False
    for entry in points:
        if isinstance(entry, Point):
            normalized.append(entry)
        elif isinstance(entry, Sequence) and not isinstance(entry, str) \
                and len(entry) == 2:
            workload, config = entry
            saw_tuple = True
            normalized.append(Point(workload=workload, config=config))
        else:
            raise ConfigError(
                f"sweep points must be Point objects or (workload, "
                f"config) tuples; got {entry!r}")
    if saw_tuple:
        _warn_legacy_tuples()
    return normalized
