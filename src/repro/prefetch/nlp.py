"""Tagged next-line prefetching (Smith), one of the paper's baselines.

On a demand miss for block X, prefetch X+1 .. X+degree.  With tagging
enabled (the classic improvement), the *first demand use* of a block that
arrived via prefetch also triggers prefetching of its successors, letting
the prefetcher stay ahead on sequential runs instead of only reacting to
misses.

Prefetched blocks land in the same fully-associative prefetch buffer FDIP
uses, so the comparison against FDIP is storage-for-storage fair.
"""

from __future__ import annotations

from collections import deque

from repro.config import PrefetchConfig, PrefetcherKind
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import (
    HIT_L1,
    HIT_SIDECAR,
    MERGED,
    MISS,
    MemorySystem,
    Sidecar,
)
from repro.memory.mshr import MshrEntry
from repro.memory.prefetch_buffer import PrefetchBuffer
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import register

__all__ = ["NlpPrefetcher"]

_REQUEST_QUEUE_DEPTH = 16


class _TaggedBufferSidecar:
    """Prefetch-buffer sidecar that tracks first-use tags for NLP."""

    def __init__(self, buffer: PrefetchBuffer, tags: set[int]):
        self.buffer = buffer
        self._tags = tags

    def probe_and_claim(self, bid: int, now: int) -> bool:
        return self.buffer.claim(bid, now)

    def fill(self, bid: int, entry: MshrEntry) -> None:
        self.buffer.insert(bid, wrong_path=entry.wrong_path,
                           cycle=entry.ready_cycle)
        self._tags.add(bid)

    def fill_merged(self, bid: int) -> None:
        """The block was demanded while in flight; it is no longer a
        not-yet-used prefetch, so it carries no tag."""


@register(PrefetcherKind.NLP)
class NlpPrefetcher(Prefetcher):
    """Tagged next-line instruction prefetcher."""

    def __init__(self, memory: MemorySystem, config: PrefetchConfig):
        super().__init__("nlp", memory)
        self.config = config
        self.buffer = PrefetchBuffer(config.buffer_entries)
        self._tags: set[int] = set()       # prefetched, not yet demanded
        self._sidecar = _TaggedBufferSidecar(self.buffer, self._tags)
        self._requests: deque[int] = deque()

    @property
    def sidecar(self) -> Sidecar:
        return self._sidecar

    # ------------------------------------------------------------------

    def on_demand(self, bid: int, outcome: str, now: int) -> None:
        if outcome in (MISS, MERGED):
            self._trigger(bid)
            self._tags.discard(bid)
        elif outcome == HIT_SIDECAR:
            # First use of a prefetched block (it just left the buffer).
            self._tags.discard(bid)
            if self.config.nlp_tagged:
                self._trigger(bid)
                self.stats.bump("tag_triggers")
        elif outcome == HIT_L1 and bid in self._tags:
            # First demand use of a block promoted earlier.
            self._tags.discard(bid)
            if self.config.nlp_tagged:
                self._trigger(bid)
                self.stats.bump("tag_triggers")

    def _trigger(self, bid: int) -> None:
        self.stats.bump("triggers")
        for successor in range(bid + 1, bid + 1 + self.config.nlp_degree):
            if successor in self._requests:
                continue
            if len(self._requests) >= _REQUEST_QUEUE_DEPTH:
                self.stats.bump("request_queue_overflow")
                return
            self._requests.append(successor)

    # ------------------------------------------------------------------

    def extra_stat_groups(self):
        return [self.stats, self.buffer.stats]

    def _extra_state(self) -> dict:
        return {"tags": sorted(self._tags),
                "requests": list(self._requests),
                "buffer": self.buffer.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        # Clear in place: the sidecar shares this set by reference.
        self._tags.clear()
        self._tags.update(int(bid) for bid in state["tags"])
        self._requests = deque(int(bid) for bid in state["requests"])
        self.buffer.load_state_dict(state["buffer"])

    def lead_histogram(self) -> dict[int, int]:
        return self.buffer.stats.histogram("lead_cycles").as_dict()

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        # With an empty request queue tick touches nothing; a non-empty
        # queue keeps probing/issuing (and bumping counters) every cycle.
        return not self._requests

    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        issued = 0
        while self._requests and issued < self.config.max_prefetches_per_cycle:
            bid = self._requests[0]
            if (self.buffer.contains(bid)
                    or self.memory.mshrs.get(bid) is not None
                    or self.memory.oracle_probe(bid)):
                # Next-line prefetchers sit beside the cache and can check
                # the tag array for their single candidate cheaply.
                self._requests.popleft()
                self.stats.bump("filtered")
                continue
            if not self.memory.try_issue_prefetch(bid, now):
                break
            self._requests.popleft()
            issued += 1
            self.stats.bump("issued")
