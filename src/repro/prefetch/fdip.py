"""Fetch-directed instruction prefetching — the paper's contribution.

The FDIP prefetch engine watches the FTQ.  Every cycle it:

1. (*remove* filtering only) spends idle L1-I tag ports probing blocks
   already waiting in the prefetch instruction queue (PIQ), discarding
   those that turn out to be cache resident;
2. scans not-yet-scanned non-head FTQ entries, decomposes each predicted
   fetch block into cache-block addresses, applies *enqueue* filtering
   (probe on the way into the PIQ, when an idle port exists), and enqueues
   the survivors;
3. issues up to ``max_prefetches_per_cycle`` PIQ-head blocks to the L2 —
   only when the bus is idle and an MSHR is free, preserving demand
   priority.

Prefetched blocks fill the fully-associative prefetch buffer, which the
memory system probes in parallel with the L1-I on demand fetches.

Filtering variants (:class:`~repro.config.FilterMode`):

- ``none`` — no probes; every candidate is enqueued and issued.
- ``enqueue`` — probe at PIQ-entry time if an idle port exists; without a
  port the candidate is enqueued unfiltered (conservative).
- ``remove`` — enqueue filtering plus PIQ re-probing with leftover ports.
- ``ideal`` — oracle: candidates resident in the L1-I are dropped with no
  port cost, and issue re-checks residence.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import FilterMode, PrefetchConfig, PrefetcherKind
from repro.errors import SimulationError
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.block import blocks_spanning
from repro.memory.hierarchy import MemorySystem, Sidecar
from repro.memory.mshr import MshrEntry
from repro.memory.prefetch_buffer import PrefetchBuffer
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import register

__all__ = ["FdipPrefetcher", "PrefetchBufferSidecar"]


class PrefetchBufferSidecar:
    """Adapts :class:`PrefetchBuffer` to the memory-system sidecar API."""

    def __init__(self, buffer: PrefetchBuffer):
        self.buffer = buffer

    def probe_and_claim(self, bid: int, now: int) -> bool:
        return self.buffer.claim(bid, now)

    def fill(self, bid: int, entry: MshrEntry) -> None:
        self.buffer.insert(bid, wrong_path=entry.wrong_path,
                           cycle=entry.ready_cycle)

    def fill_merged(self, bid: int) -> None:
        """The block went straight to the L1-I; nothing to buffer."""


@register(PrefetcherKind.FDIP)
class FdipPrefetcher(Prefetcher):
    """The FDIP prefetch engine with cache probe filtering."""

    def __init__(self, memory: MemorySystem, config: PrefetchConfig):
        super().__init__("fdip", memory)
        self.config = config
        self.buffer = PrefetchBuffer(config.buffer_entries)
        self._sidecar = PrefetchBufferSidecar(self.buffer)
        # PIQ: bid -> wrong_path flag; insertion order = issue order.
        self._piq: OrderedDict[int, bool] = OrderedDict()

    @property
    def sidecar(self) -> Sidecar:
        return self._sidecar

    @property
    def piq_occupancy(self) -> int:
        return len(self._piq)

    # ------------------------------------------------------------------

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        # An empty PIQ silences the remove filter and the issue stage;
        # with no unscanned FTQ entry in the lookahead window the scan
        # stage has nothing to consume either, so tick is a no-op.
        return (not self._piq
                and not ftq.has_unscanned(self.config.min_lookahead,
                                          self.config.max_lookahead))

    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        if self.config.filter_mode == FilterMode.REMOVE:
            self._remove_filter()
        self._scan_ftq(ftq)
        self._issue(now)

    def squash(self) -> None:
        """Pipeline flush: pending (unissued) prefetches are discarded."""
        self.stats.bump("piq_squashed", len(self._piq))
        self._piq.clear()

    # ------------------------------------------------------------------
    # Stage 1: remove filtering of queued candidates
    # ------------------------------------------------------------------

    def _remove_filter(self) -> None:
        """Probe PIQ entries with idle tag ports; drop resident blocks."""
        if not self._piq:
            return
        for bid in list(self._piq):
            if self.memory.idle_tag_ports == 0:
                break
            resident = self.memory.cpf_probe(bid)
            if resident is None:
                break
            if resident:
                del self._piq[bid]
                self.stats.bump("filtered_remove")

    # ------------------------------------------------------------------
    # Stage 2: FTQ scan + enqueue filtering
    # ------------------------------------------------------------------

    def _scan_ftq(self, ftq: FetchTargetQueue) -> None:
        mode = self.config.filter_mode
        for entry in ftq.prefetch_candidates(
                start=self.config.min_lookahead,
                stop=self.config.max_lookahead):
            if len(self._piq) >= self.config.piq_depth:
                break
            for bid in blocks_spanning(entry.start, entry.end,
                                       self.memory.block_bytes):
                if len(self._piq) >= self.config.piq_depth:
                    break
                self._consider(bid, entry.wrong_path, mode)
            else:
                entry.prefetch_scanned = True
                continue
            break  # PIQ filled up mid-entry; rescan the rest next cycle

    def _consider(self, bid: int, wrong_path: bool, mode: str) -> None:
        """Apply enqueue-time filtering and enqueue survivors."""
        if bid in self._piq:
            self.stats.bump("duplicate_candidates")
            return
        self.stats.bump("candidates")
        if self.buffer.contains(bid):
            self.stats.bump("filtered_in_buffer")
            return
        if mode == FilterMode.IDEAL:
            if self.memory.oracle_probe(bid):
                self.stats.bump("filtered_ideal")
                return
        elif mode in (FilterMode.ENQUEUE, FilterMode.REMOVE):
            resident = self.memory.cpf_probe(bid)
            if resident:
                self.stats.bump("filtered_enqueue")
                return
            if resident is None:
                self.stats.bump("enqueued_unfiltered")
        self._piq[bid] = wrong_path

    # ------------------------------------------------------------------
    # Stage 3: issue
    # ------------------------------------------------------------------

    def _issue(self, now: int) -> None:
        issued = 0
        while self._piq and issued < self.config.max_prefetches_per_cycle:
            bid, wrong_path = next(iter(self._piq.items()))
            if self.buffer.contains(bid):
                del self._piq[bid]
                self.stats.bump("filtered_in_buffer")
                continue
            if (self.config.filter_mode == FilterMode.IDEAL
                    and self.memory.oracle_probe(bid)):
                del self._piq[bid]
                self.stats.bump("filtered_ideal")
                continue
            if self.memory.mshrs.get(bid) is not None:
                del self._piq[bid]
                self.stats.bump("dropped_in_flight")
                continue
            if not self.memory.try_issue_prefetch(bid, now,
                                                  wrong_path=wrong_path):
                break  # bus busy or MSHRs full; retry next cycle
            del self._piq[bid]
            issued += 1
            self.stats.bump("issued")
            if wrong_path:
                self.stats.bump("issued_wrong_path")

    # ------------------------------------------------------------------

    def extra_stat_groups(self):
        return [self.stats, self.buffer.stats]

    def _extra_state(self) -> dict:
        return {"piq": [[bid, wrong] for bid, wrong in self._piq.items()],
                "buffer": self.buffer.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._piq.clear()
        for bid, wrong in state["piq"]:
            self._piq[int(bid)] = bool(wrong)
        self.buffer.load_state_dict(state["buffer"])

    def lead_histogram(self) -> dict[int, int]:
        return self.buffer.stats.histogram("lead_cycles").as_dict()

    def validate(self) -> None:
        """Internal consistency check used by tests."""
        if len(self._piq) > self.config.piq_depth:
            raise SimulationError("PIQ exceeded its configured depth")
