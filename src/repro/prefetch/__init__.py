"""Instruction prefetchers: FDIP and the paper's baselines."""

from repro.prefetch.base import Prefetcher
from repro.prefetch.combined import CombinedPrefetcher
from repro.prefetch.fdip import FdipPrefetcher, PrefetchBufferSidecar
from repro.prefetch.nlp import NlpPrefetcher
from repro.prefetch.none import NonePrefetcher
from repro.prefetch.stream import StreamBufferPrefetcher

__all__ = [
    "Prefetcher",
    "CombinedPrefetcher",
    "NonePrefetcher",
    "NlpPrefetcher",
    "StreamBufferPrefetcher",
    "FdipPrefetcher",
    "PrefetchBufferSidecar",
]
