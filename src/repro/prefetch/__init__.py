"""Instruction prefetchers: FDIP, the paper's baselines, and the registry.

Technique selection is registry driven: importing this package registers
the built-in kinds (``none``, ``nlp``, ``stream``, ``fdip``,
``fdip_nlp``), and :func:`make_prefetcher` instantiates whichever kind a
``SimConfig`` selects.  Third-party techniques join via
:func:`register` without touching the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import create, register, registered_kinds
# Importing the technique modules registers the built-in kinds.
from repro.prefetch.combined import CombinedPrefetcher
from repro.prefetch.fdip import FdipPrefetcher, PrefetchBufferSidecar
from repro.prefetch.nlp import NlpPrefetcher
from repro.prefetch.none import NonePrefetcher
from repro.prefetch.stream import StreamBufferPrefetcher

if TYPE_CHECKING:
    from repro.config import SimConfig
    from repro.memory.hierarchy import MemorySystem

__all__ = [
    "Prefetcher",
    "CombinedPrefetcher",
    "NonePrefetcher",
    "NlpPrefetcher",
    "StreamBufferPrefetcher",
    "FdipPrefetcher",
    "PrefetchBufferSidecar",
    "register",
    "registered_kinds",
    "make_prefetcher",
]


def make_prefetcher(config: "SimConfig",
                    memory: "MemorySystem") -> Prefetcher:
    """Instantiate the prefetcher selected by ``config.prefetch.kind``.

    Resolution goes through the registry, so kinds added with
    :func:`register` work everywhere a built-in does; an unknown kind
    raises :class:`~repro.errors.SimulationError` naming the registered
    alternatives.
    """
    return create(config.prefetch.kind, memory, config.prefetch)
