"""Pluggable prefetcher registry.

New prefetching techniques plug into the simulator by registering a
factory under their kind string — no edits to ``sim/simulator.py``::

    from repro.prefetch import Prefetcher, register

    @register("my_prefetcher")
    class MyPrefetcher(Prefetcher):
        def __init__(self, memory, config):
            ...

A factory is any callable ``(memory, prefetch_config) -> Prefetcher``;
registering a class works because its constructor has that shape.  The
built-in techniques (none/nlp/stream/fdip/fdip_nlp) register themselves
on import of :mod:`repro.prefetch`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.config import PrefetchConfig
    from repro.memory.hierarchy import MemorySystem
    from repro.prefetch.base import Prefetcher

__all__ = ["register", "create", "registered_kinds"]

_FACTORIES: dict[str, Callable] = {}


def register(kind: str, *, replace: bool = False):
    """Class/function decorator registering a prefetcher factory.

    ``kind`` is the string used in ``PrefetchConfig.kind``.  Registering
    an already-taken kind raises unless ``replace=True`` (useful in
    tests and for deliberately shadowing a built-in).
    """
    if not isinstance(kind, str) or not kind:
        raise SimulationError("prefetcher kind must be a non-empty string")

    def decorate(factory):
        if not replace and kind in _FACTORIES:
            raise SimulationError(
                f"prefetcher kind {kind!r} is already registered "
                f"({_FACTORIES[kind]!r}); pass replace=True to override")
        _FACTORIES[kind] = factory
        return factory

    return decorate


def registered_kinds() -> tuple[str, ...]:
    """All registered kind strings, sorted."""
    return tuple(sorted(_FACTORIES))


def create(kind: str, memory: "MemorySystem",
           config: "PrefetchConfig") -> "Prefetcher":
    """Instantiate the prefetcher registered under ``kind``."""
    factory = _FACTORIES.get(kind)
    if factory is None:
        known = ", ".join(registered_kinds()) or "<none>"
        raise SimulationError(
            f"unknown prefetcher kind {kind!r}; registered kinds: {known}. "
            f"Add one with @repro.prefetch.register({kind!r}).")
    return factory(memory, config)
