"""The no-prefetch baseline."""

from __future__ import annotations

from repro.config import PrefetchConfig, PrefetcherKind
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemorySystem, Sidecar
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import register

__all__ = ["NonePrefetcher"]


@register(PrefetcherKind.NONE)
class NonePrefetcher(Prefetcher):
    """Issues no prefetches; every L1-I miss pays full latency."""

    inert_tick = True   # tick is a literal no-op on every cycle

    def __init__(self, memory: MemorySystem,
                 config: PrefetchConfig | None = None):
        super().__init__("nopf", memory)

    @property
    def sidecar(self) -> Sidecar | None:
        return None

    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        """Nothing to do."""

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        return True
