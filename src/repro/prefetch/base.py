"""Prefetcher interface.

A prefetcher plugs into the simulator at three points:

- ``sidecar`` — its storage (prefetch buffer or stream buffers), probed by
  the memory system in parallel with the L1-I on every demand access;
- :meth:`on_demand` — feedback about each demand access (next-line and
  stream-buffer prefetchers are demand driven);
- :meth:`tick` — a once-per-cycle opportunity to scan the FTQ and issue
  prefetches (FDIP), or to drain internal request queues.

:meth:`squash` is called on every pipeline flush.

Fast-path contract: the idle-cycle skip engine (see
:mod:`repro.sim.fastpath`) may only jump over a cycle when every
component provably does nothing in it.  :meth:`quiescent` must return
True only if, given no new demand accesses or fills, :meth:`tick` would
leave *all* observable state (queues, buffers, statistics) untouched.
:meth:`on_skip` is then called once per skipped window so prefetchers
that keep an internal clock can catch it up to the last skipped cycle.
The conservative default (never quiescent) keeps third-party
prefetchers correct at the cost of the fast path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.component import StatsComponent
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemorySystem, Sidecar
from repro.stats import StatGroup
from repro.stats.telemetry import TelemetryNode

__all__ = ["Prefetcher"]


class Prefetcher(StatsComponent, ABC):
    """Base class of all instruction prefetchers.

    Every prefetcher is a telemetry :class:`~repro.component.Component`:
    ``name`` is the registered kind, and any storage it owns (prefetch
    buffer, stream buffers) reports through :meth:`extra_stat_groups`,
    which the base class turns into child telemetry nodes — subclasses
    get the protocol for free.
    """

    #: True only when :meth:`tick` is a complete no-op on *every* cycle
    #: (not merely when quiescent) — no queues drained, no counters
    #: bumped, no internal clock kept.  The event engine elides the
    #: per-cycle tick call entirely for such prefetchers.  The default
    #: is conservatively False.
    inert_tick: bool = False

    def __init__(self, name: str, memory: MemorySystem):
        self.memory = memory
        self.stats = StatGroup(name)

    def reset(self) -> None:
        for group in self.extra_stat_groups():
            group.reset()

    def telemetry(self) -> TelemetryNode:
        children = [TelemetryNode.from_stat_group(group)
                    for group in self.extra_stat_groups()
                    if group is not self.stats]
        return TelemetryNode.from_stat_group(self.stats,
                                             children=children)

    def state_dict(self) -> dict:
        """Checkpoint capture over :meth:`extra_stat_groups`.

        Mirrors how :meth:`reset` and :meth:`telemetry` are wired for
        prefetchers; architectural state (PIQ, request queues, buffer
        contents) comes from the ``_extra_state`` hook.  Subclasses with
        hidden state beyond their stat groups *must* implement
        ``_extra_state``/``_load_extra_state`` to be checkpointable.
        """
        return {
            "stat_groups": [group.state_dict()
                            for group in self.extra_stat_groups()],
            "extra": self._extra_state(),
        }

    def load_state_dict(self, state: dict) -> None:
        groups = list(self.extra_stat_groups())
        payloads = state["stat_groups"]
        if len(payloads) != len(groups):
            raise ValueError(
                f"prefetcher {self.name!r} expects {len(groups)} stat "
                f"groups, snapshot holds {len(payloads)}")
        for group, payload in zip(groups, payloads):
            group.load_state_dict(payload)
        self._load_extra_state(state["extra"])

    @property
    @abstractmethod
    def sidecar(self) -> Sidecar | None:
        """Storage probed alongside the L1-I (None when there is none)."""

    @abstractmethod
    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        """Issue this cycle's prefetch work."""

    def on_demand(self, bid: int, outcome: str, now: int) -> None:
        """Feedback for one demand access (default: ignore)."""

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        """True when :meth:`tick` would be a complete no-op.

        Only consulted by the fast-path engine while the front end is
        fully stalled.  Must be exact: a prefetcher that would mutate
        any state — including bumping a counter for a rejected issue —
        must answer False.  The default is conservatively False.
        """
        return False

    def on_skip(self, last_cycle: int) -> None:
        """The simulator skipped idle cycles up to ``last_cycle``.

        Called only when :meth:`quiescent` returned True for the whole
        window; prefetchers with an internal cycle clock (stream
        buffers) update it here so later LRU decisions match the naive
        cycle-by-cycle loop bit for bit.
        """

    def next_wake_cycle(self, now: int) -> int | None:
        """Wake contract: a quiescent prefetcher is input-driven —
        demand accesses, fills, and FTQ pushes wake it, none of which
        happen inside a proven-idle span — so it contributes no bound.
        (Only consulted while :meth:`quiescent` holds.)"""
        return None

    def squash(self) -> None:
        """Pipeline flush notification (default: nothing to drop)."""

    def extra_stat_groups(self) -> list[StatGroup]:
        """Stat groups owned by this prefetcher (buffers etc.)."""
        return [self.stats]

    def lead_histogram(self) -> dict[int, int]:
        """Prefetch lead-time distribution (empty when not recorded)."""
        return {}
