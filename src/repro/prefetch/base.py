"""Prefetcher interface.

A prefetcher plugs into the simulator at three points:

- ``sidecar`` — its storage (prefetch buffer or stream buffers), probed by
  the memory system in parallel with the L1-I on every demand access;
- :meth:`on_demand` — feedback about each demand access (next-line and
  stream-buffer prefetchers are demand driven);
- :meth:`tick` — a once-per-cycle opportunity to scan the FTQ and issue
  prefetches (FDIP), or to drain internal request queues.

:meth:`squash` is called on every pipeline flush.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MemorySystem, Sidecar
from repro.stats import StatGroup

__all__ = ["Prefetcher"]


class Prefetcher(ABC):
    """Base class of all instruction prefetchers."""

    def __init__(self, name: str, memory: MemorySystem):
        self.name = name
        self.memory = memory
        self.stats = StatGroup(name)

    @property
    @abstractmethod
    def sidecar(self) -> Sidecar | None:
        """Storage probed alongside the L1-I (None when there is none)."""

    @abstractmethod
    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        """Issue this cycle's prefetch work."""

    def on_demand(self, bid: int, outcome: str, now: int) -> None:
        """Feedback for one demand access (default: ignore)."""

    def squash(self) -> None:
        """Pipeline flush notification (default: nothing to drop)."""

    def extra_stat_groups(self) -> list[StatGroup]:
        """Stat groups owned by this prefetcher (buffers etc.)."""
        return [self.stats]

    def lead_histogram(self) -> dict[int, int]:
        """Prefetch lead-time distribution (empty when not recorded)."""
        return {}
