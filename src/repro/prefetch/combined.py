"""Combined FDIP + next-line prefetching.

FDIP covers control-flow-predicted misses; tagged next-line prefetching
covers the straight-line misses FDIP misses when the FTQ is shallow
(right after a squash) or when the prediction unit falls behind.  The
combination shares one prefetch buffer, so the storage comparison with
the individual techniques stays fair.

FDIP keeps issue priority: next-line requests only use whatever issue
bandwidth the PIQ leaves unused in a cycle.
"""

from __future__ import annotations

from collections import deque

from repro.config import PrefetchConfig, PrefetcherKind
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import (
    HIT_L1,
    HIT_SIDECAR,
    MERGED,
    MISS,
    MemorySystem,
    Sidecar,
)
from repro.prefetch.base import Prefetcher
from repro.prefetch.fdip import FdipPrefetcher
from repro.prefetch.registry import register

__all__ = ["CombinedPrefetcher"]

_NLP_QUEUE_DEPTH = 16


@register(PrefetcherKind.COMBINED)
class CombinedPrefetcher(Prefetcher):
    """FDIP plus a tagged next-line helper sharing FDIP's buffer."""

    def __init__(self, memory: MemorySystem, config: PrefetchConfig):
        super().__init__("combined", memory)
        self.config = config
        self.fdip = FdipPrefetcher(memory, config)
        self._tags: set[int] = set()
        self._nlp_requests: deque[int] = deque()

    @property
    def buffer(self):
        return self.fdip.buffer

    @property
    def sidecar(self) -> Sidecar:
        return self.fdip.sidecar

    # ------------------------------------------------------------------

    def on_demand(self, bid: int, outcome: str, now: int) -> None:
        if outcome in (MISS, MERGED):
            self._trigger(bid)
            self._tags.discard(bid)
        elif outcome == HIT_SIDECAR:
            self._tags.discard(bid)
            if self.config.nlp_tagged:
                self._trigger(bid)
        elif outcome == HIT_L1 and bid in self._tags:
            self._tags.discard(bid)
            if self.config.nlp_tagged:
                self._trigger(bid)

    def _trigger(self, bid: int) -> None:
        for successor in range(bid + 1, bid + 1 + self.config.nlp_degree):
            if successor in self._nlp_requests:
                continue
            if len(self._nlp_requests) >= _NLP_QUEUE_DEPTH:
                return
            self._nlp_requests.append(successor)

    # ------------------------------------------------------------------

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        return self.fdip.quiescent(ftq) and not self._nlp_requests

    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        issued_before = self.fdip.stats.get("issued")
        self.fdip.tick(now, ftq)
        fdip_issued = self.fdip.stats.get("issued") - issued_before
        budget = self.config.max_prefetches_per_cycle - fdip_issued
        self._issue_nlp(now, budget)

    def _issue_nlp(self, now: int, budget: int) -> None:
        issued = 0
        while self._nlp_requests and issued < budget:
            bid = self._nlp_requests[0]
            if (self.buffer.contains(bid)
                    or self.memory.mshrs.get(bid) is not None
                    or self.memory.oracle_probe(bid)):
                self._nlp_requests.popleft()
                self.stats.bump("nlp_filtered")
                continue
            if not self.memory.try_issue_prefetch(bid, now):
                break
            self._nlp_requests.popleft()
            self._tags.add(bid)
            issued += 1
            self.stats.bump("nlp_issued")

    # ------------------------------------------------------------------

    def squash(self) -> None:
        """FDIP's PIQ is control-flow speculative; the NLP queue is
        demand driven and survives flushes (like stream buffers)."""
        self.fdip.squash()

    def extra_stat_groups(self):
        return [self.stats, self.fdip.stats, self.buffer.stats]

    def _extra_state(self) -> dict:
        return {"fdip": self.fdip.state_dict(),
                "tags": sorted(self._tags),
                "nlp_requests": list(self._nlp_requests)}

    def _load_extra_state(self, state: dict) -> None:
        self.fdip.load_state_dict(state["fdip"])
        self._tags.clear()
        self._tags.update(int(bid) for bid in state["tags"])
        self._nlp_requests = deque(int(bid)
                                   for bid in state["nlp_requests"])

    def lead_histogram(self) -> dict[int, int]:
        return self.buffer.stats.histogram("lead_cycles").as_dict()
