"""Stream buffers (Jouppi), the paper's other classic baseline.

``stream_buffers`` FIFO buffers of ``stream_depth`` blocks each.  A demand
miss (optionally gated by a two-consecutive-misses allocation filter, per
Palacharla & Kessler) allocates the least-recently-used buffer and starts
prefetching the sequential blocks that follow the miss.  Every demand
access compares against the *head* of each buffer; a head hit supplies the
block to the L1-I, shifts the buffer, and requests the next sequential
block at the tail.

Stream buffers follow straight-line streams only — they cannot anticipate
taken branches, which is precisely the weakness fetch-directed prefetching
addresses.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.config import PrefetchConfig, PrefetcherKind
from repro.frontend.ftq import FetchTargetQueue
from repro.memory.hierarchy import MISS, MemorySystem, Sidecar
from repro.memory.mshr import MshrEntry
from repro.prefetch.base import Prefetcher
from repro.prefetch.registry import register

__all__ = ["StreamBufferPrefetcher"]


@dataclass(slots=True)
class _Slot:
    bid: int
    arrived: bool = False


class _StreamBuffer:
    """One sequential stream."""

    def __init__(self, depth: int):
        self.depth = depth
        self.slots: deque[_Slot] = deque()
        self.next_bid: int | None = None    # next sequential block to request
        self.last_touch = -1

    @property
    def active(self) -> bool:
        return self.next_bid is not None

    def reset(self, start_bid: int, now: int) -> None:
        self.slots.clear()
        self.next_bid = start_bid
        self.last_touch = now

    @property
    def wants_request(self) -> bool:
        return self.active and len(self.slots) < self.depth


@register(PrefetcherKind.STREAM)
class StreamBufferPrefetcher(Prefetcher):
    """Multi-buffer sequential stream prefetcher."""

    def __init__(self, memory: MemorySystem, config: PrefetchConfig):
        super().__init__("stream", memory)
        self.config = config
        self.buffers = [_StreamBuffer(config.stream_depth)
                        for _ in range(config.stream_buffers)]
        # bid -> slots awaiting that fill (usually exactly one).
        self._pending: dict[int, list[_Slot]] = {}
        self._last_miss_bid: int | None = None
        self._now = 0

    @property
    def sidecar(self) -> Sidecar:
        return self

    @property
    def total_storage_blocks(self) -> int:
        """Block capacity (for equal-storage comparisons with FDIP)."""
        return self.config.stream_buffers * self.config.stream_depth

    # ------------------------------------------------------------------
    # Sidecar protocol (probed by the memory system)
    # ------------------------------------------------------------------

    def probe_and_claim(self, bid: int, now: int = 0) -> bool:
        probe_depth = self.config.stream_probe_depth
        for buffer in self.buffers:
            found = None
            for position, slot in enumerate(buffer.slots):
                if position >= probe_depth:
                    break
                if slot.bid == bid:
                    found = position
                    break
            if found is None:
                continue
            # Shift out everything up to and including the hit (skipped
            # leading slots are discarded, as in lookup-variant stream
            # buffers).
            hit = None
            for _ in range(found + 1):
                hit = buffer.slots.popleft()
                self._unpend(hit.bid, hit)
            buffer.last_touch = self._now
            if found > 0:
                self.stats.bump("non_head_hits")
            if hit.arrived:
                self.stats.bump("head_hits")
                return True
            # In flight: the demand access will merge in the MSHRs.
            self.stats.bump("head_hits_in_flight")
            return False
        return False

    def fill(self, bid: int, entry: MshrEntry) -> None:
        for slot in self._pending.pop(bid, []):
            slot.arrived = True

    def fill_merged(self, bid: int) -> None:
        """A prefetch we issued was overtaken by a demand merge."""
        for slot in self._pending.pop(bid, []):
            slot.arrived = True
        self.stats.bump("late_fills")

    def _unpend(self, bid: int, slot: _Slot) -> None:
        waiting = self._pending.get(bid)
        if not waiting:
            return
        if slot in waiting:
            waiting.remove(slot)
        if not waiting:
            del self._pending[bid]

    # ------------------------------------------------------------------
    # Demand feedback: allocation
    # ------------------------------------------------------------------

    def on_demand(self, bid: int, outcome: str, now: int) -> None:
        self._now = now
        if outcome != MISS:
            return
        if self.config.allocation_filter:
            sequential = (self._last_miss_bid is not None
                          and bid == self._last_miss_bid + 1)
            self._last_miss_bid = bid
            if not sequential:
                self.stats.bump("allocations_filtered")
                return
        self._allocate(bid, now)

    def _allocate(self, bid: int, now: int) -> None:
        victim = min(self.buffers, key=lambda b: b.last_touch)
        for slot in list(victim.slots):
            self._unpend(slot.bid, slot)
        victim.reset(bid + 1, now)
        self.stats.bump("allocations")

    # ------------------------------------------------------------------
    # Issue
    # ------------------------------------------------------------------

    def quiescent(self, ftq: FetchTargetQueue) -> bool:
        # A buffer wanting a request issues (or bumps rejection counters)
        # every cycle; otherwise tick only refreshes the internal clock,
        # which on_skip reproduces.
        return not any(buffer.wants_request for buffer in self.buffers)

    def on_skip(self, last_cycle: int) -> None:
        # The naive loop sets _now on every tick; catch the clock up so
        # LRU timestamps taken before our next tick are identical.
        self._now = last_cycle

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _extra_state(self) -> dict:
        # ``_pending`` is not serialized: it aliases exactly the
        # not-yet-arrived slots of the buffers (the unpend paths remove
        # a slot from buffer and pending together), so restore rebuilds
        # it by scanning the deserialized buffers.
        return {
            "buffers": [{"slots": [[s.bid, s.arrived] for s in b.slots],
                         "next_bid": b.next_bid,
                         "last_touch": b.last_touch}
                        for b in self.buffers],
            "last_miss_bid": self._last_miss_bid,
            "now": self._now,
        }

    def _load_extra_state(self, state: dict) -> None:
        payloads = state["buffers"]
        if len(payloads) != len(self.buffers):
            raise ValueError(
                f"stream snapshot has {len(payloads)} buffers, config "
                f"has {len(self.buffers)}")
        self._pending = {}
        for buffer, payload in zip(self.buffers, payloads):
            buffer.slots = deque(_Slot(int(bid), bool(arrived))
                                 for bid, arrived in payload["slots"])
            next_bid = payload["next_bid"]
            buffer.next_bid = (int(next_bid)
                               if next_bid is not None else None)
            buffer.last_touch = int(payload["last_touch"])
            for slot in buffer.slots:
                if not slot.arrived:
                    self._pending.setdefault(slot.bid, []).append(slot)
        last_miss = state["last_miss_bid"]
        self._last_miss_bid = (int(last_miss)
                               if last_miss is not None else None)
        self._now = int(state["now"])

    def tick(self, now: int, ftq: FetchTargetQueue) -> None:
        self._now = now
        issued = 0
        for buffer in self.buffers:
            if issued >= self.config.max_prefetches_per_cycle:
                break
            if not buffer.wants_request:
                continue
            bid = buffer.next_bid
            slot = _Slot(bid)
            if bid in self._pending:
                # Another buffer already requested it; share the fill.
                self._pending[bid].append(slot)
                buffer.slots.append(slot)
                buffer.next_bid = bid + 1
                continue
            if self.memory.oracle_probe(bid) \
                    or self.memory.mshrs.get(bid) is not None:
                # Already resident or inbound: the slot is satisfied.
                slot.arrived = True
                buffer.slots.append(slot)
                buffer.next_bid = bid + 1
                self.stats.bump("requests_satisfied_locally")
                continue
            if not self.memory.try_issue_prefetch(bid, now):
                break  # bus busy / MSHRs full
            self._pending[bid] = [slot]
            buffer.slots.append(slot)
            buffer.next_bid = bid + 1
            issued += 1
            self.stats.bump("issued")
