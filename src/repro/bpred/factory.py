"""Direction predictor construction from configuration."""

from __future__ import annotations

from repro.bpred.base import DirectionPredictor
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.gshare import GsharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.local import LocalPredictor
from repro.bpred.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.config import PredictorConfig
from repro.errors import ConfigError

__all__ = ["make_direction_predictor", "DIRECTION_PREDICTORS"]

DIRECTION_PREDICTORS = ("hybrid", "gshare", "bimodal", "local",
                        "always_taken", "always_not_taken")


def make_direction_predictor(config: PredictorConfig) -> DirectionPredictor:
    """Build the direction predictor selected by ``config.direction``."""
    kind = config.direction
    if kind == "hybrid":
        return HybridPredictor.from_config(config)
    if kind == "gshare":
        return GsharePredictor(config.gshare_entries, config.history_bits)
    if kind == "bimodal":
        return BimodalPredictor(config.bimodal_entries)
    if kind == "local":
        return LocalPredictor(history_entries=config.bimodal_entries,
                              history_bits=config.history_bits,
                              pattern_entries=config.gshare_entries)
    if kind == "always_taken":
        return AlwaysTakenPredictor()
    if kind == "always_not_taken":
        return AlwaysNotTakenPredictor()
    raise ConfigError(
        f"unknown direction predictor {kind!r}; available: "
        f"{', '.join(DIRECTION_PREDICTORS)}")
