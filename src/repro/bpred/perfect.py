"""Oracle direction predictor (upper-bound studies).

``PerfectPredictor`` must be told the next outcome before each prediction
(the trace-driven front end knows it); it then "predicts" that outcome.
Useful for isolating FTB and prefetch effects from direction mispredicts.
"""

from __future__ import annotations

from repro.bpred.base import DirectionPredictor

__all__ = ["PerfectPredictor"]


class PerfectPredictor(DirectionPredictor):
    """Always predicts the outcome primed via :meth:`prime`."""

    def __init__(self) -> None:
        super().__init__("perfect")
        self._next_outcome = False

    def prime(self, outcome: bool) -> None:
        """Set the outcome the next :meth:`predict` call will return."""
        self._next_outcome = outcome

    def predict(self, pc: int, history: int) -> bool:
        return self._next_outcome

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Nothing to train."""

    def _extra_state(self) -> dict:
        return {"next_outcome": self._next_outcome}

    def _load_extra_state(self, state: dict) -> None:
        self._next_outcome = bool(state["next_outcome"])
