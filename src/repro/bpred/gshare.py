"""Gshare direction predictor (global history XOR branch address)."""

from __future__ import annotations

from repro.bpred.base import (
    COUNTER_INIT,
    DirectionPredictor,
    counter_taken,
    counter_update,
)
from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES

__all__ = ["GsharePredictor"]


class GsharePredictor(DirectionPredictor):
    """2-bit counters indexed by (pc XOR global history)."""

    def __init__(self, entries: int = 4096, history_bits: int = 12):
        if not is_power_of_two(entries):
            raise ConfigError("gshare entries must be a power of two")
        if history_bits < 1:
            raise ConfigError("history_bits must be >= 1")
        super().__init__("gshare")
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._mask = entries - 1
        self._table = [COUNTER_INIT] * entries

    def _index(self, pc: int, history: int) -> int:
        word = pc // INSTRUCTION_BYTES
        return (word ^ (history & self._history_mask)) & self._mask

    def predict(self, pc: int, history: int) -> bool:
        return counter_taken(self._table[self._index(pc, history)])

    def update(self, pc: int, history: int, taken: bool) -> None:
        index = self._index(pc, history)
        self._table[index] = counter_update(self._table[index], taken)

    def _extra_state(self) -> dict:
        return {"table": list(self._table)}

    def _load_extra_state(self, state: dict) -> None:
        self._table = [int(c) for c in state["table"]]
