"""Branch prediction substrate: direction predictors and the RAS."""

from repro.bpred.base import (
    COUNTER_INIT,
    COUNTER_MAX,
    DirectionPredictor,
    counter_taken,
    counter_update,
)
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.factory import DIRECTION_PREDICTORS, \
    make_direction_predictor
from repro.bpred.gshare import GsharePredictor
from repro.bpred.hybrid import HybridPredictor
from repro.bpred.local import LocalPredictor
from repro.bpred.perfect import PerfectPredictor
from repro.bpred.ras import RasSnapshot, ReturnAddressStack
from repro.bpred.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)

__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "HybridPredictor",
    "LocalPredictor",
    "AlwaysTakenPredictor",
    "AlwaysNotTakenPredictor",
    "PerfectPredictor",
    "make_direction_predictor",
    "DIRECTION_PREDICTORS",
    "ReturnAddressStack",
    "RasSnapshot",
    "counter_taken",
    "counter_update",
    "COUNTER_INIT",
    "COUNTER_MAX",
]
