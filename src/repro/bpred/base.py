"""Direction predictor interface and shared 2-bit counter helpers.

The decoupled front end owns the speculative global history register and
passes it into :meth:`DirectionPredictor.predict` /
:meth:`DirectionPredictor.update`; predictors own only their tables.  This
keeps history checkpoint/repair (a front-end concern) out of the predictor
implementations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.component import StatsComponent
from repro.stats import StatGroup

__all__ = ["DirectionPredictor", "counter_taken", "counter_update",
           "COUNTER_INIT", "COUNTER_MAX"]

COUNTER_MAX = 3
COUNTER_INIT = 1  # weakly not-taken


def counter_taken(counter: int) -> bool:
    """Interpret a 2-bit saturating counter as a taken prediction."""
    return counter >= 2


def counter_update(counter: int, taken: bool) -> int:
    """Saturating increment/decrement of a 2-bit counter."""
    if taken:
        return counter + 1 if counter < COUNTER_MAX else COUNTER_MAX
    return counter - 1 if counter > 0 else 0


class DirectionPredictor(StatsComponent, ABC):
    """Predicts conditional-branch directions."""

    def __init__(self, name: str):
        self.stats = StatGroup(name)

    def derived_metrics(self) -> dict[str, float]:
        return {"accuracy": self.accuracy}

    @abstractmethod
    def predict(self, pc: int, history: int) -> bool:
        """Predicted direction of the branch at ``pc``."""

    @abstractmethod
    def update(self, pc: int, history: int, taken: bool) -> None:
        """Train with the resolved outcome.

        ``history`` must be the global history value that was in effect
        when the branch was predicted.
        """

    def record_outcome(self, correct: bool) -> None:
        """Accounting hook used by the front end."""
        self.stats.bump("predictions")
        if correct:
            self.stats.bump("correct")

    @property
    def accuracy(self) -> float:
        return self.stats.ratio("correct", "predictions")
