"""Two-level local-history predictor (PAg style).

A per-branch history table records each branch's own recent outcomes; the
pattern history table (2-bit counters) is indexed by that local history.
Captures short periodic patterns (loop trip counts) that a global-history
predictor must spend global history bits on.
"""

from __future__ import annotations

from repro.bpred.base import (
    COUNTER_INIT,
    DirectionPredictor,
    counter_taken,
    counter_update,
)
from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES

__all__ = ["LocalPredictor"]


class LocalPredictor(DirectionPredictor):
    """PAg: local history table -> shared pattern history table."""

    def __init__(self, history_entries: int = 1024,
                 history_bits: int = 10, pattern_entries: int = 1024):
        if not is_power_of_two(history_entries):
            raise ConfigError("history_entries must be a power of two")
        if not is_power_of_two(pattern_entries):
            raise ConfigError("pattern_entries must be a power of two")
        if history_bits < 1:
            raise ConfigError("history_bits must be >= 1")
        super().__init__("local")
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._bht_mask = history_entries - 1
        self._pht_mask = pattern_entries - 1
        self._bht = [0] * history_entries
        self._pht = [COUNTER_INIT] * pattern_entries

    def _bht_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._bht_mask

    def predict(self, pc: int, history: int) -> bool:
        """Predict from the branch's own history (global ``history``
        is ignored; the front end still passes it for interface
        uniformity)."""
        local = self._bht[self._bht_index(pc)]
        return counter_taken(self._pht[local & self._pht_mask])

    def update(self, pc: int, history: int, taken: bool) -> None:
        index = self._bht_index(pc)
        local = self._bht[index]
        pht_index = local & self._pht_mask
        self._pht[pht_index] = counter_update(self._pht[pht_index], taken)
        self._bht[index] = ((local << 1) | int(taken)) & self._history_mask

    def _extra_state(self) -> dict:
        return {"bht": list(self._bht), "pht": list(self._pht)}

    def _load_extra_state(self, state: dict) -> None:
        self._bht = [int(h) for h in state["bht"]]
        self._pht = [int(c) for c in state["pht"]]
