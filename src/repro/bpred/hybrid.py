"""McFarling-style hybrid predictor: bimodal + gshare + meta chooser.

The meta table (2-bit counters indexed by pc) selects which component's
prediction to use; it trains toward whichever component was correct when
the two disagree.  This is the combination the paper's front end uses.
"""

from __future__ import annotations

from repro.bpred.base import (
    DirectionPredictor,
    counter_taken,
    counter_update,
)
from repro.bpred.bimodal import BimodalPredictor
from repro.bpred.gshare import GsharePredictor
from repro.config import PredictorConfig, is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES

__all__ = ["HybridPredictor"]

_META_INIT = 2  # weakly prefer gshare


class HybridPredictor(DirectionPredictor):
    """Tournament predictor over a bimodal and a gshare component."""

    def __init__(self, bimodal_entries: int = 4096,
                 gshare_entries: int = 4096, history_bits: int = 12,
                 meta_entries: int = 4096):
        if not is_power_of_two(meta_entries):
            raise ConfigError("meta entries must be a power of two")
        super().__init__("hybrid")
        self.bimodal = BimodalPredictor(bimodal_entries)
        self.gshare = GsharePredictor(gshare_entries, history_bits)
        self._meta_mask = meta_entries - 1
        self._meta = [_META_INIT] * meta_entries

    @classmethod
    def from_config(cls, config: PredictorConfig) -> "HybridPredictor":
        return cls(bimodal_entries=config.bimodal_entries,
                   gshare_entries=config.gshare_entries,
                   history_bits=config.history_bits,
                   meta_entries=config.meta_entries)

    def _meta_index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._meta_mask

    def predict(self, pc: int, history: int) -> bool:
        use_gshare = counter_taken(self._meta[self._meta_index(pc)])
        if use_gshare:
            return self.gshare.predict(pc, history)
        return self.bimodal.predict(pc, history)

    def update(self, pc: int, history: int, taken: bool) -> None:
        bimodal_pred = self.bimodal.predict(pc, history)
        gshare_pred = self.gshare.predict(pc, history)
        if bimodal_pred != gshare_pred:
            index = self._meta_index(pc)
            gshare_correct = gshare_pred == taken
            self._meta[index] = counter_update(self._meta[index],
                                               gshare_correct)
        self.bimodal.update(pc, history, taken)
        self.gshare.update(pc, history, taken)

    def _extra_state(self) -> dict:
        # The component predictors are owned directly (they are not
        # sub_components — their stats fold into the hybrid's node), so
        # their full state nests here.
        return {"meta": list(self._meta),
                "bimodal": self.bimodal.state_dict(),
                "gshare": self.gshare.state_dict()}

    def _load_extra_state(self, state: dict) -> None:
        self._meta = [int(c) for c in state["meta"]]
        self.bimodal.load_state_dict(state["bimodal"])
        self.gshare.load_state_dict(state["gshare"])
