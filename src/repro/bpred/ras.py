"""Return address stack with circular overwrite and snapshot repair.

The RAS is finite: pushing beyond the depth silently overwrites the oldest
entry (the corruption real hardware exhibits on deep recursion).  The
decoupled front end runs the RAS *speculatively*; before following a
mispredicted block down the wrong path it snapshots the RAS and restores it
at squash time.
"""

from __future__ import annotations

from repro.component import StatsComponent
from repro.stats import StatGroup

__all__ = ["ReturnAddressStack", "RasSnapshot"]


class RasSnapshot:
    """An immutable copy of RAS state (opaque to callers)."""

    __slots__ = ("entries", "top", "count")

    def __init__(self, entries: tuple[int, ...], top: int, count: int):
        self.entries = entries
        self.top = top
        self.count = count


class ReturnAddressStack(StatsComponent):
    """Circular return-address stack."""

    def __init__(self, depth: int = 32):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self.stats = StatGroup("ras")
        self._entries = [0] * depth
        self._top = 0      # index of the next free slot
        self._count = 0    # number of live entries (<= depth)

    def push(self, return_pc: int) -> None:
        """Push a return address, overwriting the oldest on overflow."""
        self._entries[self._top] = return_pc
        self._top = (self._top + 1) % self.depth
        if self._count < self.depth:
            self._count += 1
        else:
            self.stats.bump("overflows")
        self.stats.bump("pushes")

    def pop(self) -> int | None:
        """Pop the most recent return address; None when empty."""
        self.stats.bump("pops")
        if self._count == 0:
            self.stats.bump("underflows")
            return None
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        return self._entries[self._top]

    def peek(self) -> int | None:
        """The address a pop would return, without popping."""
        if self._count == 0:
            return None
        return self._entries[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._count

    def snapshot(self) -> RasSnapshot:
        """Capture the complete state for later :meth:`restore`."""
        return RasSnapshot(tuple(self._entries), self._top, self._count)

    def restore(self, snap: RasSnapshot) -> None:
        """Restore state captured by :meth:`snapshot`."""
        self._entries = list(snap.entries)
        self._top = snap.top
        self._count = snap.count
        self.stats.bump("restores")

    def _extra_state(self) -> dict:
        return {"entries": list(self._entries), "top": self._top,
                "count": self._count}

    def _load_extra_state(self, state: dict) -> None:
        self._entries = [int(pc) for pc in state["entries"]]
        self._top = int(state["top"])
        self._count = int(state["count"])
