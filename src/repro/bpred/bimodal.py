"""Bimodal (per-PC 2-bit counter) direction predictor."""

from __future__ import annotations

from repro.bpred.base import (
    COUNTER_INIT,
    DirectionPredictor,
    counter_taken,
    counter_update,
)
from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES

__all__ = ["BimodalPredictor"]


class BimodalPredictor(DirectionPredictor):
    """A table of 2-bit counters indexed by instruction address."""

    def __init__(self, entries: int = 4096):
        if not is_power_of_two(entries):
            raise ConfigError("bimodal entries must be a power of two")
        super().__init__("bimodal")
        self._mask = entries - 1
        self._table = [COUNTER_INIT] * entries

    def _index(self, pc: int) -> int:
        return (pc // INSTRUCTION_BYTES) & self._mask

    def predict(self, pc: int, history: int) -> bool:
        return counter_taken(self._table[self._index(pc)])

    def update(self, pc: int, history: int, taken: bool) -> None:
        index = self._index(pc)
        self._table[index] = counter_update(self._table[index], taken)

    def _extra_state(self) -> dict:
        return {"table": list(self._table)}

    def _load_extra_state(self, state: dict) -> None:
        self._table = [int(c) for c in state["table"]]
