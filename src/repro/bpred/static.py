"""Static direction predictors (no-learning baselines)."""

from __future__ import annotations

from repro.bpred.base import DirectionPredictor

__all__ = ["AlwaysTakenPredictor", "AlwaysNotTakenPredictor"]


class AlwaysTakenPredictor(DirectionPredictor):
    """Predicts every conditional branch taken."""

    def __init__(self) -> None:
        super().__init__("always_taken")

    def predict(self, pc: int, history: int) -> bool:
        return True

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Static: nothing to learn."""


class AlwaysNotTakenPredictor(DirectionPredictor):
    """Predicts every conditional branch not taken."""

    def __init__(self) -> None:
        super().__init__("always_not_taken")

    def predict(self, pc: int, history: int) -> bool:
        return False

    def update(self, pc: int, history: int, taken: bool) -> None:
        """Static: nothing to learn."""
