"""Conventional (instruction-indexed) branch target buffer.

Not used by the FDIP front end itself — the decoupled front end uses the
fetch-block-oriented :class:`~repro.ftb.ftb.FetchTargetBuffer` — but
provided as the comparison structure: indexed by the *branch instruction's*
address, a hit says "this instruction is a branch" and supplies its type
and most recent target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import StatGroup

__all__ = ["BTBEntry", "BranchTargetBuffer"]


@dataclass
class BTBEntry:
    """One tracked branch: its address, type, and last target."""

    pc: int
    target: int | None
    kind: InstrKind


class BranchTargetBuffer:
    """Set-associative, LRU BTB keyed by branch instruction address."""

    def __init__(self, sets: int = 512, ways: int = 4):
        if not is_power_of_two(sets):
            raise ConfigError("BTB sets must be a power of two")
        if ways < 1:
            raise ConfigError("BTB ways must be >= 1")
        self.sets = sets
        self.ways = ways
        self.stats = StatGroup("btb")
        self._table: list[dict[int, BTBEntry]] = [{} for _ in range(sets)]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def _set_for(self, pc: int) -> dict[int, BTBEntry]:
        return self._table[(pc // INSTRUCTION_BYTES) & (self.sets - 1)]

    def lookup(self, pc: int) -> BTBEntry | None:
        entry_set = self._set_for(pc)
        entry = entry_set.get(pc)
        if entry is None:
            self.stats.bump("misses")
            return None
        del entry_set[pc]
        entry_set[pc] = entry
        self.stats.bump("hits")
        return entry

    def install(self, entry: BTBEntry) -> None:
        entry_set = self._set_for(entry.pc)
        if entry.pc in entry_set:
            del entry_set[entry.pc]
            self.stats.bump("updates")
        else:
            self.stats.bump("installs")
            if len(entry_set) >= self.ways:
                oldest = next(iter(entry_set))
                del entry_set[oldest]
                self.stats.bump("evictions")
        entry_set[entry.pc] = entry

    def resident_entries(self) -> int:
        return sum(len(entry_set) for entry_set in self._table)
