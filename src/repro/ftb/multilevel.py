"""Two-level fetch target buffer.

The companion scalable-front-end architecture (Reinman, Austin, Calder —
ISCA 1999) pairs a small, single-cycle L1 FTB with a much larger, slower
L2 FTB.  Fetch blocks evicted from (or never promoted to) the L1 are
found in the L2 after ``l2_latency`` cycles, during which the prediction
unit stalls; both levels are trained on installs.

Probe outcomes:

- ``HIT``  — found in the L1 FTB (single cycle, like a monolithic FTB);
- ``L2``   — missed the L1 but found in the L2; the entry is promoted,
  and the caller must charge ``l2_latency`` cycles before using it;
- ``MISS`` — in neither level: the front end falls back to a sequential
  fetch block (and trains both levels when the block mispredicts).
"""

from __future__ import annotations

from repro.component import StatsComponent
from repro.errors import ConfigError
from repro.ftb.ftb import FetchTargetBuffer, FTBEntry
from repro.stats import StatGroup

__all__ = ["TwoLevelFTB", "HIT", "L2", "MISS"]

HIT = "hit"
L2 = "l2"
MISS = "miss"


class TwoLevelFTB(StatsComponent):
    """L1 + L2 fetch target buffers with promotion on L2 hits.

    Telemetry-wise the two levels report as children of the ``ftb2``
    node.  Both carry the legacy group name ``ftb``; the flat view
    resolves the collision the way the old merge did (L2 wins), while
    tree consumers see both levels distinctly by position.
    """

    def sub_components(self):
        return (self.l1, self.l2)

    def __init__(self, l1_sets: int, l1_ways: int, l2_sets: int,
                 l2_ways: int, l2_latency: int):
        if l2_latency < 1:
            raise ConfigError("two-level FTB needs l2_latency >= 1")
        self.l1 = FetchTargetBuffer(l1_sets, l1_ways)
        self.l2 = FetchTargetBuffer(l2_sets, l2_ways)
        self.l2_latency = l2_latency
        self.stats = StatGroup("ftb2")

    @property
    def capacity(self) -> int:
        return self.l1.capacity + self.l2.capacity

    def probe(self, pc: int) -> tuple[str, FTBEntry | None]:
        """Look up ``pc``; promote L2 hits into the L1."""
        entry = self.l1.lookup(pc)
        if entry is not None:
            self.stats.bump("l1_hits")
            return HIT, entry
        entry = self.l2.lookup(pc)
        if entry is not None:
            self.stats.bump("l2_hits")
            self.l1.install(entry)
            return L2, entry
        self.stats.bump("misses")
        return MISS, None

    def install(self, entry: FTBEntry) -> None:
        """Train both levels (the L2 is effectively inclusive)."""
        self.l1.install(entry)
        self.l2.install(entry)
        self.stats.bump("installs")

    def lookup(self, pc: int) -> FTBEntry | None:
        """Monolithic-interface convenience: L1-then-L2, no latency.

        Used by tests and tools; the prediction unit uses :meth:`probe`
        so it can charge the L2 latency.
        """
        _, entry = self.probe(pc)
        return entry

    def resident_entries(self) -> int:
        return self.l2.resident_entries()

    def __repr__(self) -> str:
        return (f"TwoLevelFTB(l1={self.l1.sets}x{self.l1.ways}, "
                f"l2={self.l2.sets}x{self.l2.ways}, "
                f"lat={self.l2_latency})")
