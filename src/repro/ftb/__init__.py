"""Fetch target buffer (fetch-block BTB) and a conventional BTB."""

from repro.ftb.btb import BranchTargetBuffer, BTBEntry
from repro.ftb.ftb import FetchTargetBuffer, FTBEntry
from repro.ftb.multilevel import HIT, L2, MISS, TwoLevelFTB

__all__ = [
    "FetchTargetBuffer",
    "FTBEntry",
    "TwoLevelFTB",
    "HIT",
    "L2",
    "MISS",
    "BranchTargetBuffer",
    "BTBEntry",
]
