"""Fetch Target Buffer (FTB).

The FTB (Reinman, Calder, Austin — ISCA 1999) is a fetch-block-oriented
BTB: it is indexed by the *start address of a fetch block* and a hit
describes the block — where it ends (the address just past its terminating
control instruction) and where that control instruction goes.  The decoupled
front end queries the FTB once per cycle to produce the next fetch block;
on a miss it falls back to a maximum-length sequential block.

Entries are allocated/updated when the front end discovers its prediction
for a block start was wrong (taken branch not captured, or a stale target),
mirroring allocate-on-taken BTB policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.component import StatsComponent
from repro.config import is_power_of_two
from repro.errors import ConfigError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import StatGroup

__all__ = ["FTBEntry", "FetchTargetBuffer"]


@dataclass
class FTBEntry:
    """One fetch block description.

    ``fallthrough`` is the address immediately after the block's
    terminating control instruction (so the terminator sits at
    ``fallthrough - 4``); ``target`` is that terminator's most recently
    observed destination (None only transiently for returns, whose target
    comes from the RAS).
    """

    start: int
    fallthrough: int
    target: int | None
    kind: InstrKind

    @property
    def terminator_pc(self) -> int:
        return self.fallthrough - INSTRUCTION_BYTES

    @property
    def n_instrs(self) -> int:
        return (self.fallthrough - self.start) // INSTRUCTION_BYTES


class FetchTargetBuffer(StatsComponent):
    """Set-associative, LRU FTB keyed by fetch-block start address."""

    def __init__(self, sets: int = 512, ways: int = 4):
        if not is_power_of_two(sets):
            raise ConfigError("FTB sets must be a power of two")
        if ways < 1:
            raise ConfigError("FTB ways must be >= 1")
        self.sets = sets
        self.ways = ways
        self.stats = StatGroup("ftb")
        # Per-set mapping start-pc -> entry; iteration order is LRU order
        # (dicts preserve insertion order; re-inserting refreshes).
        self._table: list[dict[int, FTBEntry]] = [{} for _ in range(sets)]

    @property
    def capacity(self) -> int:
        return self.sets * self.ways

    def _set_for(self, pc: int) -> dict[int, FTBEntry]:
        return self._table[(pc // INSTRUCTION_BYTES) & (self.sets - 1)]

    def lookup(self, pc: int) -> FTBEntry | None:
        """Query the block starting at ``pc``; refreshes LRU on hit."""
        entry_set = self._set_for(pc)
        entry = entry_set.get(pc)
        if entry is None:
            self.stats.bump("misses")
            return None
        # Move to MRU position.
        del entry_set[pc]
        entry_set[pc] = entry
        self.stats.bump("hits")
        return entry

    def probe(self, pc: int) -> tuple[str, FTBEntry | None]:
        """Level-aware lookup, uniform with :class:`TwoLevelFTB`.

        A monolithic FTB answers in one cycle, so the outcome is either
        ``"hit"`` or ``"miss"`` — never ``"l2"``.
        """
        entry = self.lookup(pc)
        if entry is None:
            return "miss", None
        return "hit", entry

    def install(self, entry: FTBEntry) -> None:
        """Insert or update the entry for ``entry.start`` (MRU)."""
        if entry.fallthrough <= entry.start:
            raise ConfigError(
                f"FTB entry with non-positive extent: {entry!r}")
        entry_set = self._set_for(entry.start)
        if entry.start in entry_set:
            del entry_set[entry.start]
            self.stats.bump("updates")
        else:
            self.stats.bump("installs")
            if len(entry_set) >= self.ways:
                oldest = next(iter(entry_set))
                del entry_set[oldest]
                self.stats.bump("evictions")
        entry_set[entry.start] = entry

    def resident_entries(self) -> int:
        return sum(len(entry_set) for entry_set in self._table)

    def _extra_state(self) -> dict:
        # Per-set entry lists in LRU order (dict iteration order), so a
        # restore reproduces replacement decisions exactly.
        return {"sets": [
            [[e.start, e.fallthrough, e.target, int(e.kind)]
             for e in entry_set.values()]
            for entry_set in self._table]}

    def _load_extra_state(self, state: dict) -> None:
        sets = state["sets"]
        if len(sets) != self.sets:
            raise ValueError(
                f"FTB snapshot has {len(sets)} sets, geometry has "
                f"{self.sets}")
        self._table = [
            {int(start): FTBEntry(
                start=int(start), fallthrough=int(fallthrough),
                target=int(target) if target is not None else None,
                kind=InstrKind(kind))
             for start, fallthrough, target, kind in entry_set}
            for entry_set in sets]

    def __repr__(self) -> str:
        return (f"FetchTargetBuffer({self.sets}x{self.ways}, "
                f"resident={self.resident_entries()})")
