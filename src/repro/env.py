"""Validated ``REPRO_*`` environment-variable handling.

The harness honors a handful of environment overrides (trace length,
full-run mode, the on-disk result cache).  Reading them through this
module turns a typo like ``REPRO_TRACE_LEN=junk`` into a
:class:`~repro.errors.ConfigError` naming the offending variable and
value, instead of a bare ``ValueError`` (or a silent misconfiguration)
deep inside a sweep.

An empty string is treated as unset for every variable, matching shell
idiom (``REPRO_TRACE_LEN= python ...``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import ConfigError

__all__ = [
    "trace_length_override",
    "full_run_requested",
    "result_cache_dir",
    "serve_cache_dir",
    "log_file",
    "log_stderr",
    "log_run_id",
]


def _raw(name: str) -> str | None:
    value = os.environ.get(name)
    return value if value else None


def trace_length_override() -> int | None:
    """``REPRO_TRACE_LEN`` as an int (floored at 1000), or None if unset.

    Raises :class:`ConfigError` when the value is not an integer.
    """
    raw = _raw("REPRO_TRACE_LEN")
    if raw is None:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"REPRO_TRACE_LEN must be an integer trace length, "
            f"got {raw!r}") from None
    return max(1000, value)


def full_run_requested() -> bool:
    """Whether ``REPRO_FULL=1`` selected the long-run configuration.

    Only ``"1"`` enables it and only ``"0"``/unset/empty disable it; any
    other value (``"true"``, ``"yes"``, ...) raises :class:`ConfigError`
    rather than being silently ignored.
    """
    raw = os.environ.get("REPRO_FULL")
    if raw in (None, "", "0"):
        return False
    if raw == "1":
        return True
    raise ConfigError(f"REPRO_FULL must be '0' or '1', got {raw!r}")


def result_cache_dir() -> str | None:
    """``REPRO_RESULT_CACHE`` as a usable directory path, or None.

    The directory does not have to exist yet (it is created on first
    store), but an existing *non-directory* at that path raises
    :class:`ConfigError` instead of failing on the first write.
    """
    raw = _raw("REPRO_RESULT_CACHE")
    if raw is None:
        return None
    path = Path(raw)
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"REPRO_RESULT_CACHE must name a directory, but {raw!r} "
            f"exists and is not one")
    return raw


def serve_cache_dir() -> str | None:
    """``REPRO_SERVE_CACHE``: the service's result-cache directory, or None.

    Same contract as :func:`result_cache_dir`: the directory is created
    on first store, but an existing non-directory at the path raises
    :class:`ConfigError` up front instead of failing on the first write.
    """
    raw = _raw("REPRO_SERVE_CACHE")
    if raw is None:
        return None
    path = Path(raw)
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"REPRO_SERVE_CACHE must name a directory, but {raw!r} "
            f"exists and is not one")
    return raw


def log_file() -> str | None:
    """``REPRO_LOG_FILE``: the structured event log's JSONL path, or None.

    An existing *directory* at the path raises :class:`ConfigError`
    (the log is a file; appending to a directory would fail on the
    first event, deep inside a worker).
    """
    raw = _raw("REPRO_LOG_FILE")
    if raw is None:
        return None
    if Path(raw).is_dir():
        raise ConfigError(
            f"REPRO_LOG_FILE must name a file, but {raw!r} is a "
            f"directory")
    return raw


def log_stderr() -> bool:
    """Whether ``REPRO_LOG_STDERR=1`` mirrors events to stderr.

    Same strictness as ``REPRO_FULL``: only ``"1"`` enables and only
    ``"0"``/unset/empty disable; anything else raises
    :class:`ConfigError`.
    """
    raw = os.environ.get("REPRO_LOG_STDERR")
    if raw in (None, "", "0"):
        return False
    if raw == "1":
        return True
    raise ConfigError(
        f"REPRO_LOG_STDERR must be '0' or '1', got {raw!r}")


def log_run_id() -> str | None:
    """``REPRO_LOG_RUN_ID``: the inherited run correlation id, or None."""
    return _raw("REPRO_LOG_RUN_ID")
