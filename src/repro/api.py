"""Stable top-level API for running simulations and sweeps.

This module is the supported entry point for programmatic use; the
examples, benchmarks, and CLI all go through it.  It intentionally
exposes a small surface:

- :func:`simulate` — run one (trace, config) point to a
  :class:`~repro.sim.results.SimResult`, optionally sharded across
  worker processes (``shards=K``);
- :func:`make_runner` — construct the memoizing experiment
  :class:`~repro.harness.runner.Runner`;
- :func:`sweep` — run many points fault-tolerantly in parallel, where
  a point is a typed :class:`~repro.spec.Point` and
  :class:`~repro.spec.ExperimentSpec` names a whole collection
  (legacy ``(workload, config)`` tuples are rejected with a
  :class:`~repro.errors.ConfigError` naming the replacement);
- :func:`execute` — run one typed :class:`~repro.spec.RunRequest` to a
  :class:`~repro.spec.RunResponse`; the canonical entry point that the
  serving daemon, the CLI, and the convenience wrappers all share;
- :func:`profile_run` — simulate one point with the cycle-attribution
  profiler on and return a :class:`~repro.spec.RunResponse` whose
  ``profile`` field carries the ``repro.profile/v1`` document (see
  :mod:`repro.obs.profile`; unpacking the response as the old
  ``(result, profile)`` tuple still works for one release, with a
  deprecation warning).

Every entry point normalizes its inputs through one shared
:func:`~repro.spec.resolve_request` path, so the identity a result
cache keys on and the simulation a library call runs can never
disagree (see ``docs/serving.md`` for the cache-key definition).

Every :class:`~repro.sim.results.SimResult` carries the full
hierarchical telemetry tree on ``result.telemetry`` (a
:class:`~repro.stats.telemetry.TelemetrySnapshot`, re-exported here
along with :class:`~repro.stats.telemetry.TelemetryNode` and
:func:`~repro.stats.sweep.merge_snapshots` for cross-shard
aggregation).

Everything here is re-exported from the top-level :mod:`repro`
package::

    from repro import simulate, SimConfig, PrefetchConfig
    from repro.workloads import build_trace

    trace = build_trace("gcc_like", length=200_000)
    result = simulate(trace, SimConfig(prefetch=PrefetchConfig(
        kind="fdip", filter_mode="enqueue")))

The long-deprecated ``repro.run_simulation`` alias has been removed;
:func:`simulate` is the one way to run a single point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.obs.profile import profile_run  # noqa: F401  (re-exported)
from repro.sim.results import SimResult
from repro.spec import (  # noqa: F401  (re-exported)
    ExperimentSpec,
    Point,
    RunRequest,
    RunResponse,
    resolve_request,
)
from repro.sim.simulator import Simulator
from repro.stats import TelemetryNode, TelemetrySnapshot, \
    merge_snapshots  # noqa: F401  (re-exported)
from repro.trace import Trace

if TYPE_CHECKING:
    from repro.harness.parallel import SweepOutcome
    from repro.harness.runner import Runner

__all__ = ["simulate", "make_runner", "sweep", "profile_run",
           "execute", "resolve_request", "RunRequest", "RunResponse",
           "Point", "ExperimentSpec",
           "TelemetryNode", "TelemetrySnapshot", "merge_snapshots"]


def execute(request: RunRequest, *, trace: Trace | None = None,
            processes: int | None = None, profile: bool = False,
            tracer=None, fast_loop: bool | None = None,
            engine: str | None = None) -> RunResponse:
    """Execute one typed request and return its typed response.

    The canonical run entry point: the request is normalized through
    :func:`~repro.spec.resolve_request` (the same path every cache key
    derives from), the workload trace is built from the request's
    ``(workload, trace_length, seed)`` identity unless an in-memory
    ``trace`` is supplied, and execution dispatches on the resolved
    shard count — monolithic in-process, or fanned out over the
    supervised pool (``processes`` workers).

    ``profile=True`` turns the cycle-attribution profiler on (the
    result stays bit-identical; monolithic runs only) and fills the
    response's ``profile`` field.  ``tracer``, ``engine``, and the
    deprecated ``fast_loop`` are per-call execution knobs that never
    contribute to the request's identity (every engine is
    bit-identical); a ``tracer`` does not compose with sharding.
    ``engine`` (one of :data:`~repro.config.ENGINES`) takes precedence
    over ``fast_loop`` when both are given.
    """
    request = resolve_request(request)
    config = request.config
    if trace is None:
        from repro.workloads import build_trace

        trace = build_trace(request.workload, request.trace_length,
                            seed=request.seed)
    assert request.shards is not None
    if request.shards > 1:
        if tracer is not None:
            raise ConfigError(
                "a pipeline tracer does not compose with sharded "
                "simulation; run with shards=1 to trace")
        if profile:
            raise ConfigError(
                "the cycle profiler needs a monolithic run; "
                "run with shards=1 to profile")
        from repro.harness.shard_runner import run_sharded

        if fast_loop is not None:
            config = config.replace(fast_loop=fast_loop)
        if engine is not None:
            config = config.replace(engine=engine, fast_loop=True)
        result = run_sharded(trace, config, shards=request.shards,
                             overlap=request.shard_overlap,
                             name=request.label, processes=processes)
        return RunResponse(result=result, request=request)
    if profile and not config.profile:
        config = config.replace(profile=True)
    sim = Simulator(trace, config, name=request.label, tracer=tracer,
                    fast_loop=fast_loop, engine=engine)
    result = sim.run()
    return RunResponse(result=result, request=request,
                       profile=sim.profile_report() if profile else None)


def simulate(trace: Trace, config: SimConfig | None = None, *,
             name: str | None = None, tracer=None,
             fast_loop: bool | None = None,
             engine: str | None = None,
             shards: int | None = None,
             shard_overlap: int | None = None,
             processes: int | None = None) -> SimResult:
    """Simulate ``trace`` under ``config`` and return the result.

    A thin shim over :func:`execute`: the trace's identity and the
    keyword arguments are bundled into a :class:`~repro.spec.
    RunRequest` and resolved through the shared normalization path.

    ``config`` defaults to a stock :class:`~repro.config.SimConfig`.
    ``name`` labels the result (defaults to the trace's name),
    ``tracer`` attaches a per-cycle pipeline tracer (which forces the
    naive cycle loop), and ``engine`` overrides ``config.engine`` for
    this run (one of :data:`~repro.config.ENGINES`; every engine is
    bit-identical, see ``docs/performance.md``).  ``fast_loop`` is the
    deprecated boolean predecessor of ``engine`` and loses to it when
    both are given.

    ``shards=K`` splits the trace into ``K`` windows simulated on a
    supervised process pool (``processes`` workers) and merges the
    telemetry; ``shard_overlap`` sets each window's timed warm-up
    prefix (see :mod:`repro.sim.sharding`).  ``shards=1`` (and the
    default of ``None``) runs monolithically; a ``tracer`` does not
    compose with sharding.
    """
    request = resolve_request(
        workload=trace.name or "trace", config=config,
        trace_length=len(trace), seed=trace.seed,
        shards=shards, shard_overlap=shard_overlap, label=name)
    return execute(request, trace=trace, processes=processes,
                   tracer=tracer, fast_loop=fast_loop,
                   engine=engine).result


def make_runner(trace_length: int | None = None, seed: int = 1,
                warmup_fraction: float = 0.2,
                persist_dir: str | None = None,
                shards: int | None = None,
                shard_overlap: int | None = None,
                processes: int | None = None) -> "Runner":
    """Construct the memoizing experiment runner.

    A thin constructor wrapper so callers need not import
    :mod:`repro.harness` directly; see
    :class:`~repro.harness.runner.Runner` for the semantics of each
    parameter.  ``shards``/``shard_overlap`` set the runner's
    transparent sharding policy for long traces; ``processes`` is its
    default worker budget.
    """
    from repro.harness.runner import Runner

    return Runner(trace_length=trace_length, seed=seed,
                  warmup_fraction=warmup_fraction,
                  persist_dir=persist_dir, shards=shards,
                  shard_overlap=shard_overlap, processes=processes)


def sweep(points: "list[Point] | ExperimentSpec",
          *, trace_length: int | None = None, seed: int = 1,
          warmup_fraction: float = 0.2, processes: int | None = None,
          max_retries: int = 2, point_timeout: float | None = None,
          checkpoint: str | None = None, resume: bool = False,
          shards: int | None = None,
          shard_overlap: int | None = None) -> "SweepOutcome":
    """Run many sweep points fault-tolerantly.

    ``points`` is a list of typed :class:`~repro.spec.Point` objects
    or an :class:`~repro.spec.ExperimentSpec` (legacy ``(workload,
    config)`` tuples are rejected with a ``ConfigError``).  Fans out
    across ``processes`` workers with per-point retries, optional
    timeouts, and checkpoint/resume — the same machinery the experiment
    harness uses (see :meth:`repro.harness.runner.Runner.sweep`).
    ``shards``/``shard_overlap`` set the default per-point sharding
    policy (a point's own ``shards`` wins).  Returns the
    :class:`~repro.harness.parallel.SweepOutcome` mapping each point's
    ``(workload, config)`` identity to its result.
    """
    runner = make_runner(trace_length=trace_length, seed=seed,
                         warmup_fraction=warmup_fraction,
                         shards=shards, shard_overlap=shard_overlap)
    return runner.sweep(points, processes=processes,
                        max_retries=max_retries,
                        point_timeout=point_timeout,
                        checkpoint=checkpoint, resume=resume)
