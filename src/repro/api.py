"""Stable top-level API for running simulations and sweeps.

This module is the supported entry point for programmatic use; the
examples, benchmarks, and CLI all go through it.  It intentionally
exposes a small surface:

- :func:`simulate` — run one (trace, config) point to a
  :class:`~repro.sim.results.SimResult`, optionally sharded across
  worker processes (``shards=K``);
- :func:`make_runner` — construct the memoizing experiment
  :class:`~repro.harness.runner.Runner`;
- :func:`sweep` — run many points fault-tolerantly in parallel, where
  a point is a typed :class:`~repro.spec.Point` and
  :class:`~repro.spec.ExperimentSpec` names a whole collection
  (legacy ``(workload, config)`` tuples are rejected with a
  :class:`~repro.errors.ConfigError` naming the replacement);
- :func:`profile_run` — simulate one point with the cycle-attribution
  profiler on and return ``(result, profile)`` (see
  :mod:`repro.obs.profile`).

Every :class:`~repro.sim.results.SimResult` carries the full
hierarchical telemetry tree on ``result.telemetry`` (a
:class:`~repro.stats.telemetry.TelemetrySnapshot`, re-exported here
along with :class:`~repro.stats.telemetry.TelemetryNode` and
:func:`~repro.stats.sweep.merge_snapshots` for cross-shard
aggregation).

Everything here is re-exported from the top-level :mod:`repro`
package::

    from repro import simulate, SimConfig, PrefetchConfig
    from repro.workloads import build_trace

    trace = build_trace("gcc_like", length=200_000)
    result = simulate(trace, SimConfig(prefetch=PrefetchConfig(
        kind="fdip", filter_mode="enqueue")))

The long-deprecated ``repro.run_simulation`` alias has been removed;
:func:`simulate` is the one way to run a single point.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.obs.profile import profile_run  # noqa: F401  (re-exported)
from repro.sim.results import SimResult
from repro.spec import (  # noqa: F401  (re-exported)
    ExperimentSpec,
    Point,
)
from repro.sim.simulator import Simulator
from repro.stats import TelemetryNode, TelemetrySnapshot, \
    merge_snapshots  # noqa: F401  (re-exported)
from repro.trace import Trace

if TYPE_CHECKING:
    from repro.harness.parallel import SweepOutcome
    from repro.harness.runner import Runner

__all__ = ["simulate", "make_runner", "sweep", "profile_run",
           "Point", "ExperimentSpec",
           "TelemetryNode", "TelemetrySnapshot", "merge_snapshots"]


def simulate(trace: Trace, config: SimConfig | None = None, *,
             name: str | None = None, tracer=None,
             fast_loop: bool | None = None,
             shards: int | None = None,
             shard_overlap: int | None = None,
             processes: int | None = None) -> SimResult:
    """Simulate ``trace`` under ``config`` and return the result.

    ``config`` defaults to a stock :class:`~repro.config.SimConfig`.
    ``name`` labels the result (defaults to the trace's name),
    ``tracer`` attaches a per-cycle pipeline tracer (which forces the
    naive cycle loop), and ``fast_loop`` overrides ``config.fast_loop``
    for this run — the fast path is bit-identical to the naive loop
    (see ``docs/performance.md``), so the default of on is safe.

    ``shards=K`` splits the trace into ``K`` windows simulated on a
    supervised process pool (``processes`` workers) and merges the
    telemetry; ``shard_overlap`` sets each window's timed warm-up
    prefix (see :mod:`repro.sim.sharding`).  ``shards=1`` (and the
    default of ``None``) runs monolithically; a ``tracer`` does not
    compose with sharding.
    """
    if config is None:
        config = SimConfig()
    if shards is not None and shards > 1:
        if tracer is not None:
            raise ConfigError(
                "a pipeline tracer does not compose with sharded "
                "simulation; run with shards=1 to trace")
        from repro.harness.shard_runner import run_sharded

        if fast_loop is not None:
            config = config.replace(fast_loop=fast_loop)
        return run_sharded(trace, config, shards=shards,
                           overlap=shard_overlap, name=name,
                           processes=processes)
    return Simulator(trace, config, name=name, tracer=tracer,
                     fast_loop=fast_loop).run()


def make_runner(trace_length: int | None = None, seed: int = 1,
                warmup_fraction: float = 0.2,
                persist_dir: str | None = None,
                shards: int | None = None,
                shard_overlap: int | None = None,
                processes: int | None = None) -> "Runner":
    """Construct the memoizing experiment runner.

    A thin constructor wrapper so callers need not import
    :mod:`repro.harness` directly; see
    :class:`~repro.harness.runner.Runner` for the semantics of each
    parameter.  ``shards``/``shard_overlap`` set the runner's
    transparent sharding policy for long traces; ``processes`` is its
    default worker budget.
    """
    from repro.harness.runner import Runner

    return Runner(trace_length=trace_length, seed=seed,
                  warmup_fraction=warmup_fraction,
                  persist_dir=persist_dir, shards=shards,
                  shard_overlap=shard_overlap, processes=processes)


def sweep(points: "list[Point] | ExperimentSpec",
          *, trace_length: int | None = None, seed: int = 1,
          warmup_fraction: float = 0.2, processes: int | None = None,
          max_retries: int = 2, point_timeout: float | None = None,
          checkpoint: str | None = None, resume: bool = False,
          shards: int | None = None,
          shard_overlap: int | None = None) -> "SweepOutcome":
    """Run many sweep points fault-tolerantly.

    ``points`` is a list of typed :class:`~repro.spec.Point` objects
    or an :class:`~repro.spec.ExperimentSpec` (legacy ``(workload,
    config)`` tuples are rejected with a ``ConfigError``).  Fans out
    across ``processes`` workers with per-point retries, optional
    timeouts, and checkpoint/resume — the same machinery the experiment
    harness uses (see :meth:`repro.harness.runner.Runner.sweep`).
    ``shards``/``shard_overlap`` set the default per-point sharding
    policy (a point's own ``shards`` wins).  Returns the
    :class:`~repro.harness.parallel.SweepOutcome` mapping each point's
    ``(workload, config)`` identity to its result.
    """
    runner = make_runner(trace_length=trace_length, seed=seed,
                         warmup_fraction=warmup_fraction,
                         shards=shards, shard_overlap=shard_overlap)
    return runner.sweep(points, processes=processes,
                        max_retries=max_retries,
                        point_timeout=point_timeout,
                        checkpoint=checkpoint, resume=resume)
