"""Synthetic program generator.

Generates a :class:`~repro.cfg.model.Program` from a
:class:`~repro.cfg.shape.ProgramShape`, deterministically per seed.  The
generator works in two phases:

1. **Planning** — decide, per function, the block sizes, terminator kinds,
   and *symbolic* targets (references to blocks/functions by index).
   Functions are assigned to call-graph levels; calls only target deeper
   levels, which bounds dynamic call depth by ``shape.n_levels``.
2. **Materialization** — lay functions out contiguously from
   :data:`~repro.cfg.model.TEXT_BASE`, resolve symbolic targets to
   addresses, and build the immutable program image.

Function 0 (``main``) is always a dispatch loop: a block ending in an
indirect call whose target set spans ``dispatcher_fanout`` handler
functions, wrapped in a long-trip loop.  A small fan-out yields a
client-like program that re-executes a small working set; a large fan-out
yields a server-like program that sweeps a working set far larger than an
L1 instruction cache.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cfg.model import TEXT_BASE, BasicBlock, Function, Program
from repro.cfg.shape import ProgramShape
from repro.errors import GenerationError
from repro.isa import INSTRUCTION_BYTES, InstrKind, StaticInstr

__all__ = ["ProgramGenerator", "generate_program"]

_BODY_KINDS = (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE)

# Symbolic terminator tags used during planning.
_COND, _JUMP, _CALL, _ICALL, _IJUMP, _FALL, _RET = (
    "cond", "jump", "call", "icall", "ijump", "fall", "ret")


@dataclass
class _BlockPlan:
    body_len: int
    tag: str
    # Symbolic target: block index (cond/jump), function index (call),
    # or a list of (index, weight) pairs for indirect terminators.
    target_block: int | None = None
    target_func: int | None = None
    indirect: list[tuple[int, float]] = field(default_factory=list)
    indirect_kind: str = ""          # "block" or "func"
    is_loop: bool = False
    loop_trips: int = 0
    taken_bias: float = 0.5


class ProgramGenerator:
    """Deterministic generator of synthetic programs.

    The same (shape, seed, name) always produces the identical program, so
    traces derived from it are reproducible and cacheable.
    """

    def __init__(self, shape: ProgramShape, seed: int = 0,
                 name: str = "synthetic"):
        self.shape = shape
        self.seed = seed
        self.name = name

    def generate(self) -> Program:
        """Build and validate the program."""
        rng = random.Random(self.seed)
        levels = self._assign_levels()
        hotness = self._assign_hotness(rng)
        plans = [self._plan_function(f, levels, hotness, rng)
                 for f in range(self.shape.n_functions)]
        return self._materialize(plans, rng)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _assign_levels(self) -> list[int]:
        """Map function index -> call-graph level (0 = main).

        Deeper levels hold more functions (call graphs fan out), and level
        grows with function index so calls to deeper levels are always
        forward in the address space.
        """
        shape = self.shape
        levels = [0]
        remaining = shape.n_functions - 1
        depth_levels = shape.n_levels - 1
        weights = [l + 1 for l in range(depth_levels)]
        total_weight = sum(weights)
        counts = [max(1, round(remaining * w / total_weight))
                  for w in weights]
        # Adjust the deepest level so counts sum exactly to `remaining`.
        counts[-1] += remaining - sum(counts)
        if counts[-1] < 1:
            # Degenerate tiny programs: flatten into two levels.
            counts = [0] * (depth_levels - 1) + [remaining]
        for level_index, count in enumerate(counts, start=1):
            levels.extend([level_index] * count)
        return levels

    def _assign_hotness(self, rng: random.Random) -> list[float]:
        """Zipf-distributed per-function weight (hot shared callees)."""
        n = self.shape.n_functions
        ranks = list(range(1, n + 1))
        rng.shuffle(ranks)
        s = self.shape.call_zipf_s
        return [1.0 / (rank ** s) for rank in ranks]

    def _body_len(self, rng: random.Random) -> int:
        mean = self.shape.block_body_mean
        if mean <= 1.0:
            return 1
        draw = 1 + int(rng.expovariate(1.0 / (mean - 1.0)))
        return min(draw, self.shape.block_body_max)

    def _blocks_for_function(self, func: int, rng: random.Random) -> int:
        shape = self.shape
        per_function = shape.target_instrs / shape.n_functions
        per_block = shape.block_body_mean + 1.0
        mean_blocks = max(2.0, per_function / per_block)
        draw = 1 + int(rng.expovariate(1.0 / mean_blocks))
        return max(2, min(draw, 4 * int(mean_blocks) + 2))

    def _plan_function(self, func: int, levels: list[int],
                       hotness: list[float],
                       rng: random.Random) -> list[_BlockPlan]:
        if func == 0:
            return self._plan_main(levels, hotness, rng)
        n_blocks = self._blocks_for_function(func, rng)
        plans = [self._plan_block(func, i, n_blocks, levels, hotness, rng)
                 for i in range(n_blocks - 1)]
        plans.append(_BlockPlan(body_len=self._body_len(rng), tag=_RET))
        return plans

    def _plan_main(self, levels: list[int], hotness: list[float],
                   rng: random.Random) -> list[_BlockPlan]:
        """main() is a dispatch loop over handler functions."""
        shape = self.shape
        handlers = [f for f in range(1, shape.n_functions)
                    if levels[f] >= 1]
        fanout = min(shape.dispatcher_fanout, len(handlers))
        if fanout == 0:
            raise GenerationError("no handler functions for the dispatcher")
        chosen = self._weighted_sample(handlers,
                                       [hotness[f] for f in handlers],
                                       fanout, rng)
        s = shape.dispatcher_zipf_s
        weights = [1.0 / ((i + 1) ** s) for i in range(len(chosen))]
        total = sum(weights)
        targets = [(f, w / total) for f, w in zip(chosen, weights)]

        prologue = _BlockPlan(body_len=self._body_len(rng), tag=_FALL)
        dispatch = _BlockPlan(body_len=self._body_len(rng), tag=_ICALL,
                              indirect=targets, indirect_kind="func")
        loop = _BlockPlan(body_len=1, tag=_COND, target_block=1,
                          is_loop=True, loop_trips=shape.dispatcher_trips,
                          taken_bias=0.999)
        epilogue = _BlockPlan(body_len=1, tag=_RET)
        return [prologue, dispatch, loop, epilogue]

    def _plan_block(self, func: int, index: int, n_blocks: int,
                    levels: list[int], hotness: list[float],
                    rng: random.Random) -> _BlockPlan:
        shape = self.shape
        plan = _BlockPlan(body_len=self._body_len(rng), tag=_FALL)
        last = n_blocks - 1
        roll = rng.random()

        cut_cond = shape.p_cond
        cut_jump = cut_cond + shape.p_jump
        cut_call = cut_jump + shape.p_call
        cut_ijump = cut_call + shape.p_indirect_jump
        cut_ret = cut_ijump + shape.p_early_return

        if roll < cut_cond:
            self._plan_cond(plan, index, last, rng)
        elif roll < cut_jump:
            target = self._forward_block(index, last, rng, min_skip=2)
            if target is not None:
                plan.tag = _JUMP
                plan.target_block = target
        elif roll < cut_call:
            callee = self._pick_callee(func, levels, hotness, rng)
            if callee is not None:
                if rng.random() < shape.p_call_indirect:
                    candidates = self._callee_candidates(func, levels)
                    chosen = self._weighted_sample(
                        candidates, [hotness[f] for f in candidates],
                        min(shape.indirect_fanout, len(candidates)), rng)
                    total = sum(hotness[f] for f in chosen)
                    plan.tag = _ICALL
                    plan.indirect = [(f, hotness[f] / total)
                                     for f in chosen]
                    plan.indirect_kind = "func"
                else:
                    plan.tag = _CALL
                    plan.target_func = callee
        elif roll < cut_ijump:
            candidates = list(range(index + 1, last + 1))
            if candidates:
                k = min(shape.indirect_fanout, len(candidates))
                chosen = rng.sample(candidates, k)
                weights = [1.0 / (i + 1) for i in range(k)]
                total = sum(weights)
                plan.tag = _IJUMP
                plan.indirect = [(b, w / total)
                                 for b, w in zip(chosen, weights)]
                plan.indirect_kind = "block"
        elif roll < cut_ret:
            plan.tag = _RET
        return plan

    def _plan_cond(self, plan: _BlockPlan, index: int, last: int,
                   rng: random.Random) -> None:
        shape = self.shape
        if rng.random() < shape.p_loop:
            # Loop back edge to this block or a nearby earlier block.
            target = rng.randint(max(0, index - 6), index)
            trips = 2 + int(rng.expovariate(1.0 / shape.loop_trip_mean))
            plan.tag = _COND
            plan.target_block = target
            plan.is_loop = True
            plan.loop_trips = min(trips, shape.loop_trip_max)
            plan.taken_bias = 0.9
            return
        target = self._forward_block(index, last, rng, min_skip=2)
        if target is None:
            return  # stays a fallthrough block
        plan.tag = _COND
        plan.target_block = target
        plan.taken_bias = rng.choice(shape.taken_bias_choices)

    def _forward_block(self, index: int, last: int, rng: random.Random,
                       min_skip: int) -> int | None:
        lo = index + min_skip
        if lo > last:
            return None
        hi = min(last, index + 8)
        if hi < lo:
            hi = lo
        return rng.randint(lo, hi)

    def _callee_candidates(self, func: int, levels: list[int]) -> list[int]:
        my_level = levels[func]
        return [f for f in range(len(levels)) if levels[f] > my_level]

    def _pick_callee(self, func: int, levels: list[int],
                     hotness: list[float],
                     rng: random.Random) -> int | None:
        candidates = self._callee_candidates(func, levels)
        if not candidates:
            return None
        # Bias toward the next level down, weighted by global hotness.
        my_level = levels[func]
        weights = [hotness[f] / (levels[f] - my_level) for f in candidates]
        return rng.choices(candidates, weights=weights, k=1)[0]

    @staticmethod
    def _weighted_sample(items: list[int], weights: list[float], k: int,
                         rng: random.Random) -> list[int]:
        """Weighted sampling without replacement (Efraimidis-Spirakis)."""
        if k >= len(items):
            return list(items)
        keyed = sorted(zip(items, weights),
                       key=lambda pair: -(rng.random() ** (1.0 / pair[1])))
        return [item for item, _ in keyed[:k]]

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def _materialize(self, plans: list[list[_BlockPlan]],
                     rng: random.Random) -> Program:
        shape = self.shape
        # First pass: compute block start addresses.
        block_addr: list[list[int]] = []
        func_entry: list[int] = []
        cursor = TEXT_BASE
        for func_plans in plans:
            starts = []
            func_entry.append(cursor)
            for plan in func_plans:
                starts.append(cursor)
                n_instrs = plan.body_len + (0 if plan.tag == _FALL else 1)
                cursor += n_instrs * INSTRUCTION_BYTES
            block_addr.append(starts)

        # Second pass: build blocks with resolved targets.
        functions = []
        body_weights = list(shape.body_mix)
        for func_index, func_plans in enumerate(plans):
            blocks = []
            for block_index, plan in enumerate(func_plans):
                start = block_addr[func_index][block_index]
                blocks.append(self._build_block(
                    plan, start, func_index, block_index, func_plans,
                    block_addr, func_entry, body_weights, rng))
            functions.append(Function(name=f"f{func_index}", blocks=blocks))
        return Program(functions, name=self.name)

    def _build_block(self, plan: _BlockPlan, start: int, func_index: int,
                     block_index: int, func_plans: list[_BlockPlan],
                     block_addr: list[list[int]], func_entry: list[int],
                     body_weights: list[float],
                     rng: random.Random) -> BasicBlock:
        instrs = []
        pc = start
        for kind in rng.choices(_BODY_KINDS, weights=body_weights,
                                k=plan.body_len):
            instrs.append(StaticInstr(pc=pc, kind=kind))
            pc += INSTRUCTION_BYTES

        my_blocks = block_addr[func_index]
        is_last = block_index == len(func_plans) - 1
        fallthrough = None if is_last else my_blocks[block_index + 1]

        indirect_targets: tuple[int, ...] = ()
        indirect_weights: tuple[float, ...] = ()
        if plan.tag == _FALL:
            if fallthrough is None:
                raise GenerationError(
                    "final block planned as fallthrough; generator bug")
            terminator = None
        elif plan.tag == _COND:
            target = my_blocks[plan.target_block]
            terminator = StaticInstr(pc, InstrKind.BRANCH_COND, target)
        elif plan.tag == _JUMP:
            target = my_blocks[plan.target_block]
            terminator = StaticInstr(pc, InstrKind.JUMP_DIRECT, target)
        elif plan.tag == _CALL:
            target = func_entry[plan.target_func]
            terminator = StaticInstr(pc, InstrKind.CALL, target)
        elif plan.tag == _ICALL:
            terminator = StaticInstr(pc, InstrKind.CALL_INDIRECT)
            indirect_targets = tuple(func_entry[f]
                                     for f, _ in plan.indirect)
            indirect_weights = tuple(w for _, w in plan.indirect)
        elif plan.tag == _IJUMP:
            terminator = StaticInstr(pc, InstrKind.JUMP_INDIRECT)
            indirect_targets = tuple(my_blocks[b]
                                     for b, _ in plan.indirect)
            indirect_weights = tuple(w for _, w in plan.indirect)
        elif plan.tag == _RET:
            terminator = StaticInstr(pc, InstrKind.RETURN)
        else:
            raise GenerationError(f"unknown block tag {plan.tag!r}")

        if terminator is not None:
            instrs.append(terminator)
        return BasicBlock(
            start=start,
            instrs=instrs,
            fallthrough=fallthrough,
            taken_bias=plan.taken_bias,
            loop_trips=plan.loop_trips if plan.is_loop else None,
            indirect_targets=indirect_targets,
            indirect_weights=indirect_weights,
        )


def generate_program(shape: ProgramShape, seed: int = 0,
                     name: str = "synthetic") -> Program:
    """Convenience wrapper: generate a validated program in one call."""
    return ProgramGenerator(shape, seed=seed, name=name).generate()
