"""Static program model: basic blocks, functions, and whole programs.

The workload generator (:mod:`repro.cfg.generator`) emits instances of these
classes; the trace walker (:mod:`repro.cfg.walker`) executes them to produce
dynamic instruction traces; and the front end consults the static image
(:meth:`Program.instr_at`) when it speculates down a wrong path.

Control-flow invariants enforced here (and relied on by the walker to
guarantee forward progress):

- every block's fallthrough is the next block in layout order (or the block
  ends in an unconditional transfer),
- conditional branches either jump *forward* within the function or are
  *loop back edges* with a finite trip count,
- the final block of every function returns,
- direct calls only target function entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.isa import INSTRUCTION_BYTES, StaticInstr

__all__ = ["TEXT_BASE", "BasicBlock", "Function", "Program"]

TEXT_BASE = 0x0040_0000
"""Base address of the program text segment (SimpleScalar convention)."""


@dataclass
class BasicBlock:
    """A straight-line run of instructions with one optional terminator.

    ``instrs`` includes the terminator (last element) when the block ends in
    a control instruction; a block whose last instruction is not control
    simply falls through to ``fallthrough``.

    Dynamic-behaviour annotations drive the trace walker:

    - ``taken_bias``: probability a conditional branch is taken on a random
      (non-loop) execution,
    - ``loop_trips``: when set, the conditional terminator is a loop back
      edge taken ``loop_trips - 1`` consecutive times then not taken
      (a deterministic, learnable pattern),
    - ``indirect_targets`` / ``indirect_weights``: the dynamic target set of
      an indirect jump or call.
    """

    start: int
    instrs: list[StaticInstr]
    fallthrough: int | None
    taken_bias: float = 0.5
    loop_trips: int | None = None
    indirect_targets: tuple[int, ...] = ()
    indirect_weights: tuple[float, ...] = ()

    @property
    def end(self) -> int:
        """Address one past the last instruction of the block."""
        return self.start + len(self.instrs) * INSTRUCTION_BYTES

    @property
    def n_instrs(self) -> int:
        return len(self.instrs)

    @property
    def terminator(self) -> StaticInstr | None:
        """The control instruction ending this block, if any."""
        if self.instrs and self.instrs[-1].kind.is_control:
            return self.instrs[-1]
        return None

    def validate(self) -> None:
        """Check internal consistency; raise GenerationError on violation."""
        if not self.instrs:
            raise GenerationError(f"empty basic block at {self.start:#x}")
        expected_pc = self.start
        for instr in self.instrs:
            if instr.pc != expected_pc:
                raise GenerationError(
                    f"non-contiguous pc {instr.pc:#x} in block at "
                    f"{self.start:#x} (expected {expected_pc:#x})")
            expected_pc += INSTRUCTION_BYTES
        for instr in self.instrs[:-1]:
            if instr.kind.is_control:
                raise GenerationError(
                    f"control instruction {instr!r} in the middle of the "
                    f"block at {self.start:#x}")
        term = self.terminator
        if term is None and self.fallthrough is None:
            raise GenerationError(
                f"block at {self.start:#x} has no terminator and no "
                f"fallthrough")
        if term is not None:
            if term.kind.is_indirect and not term.kind.is_return:
                if not self.indirect_targets:
                    raise GenerationError(
                        f"indirect terminator at {term.pc:#x} has no "
                        f"target set")
                if len(self.indirect_targets) != len(self.indirect_weights):
                    raise GenerationError(
                        f"indirect target/weight length mismatch at "
                        f"{term.pc:#x}")
            elif not term.kind.is_return and term.target is None:
                raise GenerationError(
                    f"direct control instruction at {term.pc:#x} has no "
                    f"static target")
        if not 0.0 <= self.taken_bias <= 1.0:
            raise GenerationError(
                f"taken_bias {self.taken_bias} out of range at "
                f"{self.start:#x}")
        if self.loop_trips is not None and self.loop_trips < 1:
            raise GenerationError(
                f"loop_trips must be >= 1 at {self.start:#x}")


@dataclass
class Function:
    """A contiguous sequence of basic blocks with a single entry."""

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return self.blocks[0].start

    @property
    def start(self) -> int:
        return self.blocks[0].start

    @property
    def end(self) -> int:
        return self.blocks[-1].end

    @property
    def n_instrs(self) -> int:
        return sum(block.n_instrs for block in self.blocks)

    def validate(self) -> None:
        """Check layout contiguity and the return-at-end invariant."""
        if not self.blocks:
            raise GenerationError(f"function {self.name} has no blocks")
        expected = self.blocks[0].start
        for block in self.blocks:
            if block.start != expected:
                raise GenerationError(
                    f"function {self.name}: block at {block.start:#x} not "
                    f"contiguous (expected {expected:#x})")
            block.validate()
            expected = block.end
        last = self.blocks[-1].terminator
        if last is None or not last.kind.is_return:
            raise GenerationError(
                f"function {self.name} does not end in a return")


class Program:
    """A complete synthetic program: functions laid out contiguously.

    Provides O(1) lookup of the instruction and block at any text address,
    which the wrong-path front end uses to speculate through code the trace
    has not (yet) touched.
    """

    def __init__(self, functions: list[Function], name: str = "synthetic"):
        if not functions:
            raise GenerationError("a program needs at least one function")
        self.name = name
        self.functions = functions
        self._instr_index: dict[int, StaticInstr] = {}
        self._block_index: dict[int, BasicBlock] = {}
        self._entry_index: dict[int, Function] = {}
        self._build_indexes()
        self.validate()

    def _build_indexes(self) -> None:
        for function in self.functions:
            self._entry_index[function.entry] = function
            for block in function.blocks:
                for instr in block.instrs:
                    self._instr_index[instr.pc] = instr
                    self._block_index[instr.pc] = block

    @property
    def entry(self) -> int:
        """Program entry point (the first function's first instruction)."""
        return self.functions[0].entry

    @property
    def start(self) -> int:
        return self.functions[0].start

    @property
    def end(self) -> int:
        return self.functions[-1].end

    @property
    def n_instrs(self) -> int:
        return len(self._instr_index)

    @property
    def footprint_bytes(self) -> int:
        """Static code footprint in bytes."""
        return self.n_instrs * INSTRUCTION_BYTES

    def instr_at(self, pc: int) -> StaticInstr | None:
        """The instruction at ``pc``, or None outside the text segment."""
        return self._instr_index.get(pc)

    def block_at(self, pc: int) -> BasicBlock | None:
        """The basic block containing ``pc``, or None."""
        return self._block_index.get(pc)

    def function_entered_at(self, pc: int) -> Function | None:
        """The function whose entry point is exactly ``pc``, or None."""
        return self._entry_index.get(pc)

    def validate(self) -> None:
        """Validate every function plus cross-function invariants."""
        expected = self.functions[0].start
        for function in self.functions:
            if function.start != expected:
                raise GenerationError(
                    f"function {function.name} at {function.start:#x} not "
                    f"contiguous (expected {expected:#x})")
            function.validate()
            expected = function.end
        for function in self.functions:
            for block in function.blocks:
                term = block.terminator
                if term is None:
                    continue
                if term.kind.is_call and term.target is not None:
                    if term.target not in self._entry_index:
                        raise GenerationError(
                            f"call at {term.pc:#x} targets {term.target:#x} "
                            f"which is not a function entry")
                for target in block.indirect_targets:
                    if target not in self._instr_index:
                        raise GenerationError(
                            f"indirect target {target:#x} of {term.pc:#x} "
                            f"is outside the program")

    def __repr__(self) -> str:
        return (f"Program({self.name!r}, functions={len(self.functions)}, "
                f"instrs={self.n_instrs}, "
                f"footprint={self.footprint_bytes // 1024}KB)")
