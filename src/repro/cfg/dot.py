"""Graphviz DOT export of synthetic programs.

Debugging aid: render a generated control-flow graph (or one function of
it) to DOT text for inspection with ``dot -Tsvg``.  Block nodes show the
address range and instruction count; edges are labeled by kind
(fallthrough, taken, call, return-site).
"""

from __future__ import annotations

import io

from repro.cfg.model import BasicBlock, Function, Program
from repro.isa import InstrKind

__all__ = ["program_to_dot", "function_to_dot"]


def _block_id(block: BasicBlock) -> str:
    return f"b{block.start:x}"


def _block_label(block: BasicBlock) -> str:
    term = block.terminator
    kind = term.kind.name if term is not None else "fall"
    return (f"{block.start:#x}..{block.end:#x}\\n"
            f"{block.n_instrs} instrs, {kind}")


def _write_block_edges(out: io.StringIO, block: BasicBlock) -> None:
    source = _block_id(block)
    term = block.terminator
    if term is None:
        out.write(f'  {source} -> b{block.fallthrough:x} '
                  f'[label="fall"];\n')
        return
    kind = term.kind
    if kind == InstrKind.BRANCH_COND:
        out.write(f'  {source} -> b{term.target:x} '
                  f'[label="taken p={block.taken_bias:.2f}"];\n')
        out.write(f'  {source} -> b{block.fallthrough:x} '
                  f'[label="not-taken"];\n')
    elif kind == InstrKind.JUMP_DIRECT:
        out.write(f'  {source} -> b{term.target:x} [label="jump"];\n')
    elif kind == InstrKind.CALL:
        out.write(f'  {source} -> b{term.target:x} '
                  f'[label="call" style=dashed];\n')
        if block.fallthrough is not None:
            out.write(f'  {source} -> b{block.fallthrough:x} '
                      f'[label="return-site" style=dotted];\n')
    elif kind in (InstrKind.CALL_INDIRECT, InstrKind.JUMP_INDIRECT):
        for target, weight in zip(block.indirect_targets,
                                  block.indirect_weights):
            out.write(f'  {source} -> b{target:x} '
                      f'[label="{weight:.2f}" style=dashed];\n')
        if kind == InstrKind.CALL_INDIRECT \
                and block.fallthrough is not None:
            out.write(f'  {source} -> b{block.fallthrough:x} '
                      f'[label="return-site" style=dotted];\n')
    # RETURN has no static successor.


def function_to_dot(function: Function, name: str | None = None) -> str:
    """Render one function as a standalone DOT digraph."""
    out = io.StringIO()
    out.write(f'digraph "{name or function.name}" {{\n')
    out.write('  node [shape=box fontname="monospace"];\n')
    for block in function.blocks:
        out.write(f'  {_block_id(block)} '
                  f'[label="{_block_label(block)}"];\n')
    for block in function.blocks:
        _write_block_edges(out, block)
    out.write("}\n")
    return out.getvalue()


def program_to_dot(program: Program, max_functions: int | None = None,
                   ) -> str:
    """Render the whole program, one cluster per function.

    ``max_functions`` truncates the output for large programs (edges to
    omitted functions still appear, pointing at their entry nodes).
    """
    functions = program.functions
    if max_functions is not None:
        functions = functions[:max_functions]
    included_blocks = {block.start
                       for function in functions
                       for block in function.blocks}
    out = io.StringIO()
    out.write(f'digraph "{program.name}" {{\n')
    out.write('  node [shape=box fontname="monospace"];\n')
    for index, function in enumerate(functions):
        out.write(f"  subgraph cluster_{index} {{\n")
        out.write(f'    label="{function.name}";\n')
        for block in function.blocks:
            out.write(f'    {_block_id(block)} '
                      f'[label="{_block_label(block)}"];\n')
        out.write("  }\n")
    # Emit placeholder nodes for call targets outside the included set.
    seen_external: set[int] = set()
    for function in functions:
        for block in function.blocks:
            term = block.terminator
            if term is None:
                continue
            targets = list(block.indirect_targets)
            if term.target is not None:
                targets.append(term.target)
            for target in targets:
                if target not in included_blocks \
                        and target not in seen_external:
                    seen_external.add(target)
                    out.write(f'  b{target:x} [label="{target:#x}" '
                              f'style=dashed];\n')
    for function in functions:
        for block in function.blocks:
            _write_block_edges(out, block)
    out.write("}\n")
    return out.getvalue()
