"""Dynamic execution of a synthetic program: the trace walker.

The walker interprets a :class:`~repro.cfg.model.Program` and emits the
committed instruction stream as :class:`~repro.trace.records.TraceRecord`
values.  Execution starts at the program entry; when ``main`` returns the
walker restarts it, so a walk can produce arbitrarily long traces.

Branch outcomes:

- loop back edges follow their deterministic trip pattern
  (taken ``trips - 1`` times, then not taken once),
- other conditional branches are Bernoulli draws with the block's
  ``taken_bias``,
- indirect jumps/calls sample their target set by weight,
- returns pop the walker's call stack.

Everything is seeded, so the same (program, seed) pair always yields the
identical trace.
"""

from __future__ import annotations

import bisect
import itertools
import random
from dataclasses import dataclass
from typing import Iterator

from repro.cfg.model import BasicBlock, Program
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.trace.records import TraceRecord

__all__ = ["TraceWalker", "MAX_CALL_DEPTH"]

MAX_CALL_DEPTH = 128
"""Hard cap on dynamic call depth; exceeding it indicates a generator bug."""


@dataclass
class _CompiledBlock:
    """A basic block pre-flattened for the walker's hot loop."""

    pcs: tuple[int, ...]
    kinds: tuple[InstrKind, ...]
    term_target: int | None
    fallthrough: int | None
    taken_bias: float
    loop_trips: int | None
    indirect_targets: tuple[int, ...]
    indirect_cumweights: tuple[float, ...]


class TraceWalker:
    """Seeded interpreter producing the committed instruction stream."""

    def __init__(self, program: Program, seed: int = 0):
        self.program = program
        self.seed = seed
        self._rng = random.Random(seed)
        self._blocks = {
            block.start: self._compile(block)
            for function in program.functions
            for block in function.blocks
        }
        self._pc = program.entry
        self._stack: list[int] = []
        self._loop_counts: dict[int, int] = {}

    @staticmethod
    def _compile(block: BasicBlock) -> _CompiledBlock:
        term = block.terminator
        cumweights: tuple[float, ...] = ()
        if block.indirect_targets:
            cumweights = tuple(
                itertools.accumulate(block.indirect_weights))
        return _CompiledBlock(
            pcs=tuple(i.pc for i in block.instrs),
            kinds=tuple(i.kind for i in block.instrs),
            term_target=term.target if term is not None else None,
            fallthrough=block.fallthrough,
            taken_bias=block.taken_bias,
            loop_trips=block.loop_trips,
            indirect_targets=block.indirect_targets,
            indirect_cumweights=cumweights,
        )

    def records(self) -> Iterator[TraceRecord]:
        """Yield committed trace records forever (restarting main)."""
        rng = self._rng
        blocks = self._blocks
        while True:
            block = blocks.get(self._pc)
            if block is None or block.pcs[0] != self._pc:
                raise SimulationError(
                    f"walker jumped to {self._pc:#x}, which is not a block "
                    f"start")
            last = len(block.pcs) - 1
            for i, (pc, kind) in enumerate(zip(block.pcs, block.kinds)):
                if not kind.is_control:
                    yield TraceRecord(pc, kind, False,
                                      pc + INSTRUCTION_BYTES)
                    continue
                if i != last:
                    raise SimulationError(
                        f"control instruction mid-block at {pc:#x}")
                next_pc, taken = self._resolve(block, pc, kind, rng)
                yield TraceRecord(pc, kind, taken, next_pc)
                self._pc = next_pc
                break
            else:
                if block.fallthrough is None:
                    raise SimulationError(
                        f"block at {block.pcs[0]:#x} fell off the end")
                self._pc = block.fallthrough

    def walk(self, n: int) -> list[TraceRecord]:
        """Return the next ``n`` committed records."""
        return list(itertools.islice(self.records(), n))

    def _resolve(self, block: _CompiledBlock, pc: int, kind: InstrKind,
                 rng: random.Random) -> tuple[int, bool]:
        """Compute (next_pc, taken) for the terminator at ``pc``."""
        sequential = pc + INSTRUCTION_BYTES
        if kind == InstrKind.BRANCH_COND:
            taken = self._cond_outcome(block, pc, rng)
            if taken:
                return block.term_target, True
            return sequential, False
        if kind == InstrKind.JUMP_DIRECT:
            return block.term_target, True
        if kind == InstrKind.CALL:
            self._push(sequential)
            return block.term_target, True
        if kind == InstrKind.CALL_INDIRECT:
            self._push(sequential)
            return self._pick_indirect(block, rng), True
        if kind == InstrKind.JUMP_INDIRECT:
            return self._pick_indirect(block, rng), True
        if kind == InstrKind.RETURN:
            if self._stack:
                return self._stack.pop(), True
            return self.program.entry, True  # main returned: restart
        raise SimulationError(f"unhandled control kind {kind!r} at {pc:#x}")

    def _cond_outcome(self, block: _CompiledBlock, pc: int,
                      rng: random.Random) -> bool:
        trips = block.loop_trips
        if trips is not None:
            count = self._loop_counts.get(pc, 0) + 1
            if count < trips:
                self._loop_counts[pc] = count
                return True
            self._loop_counts[pc] = 0
            return False
        return rng.random() < block.taken_bias

    def _pick_indirect(self, block: _CompiledBlock,
                       rng: random.Random) -> int:
        index = bisect.bisect_left(block.indirect_cumweights,
                                   rng.random() *
                                   block.indirect_cumweights[-1])
        index = min(index, len(block.indirect_targets) - 1)
        return block.indirect_targets[index]

    def _push(self, return_pc: int) -> None:
        if len(self._stack) >= MAX_CALL_DEPTH:
            raise SimulationError(
                f"call depth exceeded {MAX_CALL_DEPTH}; the generator "
                f"produced an unbounded call chain")
        self._stack.append(return_pc)
