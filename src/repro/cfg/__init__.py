"""Synthetic program substrate: CFG model, generator, and trace walker."""

from repro.cfg.dot import function_to_dot, program_to_dot
from repro.cfg.generator import ProgramGenerator, generate_program
from repro.cfg.model import TEXT_BASE, BasicBlock, Function, Program
from repro.cfg.shape import ProgramShape
from repro.cfg.walker import MAX_CALL_DEPTH, TraceWalker

__all__ = [
    "TEXT_BASE",
    "BasicBlock",
    "Function",
    "Program",
    "ProgramShape",
    "ProgramGenerator",
    "generate_program",
    "TraceWalker",
    "function_to_dot",
    "program_to_dot",
    "MAX_CALL_DEPTH",
]
