"""Generation parameters for synthetic programs.

A :class:`ProgramShape` captures the structural knobs that determine how a
synthetic program stresses an instruction-fetch front end: static footprint,
branch density and bias, loop behaviour, call-graph shape, and the dispatch
fan-out that separates "client-like" programs (small, loopy working sets)
from "server-like" programs (wide dispatch loops over many handlers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["ProgramShape"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ProgramShape:
    """Structural parameters of one synthetic program.

    The defaults produce a mid-sized program with SPEC95-era
    characteristics: a control instruction roughly every 5 instructions,
    ~2/3 of conditional branches biased, short loops, and a call graph
    eight levels deep.
    """

    target_instrs: int = 16384
    n_functions: int = 64
    n_levels: int = 8
    block_body_mean: float = 4.0
    block_body_max: int = 24

    # Terminator mix for non-final blocks (must sum to <= 1.0; the
    # remainder of probability mass becomes plain fallthrough blocks).
    p_cond: float = 0.55
    p_jump: float = 0.06
    p_call: float = 0.16
    p_indirect_jump: float = 0.02
    p_early_return: float = 0.03

    # Conditional-branch behaviour.
    p_loop: float = 0.25
    loop_trip_mean: float = 6.0
    loop_trip_max: int = 64
    taken_bias_choices: tuple[float, ...] = (
        0.02, 0.05, 0.10, 0.30, 0.50, 0.70, 0.90, 0.95, 0.98)

    # Call-graph behaviour.
    p_call_indirect: float = 0.15
    call_zipf_s: float = 1.2
    indirect_fanout: int = 4

    # Dispatch loop in main (models a server event loop).
    dispatcher_fanout: int = 4
    dispatcher_zipf_s: float = 0.8
    dispatcher_trips: int = 4096

    # Body instruction mix (ALU / LOAD / STORE); normalized internally.
    body_mix: tuple[float, float, float] = (0.60, 0.25, 0.15)

    def __post_init__(self) -> None:
        _require(self.target_instrs >= 64, "target_instrs must be >= 64")
        _require(self.n_functions >= 2, "n_functions must be >= 2")
        _require(2 <= self.n_levels <= self.n_functions,
                 "n_levels must be in [2, n_functions]")
        _require(self.block_body_mean >= 1.0, "block_body_mean must be >= 1")
        _require(self.block_body_max >= 1, "block_body_max must be >= 1")
        total = (self.p_cond + self.p_jump + self.p_call +
                 self.p_indirect_jump + self.p_early_return)
        _require(0.0 < total <= 1.0,
                 f"terminator probabilities must sum to (0, 1], got {total}")
        for name in ("p_cond", "p_jump", "p_call", "p_indirect_jump",
                     "p_early_return", "p_loop", "p_call_indirect"):
            value = getattr(self, name)
            _require(0.0 <= value <= 1.0, f"{name} must be in [0, 1]")
        _require(self.loop_trip_mean >= 1.0, "loop_trip_mean must be >= 1")
        _require(self.loop_trip_max >= 2, "loop_trip_max must be >= 2")
        _require(bool(self.taken_bias_choices),
                 "taken_bias_choices must not be empty")
        _require(all(0.0 <= b <= 1.0 for b in self.taken_bias_choices),
                 "taken biases must be in [0, 1]")
        _require(self.call_zipf_s >= 0.0, "call_zipf_s must be >= 0")
        _require(self.indirect_fanout >= 1, "indirect_fanout must be >= 1")
        _require(self.dispatcher_fanout >= 1,
                 "dispatcher_fanout must be >= 1")
        _require(self.dispatcher_zipf_s >= 0.0,
                 "dispatcher_zipf_s must be >= 0")
        _require(self.dispatcher_trips >= 1, "dispatcher_trips must be >= 1")
        _require(len(self.body_mix) == 3 and all(w >= 0 for w in
                                                 self.body_mix)
                 and sum(self.body_mix) > 0,
                 "body_mix must be three non-negative weights")
