"""The Fetch Target Queue.

The FTQ is the paper's key decoupling structure: the branch-prediction unit
pushes predicted fetch blocks at its tail while the fetch engine consumes
the head.  Entries between head and tail describe the *future* fetch stream
— exactly the addresses the FDIP prefetch engine wants.

Each entry carries, besides the block's address range and predicted
successor, the bookkeeping the trace-driven simulator needs: which trace
records the block covers (for correct-path blocks), misprediction state,
and the prediction-unit checkpoint used to repair speculative state when
the block's terminal branch resolves as mispredicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bpred.ras import RasSnapshot
from repro.component import StatsComponent
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import StatGroup

__all__ = ["FTQEntry", "FetchTargetQueue"]


@dataclass(slots=True)
class FTQEntry:
    """One predicted fetch block in the FTQ."""

    seq: int                      # monotonically increasing id
    start: int                    # first instruction address
    end: int                      # one past the last instruction address
    predicted_next: int           # where the prediction unit went next
    wrong_path: bool = False
    # Correct-path bookkeeping (unused for wrong-path entries):
    first_index: int = -1         # trace index of the first record
    n_records: int = 0
    mispredict: bool = False
    true_next: int | None = None
    resume_cursor: int = -1       # trace index to resume at after squash
    # True terminal info (for state repair at resolution):
    terminal_pc: int | None = None
    terminal_kind: InstrKind | None = None
    terminal_taken: bool = False
    # Prediction-unit checkpoint captured before this block's speculative
    # updates (set only for mispredicted blocks):
    ckpt_history: int = 0
    ckpt_ras: RasSnapshot | None = None
    predicted_cond: bool = False  # a direction prediction was made
    # Consumption state:
    fetch_offset: int = 0         # bytes already fetched by the engine
    prefetch_scanned: bool = False

    @property
    def n_instrs(self) -> int:
        return (self.end - self.start) // INSTRUCTION_BYTES

    @property
    def fully_fetched(self) -> bool:
        return self.start + self.fetch_offset >= self.end

    @property
    def next_fetch_pc(self) -> int:
        return self.start + self.fetch_offset

    def __repr__(self) -> str:
        tag = "W" if self.wrong_path else ("M" if self.mispredict else " ")
        return (f"FTQEntry#{self.seq}[{tag}] {self.start:#x}..{self.end:#x} "
                f"-> {self.predicted_next:#x}")


class FetchTargetQueue(StatsComponent):
    """Bounded FIFO of :class:`FTQEntry`."""

    __slots__ = ("depth", "stats", "_entries")

    def __init__(self, depth: int):
        if depth < 1:
            raise SimulationError("FTQ depth must be >= 1")
        self.depth = depth
        self.stats = StatGroup("ftq")
        self._entries: list[FTQEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: FTQEntry) -> None:
        if self.full:
            raise SimulationError("push into a full FTQ")
        self._entries.append(entry)
        self.stats.bump("pushes")

    def head(self) -> FTQEntry | None:
        """The entry the fetch engine is consuming (None when empty)."""
        return self._entries[0] if self._entries else None

    def pop_head(self) -> FTQEntry:
        if not self._entries:
            raise SimulationError("pop from an empty FTQ")
        self.stats.bump("pops")
        return self._entries.pop(0)

    def prefetch_candidates(self, start: int = 1,
                            stop: int | None = None,
                            ) -> Iterator[FTQEntry]:
        """Entries at queue positions [start, stop) not yet scanned.

        Position 0 is the head (being demand-fetched); the paper's
        prefetch engine scans from position 1.  ``start``/``stop`` give
        FDIP's lookahead window: raising ``start`` skips blocks about to
        be fetched anyway, lowering ``stop`` avoids prefetching far
        (likelier-wrong-path) blocks.
        """
        window = self._entries[start:stop]
        for entry in window:
            if not entry.prefetch_scanned:
                yield entry

    def has_unscanned(self, start: int = 1,
                      stop: int | None = None) -> bool:
        """Whether :meth:`prefetch_candidates` would yield anything."""
        for entry in self._entries[start:stop]:
            if not entry.prefetch_scanned:
                return True
        return False

    def clear(self) -> int:
        """Squash: drop every entry; returns how many were dropped.

        By construction every entry still queued at squash time is
        wrong-path (the mispredicted block itself has necessarily been
        fully consumed for its terminal branch to have resolved); this is
        asserted because it guards the simulator's recovery logic.
        """
        for entry in self._entries:
            if not entry.wrong_path:
                raise SimulationError(
                    f"squash found a correct-path entry in the FTQ: "
                    f"{entry!r}")
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.bump("squashed_entries", dropped)
        return dropped

    def occupancy(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FTQEntry]:
        return iter(self._entries)
