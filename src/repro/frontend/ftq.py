"""The Fetch Target Queue.

The FTQ is the paper's key decoupling structure: the branch-prediction unit
pushes predicted fetch blocks at its tail while the fetch engine consumes
the head.  Entries between head and tail describe the *future* fetch stream
— exactly the addresses the FDIP prefetch engine wants.

Each entry carries, besides the block's address range and predicted
successor, the bookkeeping the trace-driven simulator needs: which trace
records the block covers (for correct-path blocks), misprediction state,
and the prediction-unit checkpoint used to repair speculative state when
the block's terminal branch resolves as mispredicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bpred.ras import RasSnapshot
from repro.component import StatsComponent
from repro.errors import SimulationError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import StatGroup

__all__ = ["FTQEntry", "FetchTargetQueue"]


@dataclass(slots=True)
class FTQEntry:
    """One predicted fetch block in the FTQ."""

    seq: int                      # monotonically increasing id
    start: int                    # first instruction address
    end: int                      # one past the last instruction address
    predicted_next: int           # where the prediction unit went next
    wrong_path: bool = False
    # Correct-path bookkeeping (unused for wrong-path entries):
    first_index: int = -1         # trace index of the first record
    n_records: int = 0
    mispredict: bool = False
    true_next: int | None = None
    resume_cursor: int = -1       # trace index to resume at after squash
    # True terminal info (for state repair at resolution):
    terminal_pc: int | None = None
    terminal_kind: InstrKind | None = None
    terminal_taken: bool = False
    # Prediction-unit checkpoint captured before this block's speculative
    # updates (set only for mispredicted blocks):
    ckpt_history: int = 0
    ckpt_ras: RasSnapshot | None = None
    predicted_cond: bool = False  # a direction prediction was made
    # Consumption state:
    fetch_offset: int = 0         # bytes already fetched by the engine
    prefetch_scanned: bool = False

    @property
    def n_instrs(self) -> int:
        return (self.end - self.start) // INSTRUCTION_BYTES

    @property
    def fully_fetched(self) -> bool:
        return self.start + self.fetch_offset >= self.end

    @property
    def next_fetch_pc(self) -> int:
        return self.start + self.fetch_offset

    def __repr__(self) -> str:
        tag = "W" if self.wrong_path else ("M" if self.mispredict else " ")
        return (f"FTQEntry#{self.seq}[{tag}] {self.start:#x}..{self.end:#x} "
                f"-> {self.predicted_next:#x}")

    def to_state(self) -> dict:
        """JSON-compatible snapshot of this entry (for checkpoints)."""
        return {
            "seq": self.seq,
            "start": self.start,
            "end": self.end,
            "predicted_next": self.predicted_next,
            "wrong_path": self.wrong_path,
            "first_index": self.first_index,
            "n_records": self.n_records,
            "mispredict": self.mispredict,
            "true_next": self.true_next,
            "resume_cursor": self.resume_cursor,
            "terminal_pc": self.terminal_pc,
            "terminal_kind": (int(self.terminal_kind)
                              if self.terminal_kind is not None else None),
            "terminal_taken": self.terminal_taken,
            "ckpt_history": self.ckpt_history,
            "ckpt_ras": (
                {"entries": list(self.ckpt_ras.entries),
                 "top": self.ckpt_ras.top, "count": self.ckpt_ras.count}
                if self.ckpt_ras is not None else None),
            "predicted_cond": self.predicted_cond,
            "fetch_offset": self.fetch_offset,
            "prefetch_scanned": self.prefetch_scanned,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FTQEntry":
        """Rebuild an entry captured by :meth:`to_state`."""
        kind = state["terminal_kind"]
        ras = state["ckpt_ras"]
        return cls(
            seq=int(state["seq"]),
            start=int(state["start"]),
            end=int(state["end"]),
            predicted_next=int(state["predicted_next"]),
            wrong_path=bool(state["wrong_path"]),
            first_index=int(state["first_index"]),
            n_records=int(state["n_records"]),
            mispredict=bool(state["mispredict"]),
            true_next=(int(state["true_next"])
                       if state["true_next"] is not None else None),
            resume_cursor=int(state["resume_cursor"]),
            terminal_pc=(int(state["terminal_pc"])
                         if state["terminal_pc"] is not None else None),
            terminal_kind=InstrKind(kind) if kind is not None else None,
            terminal_taken=bool(state["terminal_taken"]),
            ckpt_history=int(state["ckpt_history"]),
            ckpt_ras=(RasSnapshot(tuple(int(pc) for pc in ras["entries"]),
                                  int(ras["top"]), int(ras["count"]))
                      if ras is not None else None),
            predicted_cond=bool(state["predicted_cond"]),
            fetch_offset=int(state["fetch_offset"]),
            prefetch_scanned=bool(state["prefetch_scanned"]),
        )


class FetchTargetQueue(StatsComponent):
    """Bounded FIFO of :class:`FTQEntry`."""

    __slots__ = ("depth", "stats", "_entries")

    def __init__(self, depth: int):
        if depth < 1:
            raise SimulationError("FTQ depth must be >= 1")
        self.depth = depth
        self.stats = StatGroup("ftq")
        self._entries: list[FTQEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: FTQEntry) -> None:
        if self.full:
            raise SimulationError("push into a full FTQ")
        self._entries.append(entry)
        self.stats.bump("pushes")

    def head(self) -> FTQEntry | None:
        """The entry the fetch engine is consuming (None when empty)."""
        return self._entries[0] if self._entries else None

    def pop_head(self) -> FTQEntry:
        if not self._entries:
            raise SimulationError("pop from an empty FTQ")
        self.stats.bump("pops")
        return self._entries.pop(0)

    def prefetch_candidates(self, start: int = 1,
                            stop: int | None = None,
                            ) -> Iterator[FTQEntry]:
        """Entries at queue positions [start, stop) not yet scanned.

        Position 0 is the head (being demand-fetched); the paper's
        prefetch engine scans from position 1.  ``start``/``stop`` give
        FDIP's lookahead window: raising ``start`` skips blocks about to
        be fetched anyway, lowering ``stop`` avoids prefetching far
        (likelier-wrong-path) blocks.
        """
        entries = self._entries
        stop = len(entries) if stop is None else min(stop, len(entries))
        for index in range(start, stop):
            entry = entries[index]
            if not entry.prefetch_scanned:
                yield entry

    def has_unscanned(self, start: int = 1,
                      stop: int | None = None) -> bool:
        """Whether :meth:`prefetch_candidates` would yield anything.

        Index-based (no slice allocation): this sits on the event
        engine's per-cycle quiescence gate.
        """
        entries = self._entries
        stop = len(entries) if stop is None else min(stop, len(entries))
        for index in range(start, stop):
            if not entries[index].prefetch_scanned:
                return True
        return False

    def clear(self) -> int:
        """Squash: drop every entry; returns how many were dropped.

        By construction every entry still queued at squash time is
        wrong-path (the mispredicted block itself has necessarily been
        fully consumed for its terminal branch to have resolved); this is
        asserted because it guards the simulator's recovery logic.
        """
        for entry in self._entries:
            if not entry.wrong_path:
                raise SimulationError(
                    f"squash found a correct-path entry in the FTQ: "
                    f"{entry!r}")
        dropped = len(self._entries)
        self._entries.clear()
        self.stats.bump("squashed_entries", dropped)
        return dropped

    def occupancy(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[FTQEntry]:
        return iter(self._entries)

    def _extra_state(self) -> dict:
        return {"entries": [entry.to_state() for entry in self._entries]}

    def _load_extra_state(self, state: dict) -> None:
        self._entries = [FTQEntry.from_state(payload)
                         for payload in state["entries"]]

    def entry_by_seq(self, seq: int) -> FTQEntry | None:
        """The queued entry with sequence id ``seq`` (None when absent).

        Used by checkpoint restore to re-establish identity aliases:
        the prediction unit's pending-mispredict entry and the
        simulator's resolve entry must be the *same object* as the one
        queued here.
        """
        for entry in self._entries:
            if entry.seq == seq:
                return entry
        return None
