"""The branch-prediction unit of the decoupled front end.

Produces one predicted fetch block per cycle into the FTQ, exactly as the
paper's front end does: query the FTB at the current fetch target; on a hit
the entry delimits the block and the hybrid predictor / RAS / stored target
provide the successor; on a miss the unit emits a maximum-length sequential
block.

Because the simulator is trace driven, the unit simultaneously *validates*
each correct-path prediction against the committed trace:

- a block whose predicted successor matches the trace is correct-path and
  carries its trace records into the FTQ;
- a divergence marks the block mispredicted.  The unit checkpoints its
  speculative state (global history, RAS) in the entry, trains the FTB and
  direction predictor with the true outcome, and then — if wrong-path
  modeling is enabled — keeps producing fetch blocks down the *predicted*
  path purely from the FTB (no trace), which is what pollutes caches and
  wastes bus bandwidth in real hardware.  When the backend resolves the
  branch, :meth:`on_resolve` restores the checkpoint, applies the true
  outcome, and resumes at the correct trace position.

At most one unresolved misprediction exists at a time: every block the
unit produces after a misprediction is wrong-path until resolution, and
wrong-path blocks are never validated.
"""

from __future__ import annotations

from repro.bpred import DirectionPredictor, ReturnAddressStack
from repro.component import StatsComponent
from repro.config import FrontEndConfig
from repro.errors import SimulationError
from repro.ftb import FetchTargetBuffer, FTBEntry
from repro.frontend.ftq import FetchTargetQueue, FTQEntry
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.stats import StatGroup
from repro.trace import Trace

__all__ = ["PredictUnit"]


class PredictUnit(StatsComponent):
    """Decoupled branch-prediction unit, one fetch block per cycle.

    As a telemetry component the unit is composite: the direction
    predictor and the return address stack report as its children.
    """

    def sub_components(self):
        return (self.predictor, self.ras)

    def __init__(self, trace: Trace, ftb: FetchTargetBuffer,
                 predictor: DirectionPredictor, ras: ReturnAddressStack,
                 config: FrontEndConfig):
        self.trace = trace
        self.ftb = ftb
        self.predictor = predictor
        self.ras = ras
        self.config = config
        self.stats = StatGroup("predict")
        self._records = trace.records
        self._cursor = 0                     # next unpredicted trace index
        self._history = 0
        self._history_mask = (1 << config.predictor.history_bits) - 1
        self._block_bytes = config.max_fetch_block * INSTRUCTION_BYTES
        self._seq = 0
        self._pending_mispredict: FTQEntry | None = None
        self._wrong_pc = 0
        self._ftb_wait_until: int | None = None

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every trace record has been predicted and validated."""
        return (self._cursor >= len(self._records)
                and self._pending_mispredict is None)

    @property
    def awaiting_resolution(self) -> bool:
        return self._pending_mispredict is not None

    @property
    def ftb_wait_until(self) -> int | None:
        """Cycle a pending L2-FTB promotion completes (None when idle)."""
        return self._ftb_wait_until

    def next_wake_cycle(self, now: int) -> int | None:
        """Wake contract: a pending L2-FTB promotion is the only
        self-scheduled wake; FTQ-full, unresolved mispredictions, and
        trace exhaustion clear on external input (or never)."""
        return self._ftb_wait_until

    @property
    def out_of_records(self) -> bool:
        """Every correct-path trace record has been consumed."""
        return self._cursor >= len(self._records)

    def tick(self, now: int, ftq: FetchTargetQueue) -> FTQEntry | None:
        """Produce at most one fetch block into ``ftq``."""
        if ftq.full:
            self.stats.bump("ftq_full_stalls")
            return None
        if self._ftb_wait_until is not None:
            if now < self._ftb_wait_until:
                self.stats.bump("ftb_l2_stall_cycles")
                return None
            self._ftb_wait_until = None

        wrong_path = self._pending_mispredict is not None
        if wrong_path:
            if not self.config.model_wrong_path:
                self.stats.bump("mispredict_stall_cycles")
                return None
            start = self._wrong_pc
        elif self._cursor >= len(self._records):
            return None
        else:
            start = self._records[self._cursor].pc

        level, ftb_entry = self.ftb.probe(start)
        if level == "l2":
            # Two-level FTB: the entry was promoted but using it costs
            # the L2 access latency; stall prediction until then.
            latency = self.ftb.l2_latency
            self._ftb_wait_until = now + latency
            self.stats.bump("ftb_l2_promotions")
            return None

        if wrong_path:
            entry = self._produce_wrong_block(ftb_entry)
        else:
            entry = self._produce_correct_block(ftb_entry)
        ftq.push(entry)
        self.stats.bump("blocks_produced")
        if entry.wrong_path:
            self.stats.bump("wrong_path_blocks")
        return entry

    def on_resolve(self, entry: FTQEntry) -> None:
        """The mispredicted terminal of ``entry`` resolved: repair state."""
        if self._pending_mispredict is not entry:
            raise SimulationError(
                "resolved a block that is not the pending misprediction")
        if entry.ckpt_ras is None:
            raise SimulationError("mispredicted block has no RAS checkpoint")
        self._history = entry.ckpt_history
        self.ras.restore(entry.ckpt_ras)
        kind = entry.terminal_kind
        if kind is not None:
            if kind == InstrKind.BRANCH_COND:
                self._push_history(entry.terminal_taken)
            elif kind.is_call:
                self.ras.push(entry.terminal_pc + INSTRUCTION_BYTES)
            elif kind.is_return:
                self.ras.pop()
        self._cursor = entry.resume_cursor
        self._pending_mispredict = None
        self._ftb_wait_until = None   # abandon any wrong-path L2 lookup
        self.stats.bump("resolutions")

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    @property
    def pending_mispredict(self) -> FTQEntry | None:
        """The unresolved mispredicted block (None when on-path)."""
        return self._pending_mispredict

    def _extra_state(self) -> dict:
        return {
            "cursor": self._cursor,
            "history": self._history,
            "seq": self._seq,
            "pending_mispredict": (self._pending_mispredict.to_state()
                                   if self._pending_mispredict is not None
                                   else None),
            "wrong_pc": self._wrong_pc,
            "ftb_wait_until": self._ftb_wait_until,
        }

    def _load_extra_state(self, state: dict) -> None:
        self._cursor = int(state["cursor"])
        self._history = int(state["history"])
        self._seq = int(state["seq"])
        pending = state["pending_mispredict"]
        self._pending_mispredict = (FTQEntry.from_state(pending)
                                    if pending is not None else None)
        self._wrong_pc = int(state["wrong_pc"])
        wait = state["ftb_wait_until"]
        self._ftb_wait_until = int(wait) if wait is not None else None

    def relink_pending(self, ftq: FetchTargetQueue) -> None:
        """Re-establish the pending entry's identity with its FTQ twin.

        :meth:`on_resolve` enforces *object identity* between the
        resolved entry and the pending misprediction; after a restore
        the deserialized pending entry must therefore be replaced by
        the equal entry still queued in the FTQ (when it has not been
        popped by the fetch engine yet).
        """
        if self._pending_mispredict is not None:
            queued = ftq.entry_by_seq(self._pending_mispredict.seq)
            if queued is not None:
                self._pending_mispredict = queued

    # ------------------------------------------------------------------
    # Correct-path production and validation
    # ------------------------------------------------------------------

    def _produce_correct_block(self, ftb_entry: FTBEntry | None,
                               ) -> FTQEntry:
        records = self._records
        cursor = self._cursor
        start = records[cursor].pc

        ckpt_history = self._history
        ckpt_ras = self.ras.snapshot()

        entry, end, predicted_next, pred_taken = self._consult_ftb(
            start, ftb_entry, oracle_index=cursor)
        predicted_cond = (entry is not None
                          and entry.kind == InstrKind.BRANCH_COND)

        # Walk the committed trace against the prediction.
        j = cursor
        last_index = len(records) - 1
        truncated = False
        while True:
            record = records[j]
            if record.next_pc != record.pc + INSTRUCTION_BYTES:
                break  # redirecting control: the true block ends here
            if record.pc == end - INSTRUCTION_BYTES:
                break  # reached the predicted boundary sequentially
            if j == last_index:
                truncated = True
                break
            j += 1
        terminal = records[j]
        n_records = j - cursor + 1

        if truncated:
            true_next = None
            mispredict = False
            block_end = terminal.pc + INSTRUCTION_BYTES
        elif terminal.redirects:
            true_next = terminal.next_pc
            block_end = terminal.pc + INSTRUCTION_BYTES
            correct = (entry is not None
                       and terminal.pc == end - INSTRUCTION_BYTES
                       and predicted_next == true_next)
            mispredict = not correct
        else:
            true_next = end
            block_end = end
            mispredict = predicted_next != end

        ftq_entry = FTQEntry(
            seq=self._next_seq(),
            start=start,
            end=block_end,
            predicted_next=predicted_next,
            first_index=cursor,
            n_records=n_records,
            mispredict=mispredict,
            true_next=true_next,
            resume_cursor=j + 1,
            terminal_pc=terminal.pc,
            terminal_kind=terminal.kind if terminal.kind.is_control
            else None,
            terminal_taken=terminal.taken,
        )

        self._train(entry, start, terminal, ckpt_history, mispredict,
                    predicted_cond, pred_taken)
        self.stats.histogram("fetch_block_instrs").observe(n_records)

        if mispredict:
            ftq_entry.ckpt_history = ckpt_history
            ftq_entry.ckpt_ras = ckpt_ras
            ftq_entry.predicted_cond = predicted_cond
            self._pending_mispredict = ftq_entry
            self._wrong_pc = predicted_next
            self.stats.bump("mispredicts")
            self._classify_mispredict(entry, terminal, end)
        else:
            self._cursor = j + 1

        return ftq_entry

    def _consult_ftb(
            self, start: int, entry: FTBEntry | None,
            oracle_index: int | None = None,
    ) -> tuple[FTBEntry | None, int, int, bool]:
        """Apply predictors + speculative RAS/history updates to a probed
        FTB ``entry`` (None on FTB miss).

        ``oracle_index`` is the trace cursor for correct-path production;
        with ``perfect_direction`` enabled it lets the unit read the true
        outcome of the block's terminating conditional branch.  Returns
        (ftb_entry, predicted_end, predicted_next, pred_taken).
        """
        if entry is None:
            end = start + self._block_bytes
            return None, end, end, False

        end = entry.fallthrough
        kind = entry.kind
        pred_taken = False
        if kind == InstrKind.BRANCH_COND:
            pred_taken = self._predict_direction(entry, start, oracle_index)
            predicted_next = entry.target if pred_taken else end
            self._push_history(pred_taken)
        elif kind.is_return:
            popped = self.ras.pop()
            predicted_next = popped if popped is not None else end
        elif kind.is_call:
            self.ras.push(end)
            predicted_next = entry.target if entry.target is not None else end
        else:
            predicted_next = entry.target if entry.target is not None else end
        return entry, end, predicted_next, pred_taken

    def _predict_direction(self, entry: FTBEntry, start: int,
                           oracle_index: int | None) -> bool:
        """Hybrid predictor, or the true outcome in perfect mode."""
        if self.config.perfect_direction and oracle_index is not None:
            offset = (entry.terminator_pc - start) // INSTRUCTION_BYTES
            index = oracle_index + offset
            if index < len(self._records):
                record = self._records[index]
                if record.pc == entry.terminator_pc:
                    return record.taken
        return self.predictor.predict(entry.terminator_pc, self._history)

    def _train(self, entry: FTBEntry | None, start: int, terminal,
               ckpt_history: int, mispredict: bool, predicted_cond: bool,
               pred_taken: bool) -> None:
        """Train FTB and direction predictor with the true outcome."""
        kind = terminal.kind
        terminal_predicted = (entry is not None and
                              terminal.pc == entry.terminator_pc)

        if kind == InstrKind.BRANCH_COND:
            self.predictor.update(terminal.pc, ckpt_history, terminal.taken)
            if terminal_predicted and predicted_cond:
                self.predictor.record_outcome(pred_taken == terminal.taken)
            if not mispredict:
                # Correct path: speculative history already holds the
                # (correct) predicted bit when a prediction was made;
                # otherwise push the true outcome now.
                if not (terminal_predicted and predicted_cond):
                    self._push_history(terminal.taken)

        if mispredict and terminal.redirects:
            target = None if kind.is_return else terminal.next_pc
            self.ftb.install(FTBEntry(
                start=start,
                fallthrough=terminal.pc + INSTRUCTION_BYTES,
                target=target,
                kind=kind,
            ))

    def _classify_mispredict(self, entry: FTBEntry | None, terminal,
                             end: int) -> None:
        kind = terminal.kind
        if entry is None:
            self.stats.bump("mispredict_ftb_miss")
        elif terminal.pc != end - INSTRUCTION_BYTES:
            self.stats.bump("mispredict_embedded_branch")
        elif kind == InstrKind.BRANCH_COND:
            self.stats.bump("mispredict_direction")
        elif kind.is_return:
            self.stats.bump("mispredict_return")
        elif kind.is_indirect:
            self.stats.bump("mispredict_indirect_target")
        else:
            self.stats.bump("mispredict_other")

    # ------------------------------------------------------------------
    # Wrong-path production
    # ------------------------------------------------------------------

    def _produce_wrong_block(self, ftb_entry: FTBEntry | None,
                             ) -> FTQEntry:
        start = self._wrong_pc
        entry, end, predicted_next, _ = self._consult_ftb(start, ftb_entry)
        self._wrong_pc = predicted_next
        return FTQEntry(
            seq=self._next_seq(),
            start=start,
            end=end,
            predicted_next=predicted_next,
            wrong_path=True,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _push_history(self, taken: bool) -> None:
        self._history = ((self._history << 1) | int(taken)) \
            & self._history_mask

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq
