"""The decoupled front end: FTQ, prediction unit, fetch engine."""

from repro.frontend.fetch_engine import FetchEngine
from repro.frontend.ftq import FetchTargetQueue, FTQEntry
from repro.frontend.predict_unit import PredictUnit

__all__ = [
    "FetchTargetQueue",
    "FTQEntry",
    "PredictUnit",
    "FetchEngine",
]
