"""The fetch engine: consumes the FTQ head and drives the L1-I.

One demand access per cycle: up to ``fetch_width`` instructions are
delivered from a single cache block of the current fetch block.  A miss
blocks the engine until the fill returns (prefetches keep flowing in the
background — that is the whole point of the decoupled design).

Wrong-path entries are fetched with full memory-system fidelity (they
occupy the bus, pollute caches, trigger prefetcher heuristics) but their
instructions are discarded rather than delivered to the backend.
"""

from __future__ import annotations

from typing import Callable

from repro.component import StatsComponent
from repro.config import CoreConfig
from repro.cpu.backend import Backend
from repro.errors import SimulationError
from repro.frontend.ftq import FetchTargetQueue, FTQEntry
from repro.isa import INSTRUCTION_BYTES
from repro.memory import MemorySystem, RETRY
from repro.prefetch.base import Prefetcher
from repro.stats import StatGroup
from repro.trace import Trace

__all__ = ["FetchEngine"]


class FetchEngine(StatsComponent):
    """In-order instruction fetch from the FTQ head."""

    def __init__(self, trace: Trace, memory: MemorySystem,
                 ftq: FetchTargetQueue, backend: Backend,
                 prefetcher: Prefetcher, core: CoreConfig,
                 on_terminal_delivered: Callable[[FTQEntry, int], None]):
        self.trace = trace
        self.memory = memory
        self.ftq = ftq
        self.backend = backend
        self.prefetcher = prefetcher
        self.core = core
        self.stats = StatGroup("fetch")
        self._on_terminal_delivered = on_terminal_delivered
        self._block_bytes = memory.block_bytes
        self._waiting_until: int | None = None

    # ------------------------------------------------------------------

    @property
    def stalled_on_miss(self) -> bool:
        return self._waiting_until is not None

    @property
    def waiting_until(self) -> int | None:
        """Cycle the pending demand fill lands (None when not stalled)."""
        return self._waiting_until

    def next_wake_cycle(self, now: int) -> int | None:
        """Wake contract: the pending demand fill is the only
        self-scheduled wake; every other fetch stall (empty FTQ, full
        backend window) clears on external input only."""
        return self._waiting_until

    def tick(self, now: int) -> bool:
        """Perform this cycle's fetch work.

        Up to ``fetch_accesses_per_cycle`` demand accesses (a banked
        cache can fetch through a block boundary or across short fetch
        blocks in one cycle), delivering at most ``fetch_width``
        instructions total.  Returns whether any instructions were
        delivered — the fast-path engine uses a False return as its
        cheap pre-filter before running the exact skip analysis.
        """
        if self._waiting_until is not None:
            if now < self._waiting_until:
                self.stats.bump("miss_stall_cycles")
                return False
            self._waiting_until = None

        budget = self.core.fetch_width
        delivered_any = False
        wrong_any = False
        for access in range(self.core.fetch_accesses_per_cycle):
            entry = self.ftq.head()
            if entry is None:
                if access == 0:
                    self.stats.bump("ftq_empty_cycles")
                return delivered_any
            needs_slots = (not entry.wrong_path
                           or self.core.wrong_path_in_window)
            if needs_slots and self.backend.free_slots <= 0:
                if access == 0:
                    self.stats.bump("window_stall_cycles")
                return delivered_any
            if budget <= 0:
                return delivered_any

            addr = entry.next_fetch_pc
            bid = addr // self._block_bytes
            result = self.memory.demand_fetch(bid, now)
            self.prefetcher.on_demand(bid, result.outcome, now)

            if result.outcome == RETRY:
                if access == 0:
                    self.stats.bump("mshr_stall_cycles")
                return delivered_any
            if not result.is_hit:
                self._waiting_until = result.ready_cycle
                self.stats.bump("demand_misses")
                if access == 0:
                    self.stats.bump("miss_stall_cycles")
                return delivered_any
            budget -= self._deliver(entry, addr, bid, now, budget)
            if not delivered_any:
                self.stats.bump("active_cycles")
                delivered_any = True
            if entry.wrong_path and not wrong_any:
                self.stats.bump("wrong_path_cycles")
                wrong_any = True
        return delivered_any

    # ------------------------------------------------------------------

    def _deliver(self, entry: FTQEntry, addr: int, bid: int,
                 now: int, budget: int) -> int:
        """Deliver instructions from the hit cache block.

        Returns how many instructions were consumed from the cycle's
        ``budget``.
        """
        line_end = (bid + 1) * self._block_bytes
        width_end = addr + budget * INSTRUCTION_BYTES
        deliver_end = min(entry.end, line_end, width_end)
        n = (deliver_end - addr) // INSTRUCTION_BYTES
        if n <= 0:
            raise SimulationError(
                f"fetch delivered no instructions at {addr:#x} "
                f"(entry {entry!r})")

        if entry.wrong_path:
            if self.core.wrong_path_in_window:
                n = min(n, self.backend.free_slots)
                self.backend.deliver_wrong_path(n)
            self.stats.bump("wrong_path_instrs", n)
        else:
            n = min(n, self.backend.free_slots)
            first = entry.first_index + entry.fetch_offset \
                // INSTRUCTION_BYTES
            records = self.trace.records[first:first + n]
            self.backend.deliver(records, now)
            self.stats.bump("instrs_delivered", n)

        entry.fetch_offset += n * INSTRUCTION_BYTES
        if entry.fully_fetched:
            popped = self.ftq.pop_head()
            if popped is not entry:
                raise SimulationError("FTQ head changed mid-fetch")
            if popped.mispredict and not popped.wrong_path:
                resolve_at = (now + self.core.pipeline_depth
                              + self.core.branch_resolve_latency)
                self._on_terminal_delivered(popped, resolve_at)
        return n

    # ------------------------------------------------------------------

    def squash(self) -> None:
        """Pipeline flush: abandon any in-progress (wrong-path) fetch."""
        self._waiting_until = None

    def _extra_state(self) -> dict:
        return {"waiting_until": self._waiting_until}

    def _load_extra_state(self, state: dict) -> None:
        waiting = state["waiting_until"]
        self._waiting_until = int(waiting) if waiting is not None else None
