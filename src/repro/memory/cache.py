"""Set-associative cache contents with true-LRU replacement.

This models cache *contents* only (hit/miss and replacement); latency and
bandwidth live in :mod:`repro.memory.hierarchy` and :mod:`repro.memory.bus`.
Two lookup flavours matter to the paper:

- :meth:`lookup` — a demand access: updates LRU recency.
- :meth:`probe` — a tag-array probe (what cache probe filtering performs
  with idle tag ports): answers hit/miss without disturbing recency.
"""

from __future__ import annotations

from repro.component import StatsComponent
from repro.config import CacheGeometry
from repro.stats import StatGroup

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache(StatsComponent):
    """LRU set-associative cache keyed by block id."""

    # "name" stays a slot (shadowing the StatsComponent property) so the
    # hot lookup path keeps its direct attribute access.
    __slots__ = ("geometry", "name", "stats", "_num_sets", "_assoc",
                 "_sets")

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self.stats = StatGroup(name)
        self._num_sets = geometry.num_sets
        self._assoc = geometry.assoc
        # Per-set list of block ids, most-recently-used last.
        self._sets: list[list[int]] = [[] for _ in range(self._num_sets)]

    def _set_for(self, bid: int) -> list[int]:
        return self._sets[bid & (self._num_sets - 1)]

    def lookup(self, bid: int) -> bool:
        """Demand access: hit/miss, promoting the block to MRU on hit."""
        entry_set = self._set_for(bid)
        if bid in entry_set:
            if entry_set[-1] != bid:
                entry_set.remove(bid)
                entry_set.append(bid)
            self.stats.bump("hits")
            return True
        self.stats.bump("misses")
        return False

    def probe(self, bid: int) -> bool:
        """Tag probe: hit/miss without touching replacement state."""
        self.stats.bump("probes")
        return bid in self._set_for(bid)

    def contains(self, bid: int) -> bool:
        """Like :meth:`probe` but without statistics (for assertions)."""
        return bid in self._set_for(bid)

    def fill(self, bid: int) -> int | None:
        """Insert ``bid`` as MRU; return the evicted block id, if any.

        Filling a block that is already present just refreshes its
        recency (no duplicate entries, no eviction).
        """
        entry_set = self._set_for(bid)
        if bid in entry_set:
            if entry_set[-1] != bid:
                entry_set.remove(bid)
                entry_set.append(bid)
            return None
        self.stats.bump("fills")
        victim = None
        if len(entry_set) >= self._assoc:
            victim = entry_set.pop(0)
            self.stats.bump("evictions")
        entry_set.append(bid)
        return victim

    def invalidate(self, bid: int) -> bool:
        """Remove ``bid`` if present; True when something was removed."""
        entry_set = self._set_for(bid)
        if bid in entry_set:
            entry_set.remove(bid)
            self.stats.bump("invalidations")
            return True
        return False

    def resident_blocks(self) -> int:
        """Number of valid blocks currently held."""
        return sum(len(entry_set) for entry_set in self._sets)

    def flush(self) -> None:
        """Drop all contents (statistics are preserved)."""
        for entry_set in self._sets:
            entry_set.clear()

    def _extra_state(self) -> dict:
        # Per-set block lists, LRU first, so replacement is preserved.
        return {"sets": [list(entry_set) for entry_set in self._sets]}

    def _load_extra_state(self, state: dict) -> None:
        sets = state["sets"]
        if len(sets) != self._num_sets:
            raise ValueError(
                f"cache snapshot has {len(sets)} sets, geometry has "
                f"{self._num_sets}")
        self._sets = [[int(bid) for bid in entry_set]
                      for entry_set in sets]

    def __repr__(self) -> str:
        return (f"SetAssociativeCache({self.name!r}, "
                f"{self.geometry.size_bytes // 1024}KB, "
                f"{self._num_sets}x{self._assoc})")
