"""The memory system seen by the fetch engine and the prefetchers.

Composition: an L1 instruction cache with a small number of tag ports, a
unified L2 reached over a shared bus (demand priority), main memory behind
the L2, an MSHR file providing merge semantics, and an optional *sidecar*
— prefetcher-owned storage (the FDIP/NLP prefetch buffer, or stream
buffers) probed in parallel with the L1-I on every demand access.

Timing rules:

- L1-I hit (or sidecar hit, which promotes the block into the L1-I):
  ``icache_hit_latency``.
- L1-I miss: one bus transfer (queued behind in-flight transfers) plus the
  L2 hit latency, or the memory latency on an L2 miss.  Completed memory
  fills also install the block in the L2.
- Prefetches use the same path but may only start when the bus is idle
  *and* an MSHR is free; they fill the sidecar (unless a demand access
  merged into them while in flight, in which case the fill goes to the
  L1-I and is counted as a *late prefetch*).
- The L1-I tag array has ``icache_tag_ports`` ports per cycle.  Demand
  accesses consume ports first; cache probe filtering may use whatever is
  left via :meth:`cpf_probe`.
"""

from __future__ import annotations

import heapq
from typing import Protocol

from repro.component import StatsComponent
from repro.config import MemoryConfig
from repro.errors import SimulationError
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.mshr import MshrEntry, MshrFile
from repro.stats import StatGroup

__all__ = ["MemorySystem", "Sidecar", "DemandResult",
           "HIT_L1", "HIT_SIDECAR", "MERGED", "MISS", "RETRY"]

HIT_L1 = "l1"
HIT_SIDECAR = "sidecar"
MERGED = "merged"
MISS = "miss"
RETRY = "retry"


class Sidecar(Protocol):
    """Prefetcher-owned storage probed in parallel with the L1-I."""

    def probe_and_claim(self, bid: int, now: int) -> bool:
        """Demand probe at cycle ``now``; on hit the block leaves the
        sidecar (promoted into the L1-I)."""

    def fill(self, bid: int, entry: MshrEntry) -> None:
        """A prefetch issued by the owner completed; store the block."""

    def fill_merged(self, bid: int) -> None:
        """A prefetch the owner issued completed, but a demand access
        merged into it in flight; the block went to the L1-I instead."""


class DemandResult:
    """Outcome of one demand fetch access (plain value object)."""

    __slots__ = ("outcome", "ready_cycle")

    def __init__(self, outcome: str, ready_cycle: int | None):
        self.outcome = outcome
        self.ready_cycle = ready_cycle

    @property
    def is_hit(self) -> bool:
        return self.outcome in (HIT_L1, HIT_SIDECAR)

    def __repr__(self) -> str:
        return f"DemandResult({self.outcome}, ready={self.ready_cycle})"


class MemorySystem(StatsComponent):
    """L1-I + L2 + memory + bus + MSHRs + sidecar, cycle-accurate.

    The hierarchy reports as one telemetry subtree: the ``mem`` node
    with the caches, bus, and MSHR file as children.  (The sidecar is
    prefetcher-owned and reports under the prefetcher's node.)
    """

    def sub_components(self):
        return (self.l1i, self.l2, self.bus, self.mshrs)

    def __init__(self, config: MemoryConfig, sidecar: Sidecar | None = None,
                 prefetch_fill_to_l1: bool = False):
        self.config = config
        # Ablation: route completed prefetches straight into the L1-I
        # instead of the prefetch buffer (the paper's argument for the
        # buffer is exactly the pollution this causes).
        self.prefetch_fill_to_l1 = prefetch_fill_to_l1
        self.block_bytes = config.icache.block_bytes
        self.l1i = SetAssociativeCache(config.icache, name="l1i")
        self.l2 = SetAssociativeCache(config.l2, name="l2")
        self.bus = Bus(config.bus_transfer_cycles)
        self.mshrs = MshrFile(config.mshr_entries)
        self.sidecar = sidecar
        self.stats = StatGroup("mem")
        self._events: list[tuple[int, int]] = []   # (ready_cycle, bid) heap
        self._ports_used = 0
        self._now = 0

    # ------------------------------------------------------------------
    # Cycle bookkeeping
    # ------------------------------------------------------------------

    def begin_cycle(self, now: int) -> None:
        """Advance to ``now``: complete due fills, reset the port budget."""
        self._now = now
        self._ports_used = 0
        while self._events and self._events[0][0] <= now:
            _, bid = heapq.heappop(self._events)
            self._complete_fill(bid)

    def _complete_fill(self, bid: int) -> None:
        entry = self.mshrs.release(bid)
        if entry.is_prefetch and not entry.demand_merged:
            if self.prefetch_fill_to_l1:
                self.l1i.fill(bid)
                self.stats.bump("prefetch_fills_to_l1")
                return
            if self.sidecar is None:
                raise SimulationError(
                    "prefetch fill completed with no sidecar attached")
            self.sidecar.fill(bid, entry)
            return
        self.l1i.fill(bid)
        if entry.is_prefetch:
            self.stats.bump("late_prefetch_fills")
            if self.sidecar is not None:
                self.sidecar.fill_merged(bid)

    @property
    def next_event_cycle(self) -> int | None:
        """Earliest pending fill-completion cycle (None when none)."""
        return self._events[0][0] if self._events else None

    def next_wake_cycle(self, now: int) -> int | None:
        """Wake contract: the memory system self-schedules exactly its
        pending fill completions (the per-cycle tag-port budget reset
        is input-free bookkeeping the engines inline)."""
        return self._events[0][0] if self._events else None

    def drain_in_flight(self) -> None:
        """Complete every outstanding fill immediately (end of simulation)."""
        while self._events:
            _, bid = heapq.heappop(self._events)
            self._complete_fill(bid)

    # ------------------------------------------------------------------
    # Demand path (fetch engine)
    # ------------------------------------------------------------------

    def demand_fetch(self, bid: int, now: int) -> DemandResult:
        """One demand access to block ``bid`` at cycle ``now``.

        Consumes an L1-I tag port.  Returns the outcome and, for misses,
        the cycle at which the fill completes (``RETRY`` means the MSHR
        file was full and the access must be retried next cycle).
        """
        self._ports_used += 1
        self.stats.bump("demand_accesses")
        if self.l1i.lookup(bid):
            return DemandResult(HIT_L1, now)
        if self.sidecar is not None \
                and self.sidecar.probe_and_claim(bid, now):
            self.l1i.fill(bid)
            self.stats.bump("sidecar_promotions")
            return DemandResult(HIT_SIDECAR, now)
        in_flight = self.mshrs.get(bid)
        if in_flight is not None:
            self.mshrs.merge_demand(bid)
            return DemandResult(MERGED, in_flight.ready_cycle)
        if self.mshrs.full:
            self.stats.bump("demand_mshr_stalls")
            return DemandResult(RETRY, None)
        start = self.bus.acquire_demand(now)
        ready = start + self.bus.transfer_cycles + self._backing_latency(bid)
        self.mshrs.allocate(bid, ready, is_prefetch=False)
        heapq.heappush(self._events, (ready, bid))
        self.stats.bump("demand_misses")
        return DemandResult(MISS, ready)

    def _backing_latency(self, bid: int) -> int:
        """L2 lookup for latency; memory fills install into the L2."""
        if self.l2.lookup(bid):
            return self.config.l2_hit_latency
        self.l2.fill(bid)
        self.stats.bump("l2_misses")
        return self.config.memory_latency

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def try_issue_prefetch(self, bid: int, now: int,
                           wrong_path: bool = False) -> bool:
        """Attempt to start a prefetch of ``bid``.

        Fails (returns False) when the block is already in flight, the
        MSHR file is full, or the bus is not idle (demand priority).
        """
        if self.mshrs.get(bid) is not None:
            self.stats.bump("prefetch_already_in_flight")
            return False
        if self.mshrs.full:
            self.stats.bump("prefetch_mshr_stalls")
            return False
        start = self.bus.try_acquire_prefetch(now)
        if start is None:
            return False
        ready = start + self.bus.transfer_cycles + self._backing_latency(bid)
        self.mshrs.allocate(bid, ready, is_prefetch=True,
                            wrong_path=wrong_path)
        heapq.heappush(self._events, (ready, bid))
        self.stats.bump("prefetches_issued")
        if wrong_path:
            self.stats.bump("prefetches_issued_wrong_path")
        return True

    # ------------------------------------------------------------------
    # Tag ports / cache probe filtering
    # ------------------------------------------------------------------

    @property
    def idle_tag_ports(self) -> int:
        """Tag ports still unused this cycle."""
        return max(0, self.config.icache_tag_ports - self._ports_used)

    def cpf_probe(self, bid: int) -> bool | None:
        """Cache-probe-filter probe using one idle tag port.

        Returns None when no idle port remains this cycle; otherwise
        consumes a port and answers whether ``bid`` is in the L1-I.
        """
        if self.idle_tag_ports == 0:
            self.stats.bump("cpf_no_port")
            return None
        self._ports_used += 1
        self.stats.bump("cpf_probes")
        return self.l1i.probe(bid)

    def oracle_probe(self, bid: int) -> bool:
        """Port-free, stat-free residence check (ideal filtering)."""
        return self.l1i.contains(bid)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _extra_state(self) -> dict:
        # The sidecar is prefetcher-owned state; it checkpoints under
        # the prefetcher's node, not here.
        return {"events": [list(event) for event in self._events],
                "ports_used": self._ports_used,
                "now": self._now}

    def _load_extra_state(self, state: dict) -> None:
        self._events = [(int(ready), int(bid))
                        for ready, bid in state["events"]]
        heapq.heapify(self._events)
        self._ports_used = int(state["ports_used"])
        self._now = int(state["now"])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def in_flight_blocks(self) -> list[int]:
        return [entry.bid for entry in self.mshrs.outstanding()]

    def __repr__(self) -> str:
        return (f"MemorySystem(l1i={self.l1i!r}, l2={self.l2!r}, "
                f"in_flight={len(self.mshrs)})")
