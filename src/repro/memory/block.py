"""Address/cache-block arithmetic helpers.

Cache blocks are identified by integer *block ids* (address divided by the
block size).  Using ids instead of raw addresses everywhere below the fetch
engine avoids repeated shifting in the hot loop and makes unit tests easier
to read.
"""

from __future__ import annotations

__all__ = ["block_id", "block_base", "blocks_spanning"]


def block_id(addr: int, block_bytes: int) -> int:
    """The cache block id containing byte address ``addr``."""
    return addr // block_bytes


def block_base(bid: int, block_bytes: int) -> int:
    """The first byte address of block ``bid``."""
    return bid * block_bytes


def blocks_spanning(start: int, end: int, block_bytes: int) -> range:
    """Block ids touched by the half-open byte range [start, end)."""
    if end <= start:
        return range(0)
    first = start // block_bytes
    last = (end - 1) // block_bytes
    return range(first, last + 1)
