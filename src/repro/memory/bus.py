"""The shared bus between the L1 instruction cache and the L2.

The paper charges every L1-I fill — demand or prefetch — for bus occupancy,
and gives demand misses priority: a prefetch may only start a transfer when
the bus is idle, while a demand miss queues behind whatever is in flight.

The model is a single resource with an occupancy horizon (``busy_until``).
A transfer occupies the bus for ``transfer_cycles``; the requester's data is
ready after the occupancy plus the downstream latency (L2 hit or memory).
"""

from __future__ import annotations

from repro.component import StatsComponent
from repro.stats import StatGroup

__all__ = ["Bus"]


class Bus(StatsComponent):
    """Single shared bus with demand-priority scheduling."""

    def __init__(self, transfer_cycles: int, name: str = "bus"):
        if transfer_cycles < 1:
            raise ValueError("transfer_cycles must be >= 1")
        self.transfer_cycles = transfer_cycles
        self.stats = StatGroup(name)
        self._busy_until = 0

    @property
    def busy_until(self) -> int:
        return self._busy_until

    def idle_at(self, now: int) -> bool:
        """True when a new transfer could start immediately at ``now``."""
        return self._busy_until <= now

    def acquire_demand(self, now: int) -> int:
        """Schedule a demand transfer; returns its start cycle.

        Demand transfers queue: if the bus is busy they start as soon as
        it frees up.
        """
        start = max(now, self._busy_until)
        self._busy_until = start + self.transfer_cycles
        self.stats.bump("demand_transfers")
        self.stats.bump("busy_cycles", self.transfer_cycles)
        self.stats.bump("demand_wait_cycles", start - now)
        return start

    def try_acquire_prefetch(self, now: int) -> int | None:
        """Start a prefetch transfer only if the bus is idle at ``now``.

        Returns the start cycle (== ``now``) or None when the bus is busy;
        prefetches never queue, preserving demand priority.
        """
        if self._busy_until > now:
            self.stats.bump("prefetch_rejected")
            return None
        self._busy_until = now + self.transfer_cycles
        self.stats.bump("prefetch_transfers")
        self.stats.bump("busy_cycles", self.transfer_cycles)
        return now

    def _extra_state(self) -> dict:
        return {"busy_until": self._busy_until}

    def _load_extra_state(self, state: dict) -> None:
        self._busy_until = int(state["busy_until"])

    def utilization(self, elapsed_cycles: int) -> float:
        """Fraction of ``elapsed_cycles`` the bus spent transferring."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self.stats.get("busy_cycles") / elapsed_cycles)
