"""The fully-associative prefetch buffer.

FDIP (and, in this implementation, tagged next-line prefetching) does not
fill the L1-I directly.  Prefetched blocks land in a small fully-associative
buffer probed in parallel with the L1-I; a hit promotes the block into the
cache.  This keeps wrong-path and otherwise-useless prefetches from evicting
useful instructions — the pollution-avoidance property the paper leans on.

Replacement is FIFO over unreferenced entries, matching the simple hardware
the paper assumes for a 32-entry buffer.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.component import StatsComponent
from repro.stats import StatGroup

__all__ = ["PrefetchBuffer"]


class PrefetchBuffer(StatsComponent):
    """Fully-associative FIFO buffer of prefetched cache blocks."""

    def __init__(self, entries: int, name: str = "pbuf"):
        if entries < 1:
            raise ValueError("prefetch buffer needs at least one entry")
        self.capacity = entries
        self.stats = StatGroup(name)
        # bid -> (wrong_path flag, fill cycle); insertion order is FIFO.
        self._blocks: OrderedDict[int, tuple[bool, int]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._blocks)

    def contains(self, bid: int) -> bool:
        """Presence check without statistics or side effects."""
        return bid in self._blocks

    def insert(self, bid: int, wrong_path: bool = False,
               cycle: int = 0) -> int | None:
        """Add a prefetched block; returns an evicted block id, if any.

        ``cycle`` is the fill completion time, used to measure prefetch
        lead time when the block is later claimed.  Re-inserting a
        resident block refreshes nothing (FIFO order is kept) and evicts
        nothing.  An entry evicted before any demand hit is counted as a
        useless prefetch.
        """
        if bid in self._blocks:
            self.stats.bump("duplicate_fills")
            return None
        victim = None
        if len(self._blocks) >= self.capacity:
            victim, (victim_wrong, _) = self._blocks.popitem(last=False)
            self.stats.bump("evicted_unused")
            if victim_wrong:
                self.stats.bump("evicted_unused_wrong_path")
        self._blocks[bid] = (wrong_path, cycle)
        self.stats.bump("fills")
        return victim

    def claim(self, bid: int, now: int = 0) -> bool:
        """Demand probe: on hit, remove the block (it moves to the L1-I).

        Returns True on hit.  This is the *useful prefetch* event; the
        lead time between the fill and this use is recorded in the
        ``lead_cycles`` histogram.
        """
        entry = self._blocks.pop(bid, None)
        if entry is None:
            return False
        _, fill_cycle = entry
        self.stats.bump("useful_hits")
        if now > 0:
            self.stats.histogram("lead_cycles").observe(
                max(0, now - fill_cycle))
        return True

    def flush(self) -> None:
        """Drop all contents (used only by tests and resets)."""
        self._blocks.clear()

    def resident(self) -> list[int]:
        """Block ids currently buffered, oldest first."""
        return list(self._blocks)

    def _extra_state(self) -> dict:
        # FIFO order preserved: oldest first.
        return {"blocks": [[bid, wrong, cycle] for bid, (wrong, cycle)
                           in self._blocks.items()]}

    def _load_extra_state(self, state: dict) -> None:
        self._blocks.clear()
        for bid, wrong, cycle in state["blocks"]:
            self._blocks[int(bid)] = (bool(wrong), int(cycle))
