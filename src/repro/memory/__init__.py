"""Memory substrate: caches, bus, MSHRs, prefetch buffer, hierarchy."""

from repro.memory.block import block_base, block_id, blocks_spanning
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.hierarchy import (
    HIT_L1,
    HIT_SIDECAR,
    MERGED,
    MISS,
    RETRY,
    DemandResult,
    MemorySystem,
    Sidecar,
)
from repro.memory.mshr import MshrEntry, MshrFile
from repro.memory.prefetch_buffer import PrefetchBuffer

__all__ = [
    "block_id",
    "block_base",
    "blocks_spanning",
    "Bus",
    "SetAssociativeCache",
    "MshrFile",
    "MshrEntry",
    "PrefetchBuffer",
    "MemorySystem",
    "Sidecar",
    "DemandResult",
    "HIT_L1",
    "HIT_SIDECAR",
    "MERGED",
    "MISS",
    "RETRY",
]
