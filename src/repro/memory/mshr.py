"""Miss status holding registers.

MSHRs track in-flight fills by block id.  They provide the merge semantics
the paper's machine relies on: a demand fetch that misses the L1-I but finds
its block already in flight (typically because FDIP prefetched it a little
too late) waits for the existing fill instead of issuing a second bus
transfer.  Such merges are counted as *late prefetches*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.component import StatsComponent
from repro.stats import StatGroup

__all__ = ["MshrFile", "MshrEntry"]


@dataclass(slots=True)
class MshrEntry:
    """One in-flight fill."""

    bid: int
    ready_cycle: int
    is_prefetch: bool
    # Set when a demand access merged into a prefetch in flight; the fill
    # must then go to the L1-I, not (only) the prefetch buffer.
    demand_merged: bool = False
    wrong_path: bool = False


@dataclass
class MshrFile(StatsComponent):
    """A bounded file of :class:`MshrEntry`, keyed by block id."""

    capacity: int
    stats: StatGroup = field(default_factory=lambda: StatGroup("mshr"))

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("MSHR capacity must be >= 1")
        self._entries: dict[int, MshrEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def get(self, bid: int) -> MshrEntry | None:
        """The in-flight entry for ``bid``, or None."""
        return self._entries.get(bid)

    def allocate(self, bid: int, ready_cycle: int,
                 is_prefetch: bool, wrong_path: bool = False) -> MshrEntry:
        """Allocate an entry; caller must have checked ``full`` and ``get``."""
        if bid in self._entries:
            raise KeyError(f"block {bid} already has an MSHR entry")
        if self.full:
            raise OverflowError("MSHR file is full")
        entry = MshrEntry(bid=bid, ready_cycle=ready_cycle,
                          is_prefetch=is_prefetch, wrong_path=wrong_path)
        self._entries[bid] = entry
        self.stats.bump("allocations")
        if is_prefetch:
            self.stats.bump("prefetch_allocations")
        return entry

    def release(self, bid: int) -> MshrEntry:
        """Remove and return the entry for ``bid`` (fill completed)."""
        entry = self._entries.pop(bid, None)
        if entry is None:
            raise KeyError(f"no MSHR entry for block {bid}")
        return entry

    def merge_demand(self, bid: int) -> MshrEntry:
        """Record a demand access merging into an in-flight fill."""
        entry = self._entries[bid]
        entry.demand_merged = True
        self.stats.bump("demand_merges")
        if entry.is_prefetch:
            self.stats.bump("late_prefetch_merges")
        return entry

    def outstanding(self) -> list[MshrEntry]:
        """All in-flight entries (ordering unspecified)."""
        return list(self._entries.values())

    def _extra_state(self) -> dict:
        return {"entries": [
            [e.bid, e.ready_cycle, e.is_prefetch, e.demand_merged,
             e.wrong_path]
            for e in self._entries.values()]}

    def _load_extra_state(self, state: dict) -> None:
        self._entries = {
            int(bid): MshrEntry(
                bid=int(bid), ready_cycle=int(ready),
                is_prefetch=bool(is_prefetch),
                demand_merged=bool(merged), wrong_path=bool(wrong))
            for bid, ready, is_prefetch, merged, wrong
            in state["entries"]}
