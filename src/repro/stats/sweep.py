"""Sweep-execution counters and the human-readable summary line.

The fault-tolerant sweep executor reports how a batch actually ran —
completed / retried / failed points, plus the failure-mode breakdown
(timeouts, worker crashes, pool rebuilds) and how many points were
resumed from a checkpoint.  This module owns the counter vocabulary and
its rendering so the harness, report generator, and CLI all agree.
"""

from __future__ import annotations

from repro.stats.counters import StatGroup
from repro.stats.telemetry import (
    IntervalSeries,
    TelemetrySnapshot,
    merge_nodes,
)

__all__ = ["COUNTER_NAMES", "merge_counters", "merge_snapshots",
           "sweep_stat_group", "summary_line"]

# Canonical counter vocabulary, in display order.  The last three come
# from in-run machine checkpointing (repro.sim.checkpoint): snapshots
# written, points resumed from a mid-run snapshot, and deadline
# extensions granted to slow-but-progressing workers ("stalls").
COUNTER_NAMES: tuple[str, ...] = (
    "points", "completed", "resumed", "retried", "failed",
    "timeouts", "crashes", "rebuilds",
    "snapshots", "ckpt_resumes", "stalls",
)


def merge_counters(*sources: dict[str, int]) -> dict[str, int]:
    """Sum counter dicts into one (missing names count as zero)."""
    merged: dict[str, int] = {}
    for source in sources:
        for name, value in source.items():
            merged[name] = merged.get(name, 0) + value
    return merged


def merge_snapshots(snapshots: "list[TelemetrySnapshot]",
                    ) -> TelemetrySnapshot:
    """Aggregate per-shard telemetry snapshots into one.

    The substrate for cross-shard metric aggregation: counter trees add
    node-by-node (see :func:`repro.stats.telemetry.merge_nodes`),
    ``cycles``/``instructions`` metadata sums, and interval series
    concatenate in input order when every shard used the same window
    (they are dropped otherwise — splicing differently-windowed series
    would fabricate data).
    """
    if not snapshots:
        raise ValueError("merge_snapshots needs at least one snapshot")
    root = merge_nodes([snap.root for snap in snapshots])
    meta: dict[str, object] = {
        "merged_from": [snap.meta.get("name") for snap in snapshots],
        "cycles": sum(int(snap.meta.get("cycles", 0))
                      for snap in snapshots),
        "instructions": sum(int(snap.meta.get("instructions", 0))
                            for snap in snapshots),
    }
    prefetchers = {snap.meta.get("prefetcher") for snap in snapshots}
    if len(prefetchers) == 1:
        meta["prefetcher"] = prefetchers.pop()
    intervals = None
    series = [snap.intervals for snap in snapshots
              if snap.intervals is not None]
    if series and len({s.window for s in series}) == 1:
        samples = tuple(sample for s in series for sample in s.samples)
        intervals = IntervalSeries(window=series[0].window,
                                   samples=samples)
    return TelemetrySnapshot(root=root, meta=meta, intervals=intervals)


def sweep_stat_group(counters: dict[str, int]) -> StatGroup:
    """The counters as a ``StatGroup('sweep')`` for stats merging."""
    group = StatGroup("sweep")
    for name in COUNTER_NAMES:
        group.set(name, counters.get(name, 0))
    return group


def summary_line(counters: dict[str, int]) -> str:
    """One-line completed/retried/failed report, e.g.::

        sweep: 10/12 points completed (2 resumed), 3 retried, 2 failed
        (1 timeout, 1 crash, 2 pool rebuilds)
    """
    completed = counters.get("completed", 0) + counters.get("resumed", 0)
    points = counters.get("points",
                          completed + counters.get("failed", 0))
    text = (f"sweep: {completed}/{points} points completed")
    if counters.get("resumed", 0):
        text += f" ({counters['resumed']} resumed)"
    text += (f", {counters.get('retried', 0)} retried, "
             f"{counters.get('failed', 0)} failed")
    breakdown = []
    if counters.get("timeouts", 0):
        breakdown.append(f"{counters['timeouts']} timeouts")
    if counters.get("crashes", 0):
        breakdown.append(f"{counters['crashes']} crashes")
    if counters.get("rebuilds", 0):
        breakdown.append(f"{counters['rebuilds']} pool rebuilds")
    if breakdown:
        text += f" ({', '.join(breakdown)})"
    checkpointing = []
    if counters.get("snapshots", 0):
        checkpointing.append(f"{counters['snapshots']} snapshots")
    if counters.get("ckpt_resumes", 0):
        checkpointing.append(
            f"{counters['ckpt_resumes']} checkpoint resumes")
    if counters.get("stalls", 0):
        checkpointing.append(f"{counters['stalls']} stalls tolerated")
    if checkpointing:
        text += f" [{', '.join(checkpointing)}]"
    return text
