"""Statistic primitives: counters, histograms, and grouped registries.

The simulator components each own a :class:`StatGroup`; the simulator merges
the groups into a flat, prefixed namespace when a run finishes.  Counters are
plain integers behind a small API so the hot simulation loop can keep using
``group.bump(...)`` without dictionary churn in the common case.
"""

from __future__ import annotations

from collections import Counter as _Counter
from typing import Iterator

__all__ = ["StatGroup", "Histogram", "RunLengthObserver"]


class Histogram:
    """A sparse integer-valued histogram.

    Samples are integers (for example, FTQ occupancy per cycle, or fetch
    block lengths).  Only observed values consume storage.
    """

    __slots__ = ("_counts", "_total", "_sum")

    def __init__(self) -> None:
        self._counts: _Counter[int] = _Counter()
        self._total = 0
        self._sum = 0

    def observe(self, value: int, weight: int = 1) -> None:
        """Record ``value`` with the given ``weight``.

        A zero weight is a no-op (no bucket is created); negative
        weights are rejected — they would corrupt the totals.
        """
        if weight <= 0:
            if weight == 0:
                return
            raise ValueError(f"negative histogram weight: {weight}")
        self._counts[value] += weight
        self._total += weight
        self._sum += value * weight

    @property
    def total(self) -> int:
        """Total weight observed."""
        return self._total

    @property
    def mean(self) -> float:
        """Weighted mean of observed values (0.0 when empty)."""
        if self._total == 0:
            return 0.0
        return self._sum / self._total

    def fraction_at(self, value: int) -> float:
        """Fraction of total weight recorded exactly at ``value``."""
        if self._total == 0:
            return 0.0
        return self._counts[value] / self._total

    def percentile(self, q: float) -> int:
        """Smallest observed value v such that P(X <= v) >= q.

        ``q`` must be in (0, 1].  Raises ``ValueError`` on an empty
        histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self._total == 0:
            raise ValueError("percentile of an empty histogram")
        needed = q * self._total
        running = 0
        for value in sorted(self._counts):
            running += self._counts[value]
            if running >= needed:
                return value
        raise AssertionError("unreachable: histogram weights inconsistent")

    def items(self) -> Iterator[tuple[int, int]]:
        """Yield (value, count) pairs in increasing value order."""
        for value in sorted(self._counts):
            yield value, self._counts[value]

    def as_dict(self) -> dict[int, int]:
        """Return a plain dict copy of the histogram contents."""
        return dict(self._counts)

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the histogram contents.

        Buckets are serialized as ``[value, count]`` pairs so integer
        keys survive a JSON round trip intact.
        """
        return {"counts": [[value, self._counts[value]]
                           for value in sorted(self._counts)]}

    def load_state_dict(self, state: dict) -> None:
        """Restore the contents captured by :meth:`state_dict`."""
        self._counts = _Counter(
            {int(value): int(count) for value, count in state["counts"]})
        self._total = sum(self._counts.values())
        self._sum = sum(value * count
                        for value, count in self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return (f"Histogram(total={self._total}, mean={self.mean:.2f}, "
                f"distinct={len(self._counts)})")


class RunLengthObserver:
    """Deferred feeder for a :class:`Histogram` sampled every cycle.

    Per-cycle series (FTQ occupancy, queue depths) hold the same value
    for long runs; recording each sample individually makes
    ``Histogram.observe`` a hot-loop cost.  This observer accumulates
    consecutive equal samples and flushes each run as one weighted
    ``observe`` call, which is arithmetically identical to per-sample
    recording.  Call :meth:`flush` before reading the histogram.
    """

    __slots__ = ("_histogram", "_value", "_weight")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._value = 0
        self._weight = 0

    def observe(self, value: int, weight: int = 1) -> None:
        """Record ``value`` for ``weight`` consecutive samples.

        A zero-weight observe is a complete no-op: it neither flushes
        the buffered run nor switches the tracked value.
        """
        if weight == 0:
            return
        if value == self._value:
            self._weight += weight
        else:
            if self._weight:
                self._histogram.observe(self._value, self._weight)
            self._value = value
            self._weight = weight

    def flush(self) -> None:
        """Push any buffered run into the histogram."""
        if self._weight:
            self._histogram.observe(self._value, self._weight)
            self._weight = 0

    def state_dict(self) -> dict:
        """Snapshot the buffered run (the histogram is owned elsewhere)."""
        return {"value": self._value, "weight": self._weight}

    def load_state_dict(self, state: dict) -> None:
        """Restore the buffered run captured by :meth:`state_dict`."""
        self._value = int(state["value"])
        self._weight = int(state["weight"])


class StatGroup:
    """A named group of integer counters and histograms.

    Components create their own group (``StatGroup('l1i')``) and bump
    counters by name.  Counter reads of names never bumped return 0, so
    report code does not need to guard against missing keys.
    """

    __slots__ = ("name", "_counters", "_histograms")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}

    def bump(self, counter: str, amount: int = 1) -> None:
        """Add ``amount`` to ``counter`` (creating it at zero)."""
        self._counters[counter] = self._counters.get(counter, 0) + amount

    def get(self, counter: str) -> int:
        """Current value of ``counter`` (0 if never bumped)."""
        return self._counters.get(counter, 0)

    def set(self, counter: str, value: int) -> None:
        """Set ``counter`` to an absolute value."""
        self._counters[counter] = value

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` as a float; 0.0 when empty."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def histogram(self, name: str) -> Histogram:
        """Return (creating on first use) the histogram called ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram()
            self._histograms[name] = hist
        return hist

    def counters(self) -> dict[str, int]:
        """A copy of all counters in this group."""
        return dict(self._counters)

    def histograms(self) -> dict[str, Histogram]:
        """The histograms in this group (live references)."""
        return dict(self._histograms)

    def reset(self) -> None:
        """Zero every counter and drop every histogram.

        Used at the end of simulation warm-up so reported statistics cover
        only the measured region.
        """
        self._counters.clear()
        self._histograms.clear()

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of every counter and histogram."""
        return {
            "counters": dict(self._counters),
            "histograms": {name: hist.state_dict()
                           for name, hist in self._histograms.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore the contents captured by :meth:`state_dict`.

        Replaces this group's counters and histograms wholesale; the
        group object itself (and therefore every component reference to
        it) is preserved.
        """
        self._counters = {str(name): int(value)
                          for name, value in state["counters"].items()}
        restored: dict[str, Histogram] = {}
        for name, payload in state["histograms"].items():
            # Reuse the existing object when one exists so that live
            # references (e.g. a RunLengthObserver feeding it) survive.
            hist = self._histograms.get(str(name), Histogram())
            hist.load_state_dict(payload)
            restored[str(name)] = hist
        self._histograms = restored

    def merged_into(self, flat: dict[str, int]) -> None:
        """Merge this group's counters into ``flat`` with a name prefix."""
        for key, value in self._counters.items():
            flat[f"{self.name}.{key}"] = value

    def __repr__(self) -> str:
        return (f"StatGroup({self.name!r}, counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})")
