"""The hierarchical telemetry spine.

Every machine component (see :mod:`repro.component`) reports its
statistics as a :class:`TelemetryNode`; the simulator assembles the
nodes into one tree rooted at the ``sim`` node and wraps it — together
with run metadata and the optional interval time series — into a
:class:`TelemetrySnapshot`.  The snapshot is the *single* source of
truth for everything downstream: :class:`~repro.sim.results.SimResult`
is a thin view constructed from it, the report generators and analysis
helpers read it, and the ``repro stats`` CLI exports it.

The export schema is versioned (:data:`SCHEMA`): consumers can rely on
the shape of :meth:`TelemetrySnapshot.to_dict` output, and
:meth:`TelemetrySnapshot.from_dict` refuses payloads from a newer
schema instead of misreading them.

Interval sampling
-----------------

:class:`IntervalSampler` records a per-window time series (cycles,
retired instructions, demand misses, FTQ-occupancy mass) with a
configurable window.  It is *fast-loop aware*: the idle-cycle skip
engine batches hundreds of identical cycles into one
:meth:`IntervalSampler.advance` call, and the sampler reconstructs
every window boundary crossed inside the batch analytically — the
resulting series is bit-identical to naive cycle-by-cycle sampling
(asserted by ``tests/test_fast_loop_equivalence.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.stats.counters import StatGroup

__all__ = [
    "SCHEMA",
    "TelemetryNode",
    "TelemetrySnapshot",
    "IntervalSample",
    "IntervalSeries",
    "IntervalSampler",
    "merge_nodes",
]

#: Versioned schema identifier stamped into every exported snapshot.
SCHEMA = "repro.telemetry/v1"


# ----------------------------------------------------------------------
# The tree
# ----------------------------------------------------------------------

@dataclass
class TelemetryNode:
    """One component's statistics: counters, histograms, derived ratios.

    ``children`` nests sub-component nodes (the memory system's caches,
    a two-level FTB's levels, a prefetcher's buffer).  Sibling names are
    normally unique but duplicates are representable — ``children`` is
    a list, not a mapping — and :meth:`flat_counters` resolves them the
    way the legacy flat merge did (later writers win).
    """

    name: str
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict[int, int]] = field(default_factory=dict)
    derived: dict[str, float] = field(default_factory=dict)
    children: list["TelemetryNode"] = field(default_factory=list)

    # -- construction ---------------------------------------------------

    @classmethod
    def from_stat_group(cls, group: StatGroup,
                        derived: dict[str, float] | None = None,
                        children: list["TelemetryNode"] | None = None,
                        ) -> "TelemetryNode":
        """Snapshot one :class:`StatGroup` into a node (copies, no refs)."""
        return cls(
            name=group.name,
            counters=group.counters(),
            histograms={name: hist.as_dict()
                        for name, hist in group.histograms().items()},
            derived=dict(derived) if derived else {},
            children=list(children) if children else [],
        )

    # -- navigation -----------------------------------------------------

    def child(self, name: str) -> "TelemetryNode | None":
        """First direct child called ``name`` (None when absent)."""
        for node in self.children:
            if node.name == name:
                return node
        return None

    def walk(self, prefix: str = "") -> Iterator[tuple[str, "TelemetryNode"]]:
        """Yield ``(path, node)`` pairs in depth-first pre-order.

        Paths are slash-joined (``sim/mem/l1i``); the root's path is its
        own name.
        """
        path = f"{prefix}/{self.name}" if prefix else self.name
        yield path, self
        for node in self.children:
            yield from node.walk(path)

    def find(self, predicate: Callable[["TelemetryNode"], bool],
             ) -> "TelemetryNode | None":
        """First node (pre-order) satisfying ``predicate``."""
        for _, node in self.walk():
            if predicate(node):
                return node
        return None

    def get(self, counter: str) -> int:
        """This node's ``counter`` value (0 when never recorded)."""
        return self.counters.get(counter, 0)

    # -- legacy flat view ----------------------------------------------

    def flat_counters(self, into: dict[str, int] | None = None,
                      ) -> dict[str, int]:
        """The classic flat ``group.counter`` namespace.

        Keys are prefixed with each node's *own* name (not its path) so
        the result is exactly what :meth:`StatGroup.merged_into` used to
        build; duplicate sibling names overwrite in traversal order,
        matching the old merge.
        """
        flat = {} if into is None else into
        for _, node in self.walk():
            for key, value in node.counters.items():
                flat[f"{node.name}.{key}"] = value
        return flat

    def histogram(self, name: str) -> dict[int, int]:
        """This node's histogram ``name`` (empty dict when absent)."""
        return self.histograms.get(name, {})

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible form (histogram keys stringified)."""
        return {
            "name": self.name,
            "counters": dict(self.counters),
            "histograms": {name: {str(k): v for k, v in hist.items()}
                           for name, hist in self.histograms.items()},
            "derived": dict(self.derived),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TelemetryNode":
        return cls(
            name=payload["name"],
            counters={str(k): int(v)
                      for k, v in payload.get("counters", {}).items()},
            histograms={name: {int(k): int(v) for k, v in hist.items()}
                        for name, hist in
                        payload.get("histograms", {}).items()},
            derived={str(k): float(v)
                     for k, v in payload.get("derived", {}).items()},
            children=[cls.from_dict(child)
                      for child in payload.get("children", [])],
        )


def merge_nodes(nodes: "list[TelemetryNode]") -> TelemetryNode:
    """Sum same-shaped telemetry trees (cross-shard aggregation).

    Counters and histogram weights add; derived ratios are *dropped*
    (a ratio of sums is not the sum of ratios — recompute downstream);
    children are merged by position-insensitive name matching, keeping
    first-tree order and appending names unique to later trees.
    """
    if not nodes:
        raise ValueError("merge_nodes needs at least one node")
    first = nodes[0]
    merged = TelemetryNode(name=first.name)
    for node in nodes:
        if node.name != first.name:
            raise ValueError(
                f"cannot merge node {node.name!r} into {first.name!r}")
        for key, value in node.counters.items():
            merged.counters[key] = merged.counters.get(key, 0) + value
        for name, hist in node.histograms.items():
            target = merged.histograms.setdefault(name, {})
            for value, count in hist.items():
                target[value] = target.get(value, 0) + count
    order: list[str] = []
    by_name: dict[str, list[TelemetryNode]] = {}
    for node in nodes:
        for child in node.children:
            if child.name not in by_name:
                order.append(child.name)
                by_name[child.name] = []
            by_name[child.name].append(child)
    merged.children = [merge_nodes(by_name[name]) for name in order]
    return merged


# ----------------------------------------------------------------------
# Interval time series
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class IntervalSample:
    """One window of the interval time series (all-integer deltas)."""

    end_cycle: int           # last cycle covered by this window
    cycles: int              # window length (== window except the tail)
    instructions: int        # instructions retired inside the window
    demand_misses: int       # demand misses recorded inside the window
    ftq_occupancy_sum: int   # sum of per-cycle FTQ occupancy samples

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions

    @property
    def mean_ftq_occupancy(self) -> float:
        return self.ftq_occupancy_sum / self.cycles if self.cycles else 0.0


@dataclass(frozen=True)
class IntervalSeries:
    """The finalized per-window time series of one run."""

    window: int
    samples: tuple[IntervalSample, ...]

    def rows(self) -> list[list[Any]]:
        """Tabular form matching :meth:`headers` (for CSV export)."""
        return [[i, s.end_cycle, s.cycles, s.instructions, s.ipc,
                 s.demand_misses, s.mpki, s.mean_ftq_occupancy]
                for i, s in enumerate(self.samples)]

    @staticmethod
    def headers() -> list[str]:
        return ["interval", "end_cycle", "cycles", "instructions", "ipc",
                "demand_misses", "mpki", "mean_ftq_occupancy"]

    def to_dict(self) -> dict[str, Any]:
        return {
            "window": self.window,
            "samples": [{
                "end_cycle": s.end_cycle,
                "cycles": s.cycles,
                "instructions": s.instructions,
                "demand_misses": s.demand_misses,
                "ftq_occupancy_sum": s.ftq_occupancy_sum,
            } for s in self.samples],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "IntervalSeries":
        return cls(
            window=int(payload["window"]),
            samples=tuple(IntervalSample(
                end_cycle=int(s["end_cycle"]),
                cycles=int(s["cycles"]),
                instructions=int(s["instructions"]),
                demand_misses=int(s["demand_misses"]),
                ftq_occupancy_sum=int(s["ftq_occupancy_sum"]),
            ) for s in payload.get("samples", [])),
        )


class IntervalSampler:
    """Accumulates the interval time series during a run.

    The naive loop calls :meth:`advance` once per cycle; the fast-path
    engine calls it once per *batch* of skipped cycles (during which
    retired count, demand misses, and FTQ occupancy are provably
    constant — that is what made the cycles skippable).  Boundary
    crossings inside a batch are reconstructed exactly, so both loops
    produce the same series.

    ``origin`` is the cycle measurement starts at; windows end at
    ``origin + k*window``.  All recorded quantities are cumulative
    *as of the end* of the reported cycle; :meth:`finalize` converts
    the boundary snapshots into per-window deltas.
    """

    __slots__ = ("window", "_origin", "_base_retired", "_base_misses",
                 "_pos", "_next_boundary", "_occ_sum", "_marks")

    def __init__(self, window: int, origin: int = 0,
                 base_retired: int = 0, base_misses: int = 0):
        if window < 1:
            raise ValueError("interval window must be >= 1")
        self.window = window
        self._origin = origin
        self._base_retired = base_retired   # cumulative retired at origin
        self._base_misses = base_misses     # cumulative misses at origin
        self._pos = origin            # last cycle accounted for
        self._next_boundary = origin + window
        self._occ_sum = 0             # cumulative occupancy mass
        # (end_cycle, retired, misses, occ_sum) cumulative marks.
        self._marks: list[tuple[int, int, int, int]] = []

    def advance(self, cycle: int, occupancy: int, retired: int,
                misses: int) -> None:
        """Account for cycles ``(_pos, cycle]``.

        ``occupancy`` is the FTQ occupancy held on every cycle of the
        span; ``retired``/``misses`` are the cumulative totals at the
        end of ``cycle`` (constant across the span when it is longer
        than one cycle — guaranteed by the fast path's idleness proof).
        """
        while self._next_boundary <= cycle:
            boundary = self._next_boundary
            occ_at_boundary = (self._occ_sum
                               + occupancy * (boundary - self._pos))
            self._marks.append((boundary, retired, misses,
                                occ_at_boundary))
            self._next_boundary = boundary + self.window
        self._occ_sum += occupancy * (cycle - self._pos)
        self._pos = cycle

    def state_dict(self) -> dict:
        """JSON-compatible snapshot of the in-progress series."""
        return {
            "window": self.window,
            "origin": self._origin,
            "base_retired": self._base_retired,
            "base_misses": self._base_misses,
            "pos": self._pos,
            "next_boundary": self._next_boundary,
            "occ_sum": self._occ_sum,
            "marks": [list(mark) for mark in self._marks],
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "IntervalSampler":
        """Rebuild a sampler mid-series from :meth:`state_dict` output."""
        sampler = cls(int(state["window"]), origin=int(state["origin"]),
                      base_retired=int(state["base_retired"]),
                      base_misses=int(state["base_misses"]))
        sampler._pos = int(state["pos"])
        sampler._next_boundary = int(state["next_boundary"])
        sampler._occ_sum = int(state["occ_sum"])
        sampler._marks = [(int(m[0]), int(m[1]), int(m[2]), int(m[3]))
                          for m in state["marks"]]
        return sampler

    def finalize(self, cycle: int, retired: int,
                 misses: int) -> IntervalSeries:
        """Close the series at ``cycle`` (emits a partial tail window)."""
        marks = list(self._marks)
        if cycle > (marks[-1][0] if marks else self._origin):
            marks.append((cycle, retired, misses, self._occ_sum))
        samples = []
        prev = (self._origin, self._base_retired, self._base_misses, 0)
        for mark in marks:
            end, cum_retired, cum_misses, cum_occ = mark
            samples.append(IntervalSample(
                end_cycle=end,
                cycles=end - prev[0],
                instructions=cum_retired - prev[1],
                demand_misses=cum_misses - prev[2],
                ftq_occupancy_sum=cum_occ - prev[3],
            ))
            prev = mark
        return IntervalSeries(window=self.window, samples=tuple(samples))


# ----------------------------------------------------------------------
# The snapshot
# ----------------------------------------------------------------------

@dataclass
class TelemetrySnapshot:
    """One run's complete telemetry: tree + metadata + intervals."""

    root: TelemetryNode
    meta: dict[str, Any] = field(default_factory=dict)
    intervals: IntervalSeries | None = None

    # -- convenience ----------------------------------------------------

    def flat_counters(self) -> dict[str, int]:
        """The legacy flat ``group.counter`` namespace."""
        return self.root.flat_counters()

    def node(self, *path: str) -> TelemetryNode | None:
        """Navigate from the root by child names (None when missing)."""
        node: TelemetryNode | None = self.root
        for name in path:
            if node is None:
                return None
            node = node.child(name)
        return node

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The versioned export schema (see ``docs/telemetry.md``)."""
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "root": self.root.to_dict(),
            "intervals": (self.intervals.to_dict()
                          if self.intervals is not None else None),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TelemetrySnapshot":
        schema = payload.get("schema", SCHEMA)
        if schema != SCHEMA:
            raise ValueError(
                f"unsupported telemetry schema {schema!r} "
                f"(this build reads {SCHEMA!r})")
        intervals = payload.get("intervals")
        return cls(
            root=TelemetryNode.from_dict(payload["root"]),
            meta=dict(payload.get("meta", {})),
            intervals=(IntervalSeries.from_dict(intervals)
                       if intervals is not None else None),
        )

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        return cls.from_dict(json.loads(text))

    def counter_rows(self) -> list[list[Any]]:
        """``(component path, counter, value)`` rows for CSV export."""
        rows: list[list[Any]] = []
        for path, node in self.root.walk():
            for key in sorted(node.counters):
                rows.append([path, key, node.counters[key]])
        return rows

    @staticmethod
    def counter_headers() -> list[str]:
        return ["component", "counter", "value"]
