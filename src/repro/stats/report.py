"""Plain-text table formatting and CSV/JSON export for experiment results.

The benchmark harness prints paper-style tables: a header row, aligned
columns, and numeric formatting chosen per column.  Nothing here depends on
the simulator; the input is rows of plain Python values.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:
    from repro.stats.telemetry import TelemetrySnapshot

__all__ = ["format_table", "rows_to_csv", "rows_to_json", "format_value",
           "telemetry_table"]


def format_value(value: Any, precision: int = 3) -> str:
    """Render one cell: floats to ``precision`` digits, others via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Format ``rows`` under ``headers`` as an aligned plain-text table.

    Numeric columns are right-aligned, text columns left-aligned.  The
    result ends without a trailing newline so callers can ``print`` it
    directly.
    """
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("every row must have one cell per header")

    cells = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
            for row in rows) and bool(rows)
        for i in range(len(headers))
    ]

    def align(text: str, col: int) -> str:
        if numeric[col]:
            return text.rjust(widths[col])
        return text.ljust(widths[col])

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(align(cell, i) for i, cell in enumerate(row)))
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Serialize rows as CSV text (header line included)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(headers)
    writer.writerows(rows)
    return out.getvalue()


def rows_to_json(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Serialize rows as a JSON list of objects keyed by header names."""
    records = [dict(zip(headers, row)) for row in rows]
    return json.dumps(records, indent=2, sort_keys=False)


def telemetry_table(snapshot: "TelemetrySnapshot") -> str:
    """Human-readable counter table for one telemetry snapshot.

    Walks the component tree in pre-order — the table reads like the
    machine: front end first, memory hierarchy nested under ``mem`` —
    with derived ratios appended per component.
    """
    rows: list[list[Any]] = []
    for path, node in snapshot.root.walk():
        for key in sorted(node.counters):
            rows.append([path, key, node.counters[key]])
        for key in sorted(node.derived):
            rows.append([path, key, node.derived[key]])
    meta = snapshot.meta
    title = None
    if meta.get("name"):
        title = (f"{meta.get('name')} / {meta.get('prefetcher', '?')} — "
                 f"{meta.get('cycles', '?')} cycles, "
                 f"{meta.get('instructions', '?')} instructions")
    return format_table(["component", "counter", "value"], rows,
                        title=title)
