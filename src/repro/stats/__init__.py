"""Statistics primitives and report formatting."""

from repro.stats.counters import Histogram, RunLengthObserver, StatGroup
from repro.stats.report import (
    format_table,
    format_value,
    rows_to_csv,
    rows_to_json,
)
from repro.stats.sweep import (
    merge_counters,
    summary_line,
    sweep_stat_group,
)

__all__ = [
    "Histogram",
    "RunLengthObserver",
    "StatGroup",
    "format_table",
    "format_value",
    "rows_to_csv",
    "rows_to_json",
    "merge_counters",
    "summary_line",
    "sweep_stat_group",
]
