"""Statistics primitives and report formatting."""

from repro.stats.counters import Histogram, StatGroup
from repro.stats.report import (
    format_table,
    format_value,
    rows_to_csv,
    rows_to_json,
)

__all__ = [
    "Histogram",
    "StatGroup",
    "format_table",
    "format_value",
    "rows_to_csv",
    "rows_to_json",
]
