"""Statistics primitives, the telemetry spine, and report formatting."""

from repro.stats.counters import Histogram, RunLengthObserver, StatGroup
from repro.stats.report import (
    format_table,
    format_value,
    rows_to_csv,
    rows_to_json,
    telemetry_table,
)
from repro.stats.sweep import (
    merge_counters,
    merge_snapshots,
    summary_line,
    sweep_stat_group,
)
from repro.stats.telemetry import (
    SCHEMA,
    IntervalSample,
    IntervalSampler,
    IntervalSeries,
    TelemetryNode,
    TelemetrySnapshot,
    merge_nodes,
)

__all__ = [
    "Histogram",
    "RunLengthObserver",
    "StatGroup",
    "SCHEMA",
    "TelemetryNode",
    "TelemetrySnapshot",
    "IntervalSample",
    "IntervalSampler",
    "IntervalSeries",
    "merge_nodes",
    "merge_snapshots",
    "format_table",
    "format_value",
    "rows_to_csv",
    "rows_to_json",
    "telemetry_table",
    "merge_counters",
    "summary_line",
    "sweep_stat_group",
]
