"""The in-process simulation service: queueing, coalescing, caching.

:class:`SimulationService` owns the scheduling policy behind the
daemon (and is usable directly as a library object):

- **admission control** — a bounded priority queue; a submission that
  would exceed ``max_queue_depth`` raises
  :class:`~repro.errors.QueueFullError` synchronously (the daemon maps
  it to HTTP 429) instead of growing an unbounded backlog;
- **request coalescing** — submissions are keyed by the request's
  content-addressed :meth:`~repro.spec.RunRequest.cache_key`; a
  request identical to one already queued or running attaches to it as
  a *follower* and shares its one simulation (N concurrent clients →
  exactly one run);
- **cache serving** — a request whose result is already in the
  :class:`~repro.serve.cache.ResultCache` completes at submit time
  without touching the queue;
- **typed lifecycle** — every transition is emitted to the
  ``repro.events/v1`` log (``serve_enqueued`` → ``serve_coalesced`` /
  ``serve_cache_hit`` / ``serve_scheduled`` → ``serve_running`` →
  ``serve_done`` / ``serve_failed`` / ``serve_rejected``), with the
  job id in the payload and the cache key as the ``point``
  correlation id.

Execution itself is :func:`repro.api.execute` — the same unified path
every other entry point uses — so sharded requests fan out over the
supervised process pool exactly as they do in a sweep.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import QueueFullError, ServeError
from repro.obs import events as obs_events
from repro.serve.cache import ResultCache
from repro.spec import RunRequest, RunResponse, resolve_request
from repro.stats.telemetry import TelemetryNode

__all__ = ["Job", "SimulationService", "JOB_STATES"]

#: Every state a job can be observed in.
JOB_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One submission's lifecycle record.

    ``followers`` lists the job ids coalesced onto this one (primary
    jobs only); ``primary`` names the job a coalesced submission
    attached to.  Exactly one of ``response`` / ``error`` is set once
    ``state`` is terminal.
    """

    id: str
    request: RunRequest
    priority: int = 0
    state: str = "queued"
    source: str | None = None
    response: RunResponse | None = None
    error: str | None = None
    primary: str | None = None
    followers: list[str] = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed")

    def snapshot(self) -> dict:
        """JSON-compatible status view (the daemon's ``/v1/status``)."""
        return {
            "job": self.id,
            "state": self.state,
            "workload": self.request.workload,
            "key": self.request.cache_key(),
            "priority": self.priority,
            "source": self.source,
            "error": self.error,
            "primary": self.primary,
            "followers": list(self.followers),
        }


class SimulationService:
    """Priority-scheduled, coalescing, cache-backed run service.

    ``workers`` bounds in-service concurrency (each worker thread runs
    one simulation at a time through :func:`repro.api.execute`);
    ``max_queue_depth`` bounds the *queued* backlog — running jobs,
    coalesced followers, and cache hits never count against it.
    ``executor`` is injectable for tests (a callable from
    :class:`~repro.spec.RunRequest` to
    :class:`~repro.spec.RunResponse`).
    """

    def __init__(self, cache: ResultCache | None = None, *,
                 cache_dir: str | None = None,
                 workers: int = 1,
                 max_queue_depth: int = 16,
                 executor: "Callable[[RunRequest], RunResponse] | None"
                 = None):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_queue_depth < 1:
            raise ServeError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if cache is None and cache_dir is None:
            from repro import env

            cache_dir = env.serve_cache_dir()
        if cache is None and cache_dir is not None:
            cache = ResultCache(cache_dir)
        self.cache = cache
        self.workers = workers
        self.max_queue_depth = max_queue_depth
        self._executor = executor
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []
        self._jobs: dict[str, Job] = {}
        self._inflight: dict[str, str] = {}
        self._seq = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stopping = False
        self.counters: dict[str, int] = {
            "submitted": 0, "completed": 0, "failed": 0, "rejected": 0,
            "coalesced": 0, "cache_hits": 0, "simulations": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the worker threads (idempotent; submit() auto-starts)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for index in range(self.workers):
                thread = threading.Thread(
                    target=self._worker, name=f"repro-serve-{index}",
                    daemon=True)
                self._threads.append(thread)
                thread.start()
        obs_events.emit("serve_start", data={
            "workers": self.workers,
            "max_queue_depth": self.max_queue_depth,
            "cache_dir": (str(self.cache.directory)
                          if self.cache is not None else None)})

    def shutdown(self, *, wait: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting work and wind the workers down.

        With ``wait`` (the default) already-queued jobs drain first;
        otherwise the queue is failed out immediately.  Idempotent.
        """
        with self._cond:
            if self._stopping:
                return
            self._stopping = True
            if not wait:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    self._fail_locked(self._jobs[job_id],
                                      "service shut down before the "
                                      "job ran")
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=timeout)
        obs_events.emit("serve_stop", data=dict(self.counters))

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, request: RunRequest, *, priority: int = 0) -> str:
        """Admit one request; returns its job id.

        The request is resolved through the shared
        :func:`~repro.spec.resolve_request` normalization first, so the
        key it coalesces and caches under is exactly the key a direct
        library call would compute.  Raises
        :class:`~repro.errors.QueueFullError` when the queue is at
        ``max_queue_depth`` and :class:`~repro.errors.ServeError` for
        an unknown workload or a stopped service.
        """
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServeError(
                f"priority must be an int, got {priority!r}")
        request = resolve_request(request)
        from repro.workloads import ALL_WORKLOADS

        if request.workload not in ALL_WORKLOADS:
            raise ServeError(
                f"unknown workload {request.workload!r}; expected one "
                f"of: {', '.join(ALL_WORKLOADS)}")
        self.start()
        key = request.cache_key()
        with self._cond:
            if self._stopping:
                raise ServeError("service is shutting down; "
                                 "submission refused")
            seq = next(self._seq)
            job = Job(id=f"job-{seq:06d}", request=request,
                      priority=priority)
            self.counters["submitted"] += 1
            obs_events.emit("serve_enqueued", point=key, data={
                "job": job.id, "workload": request.workload,
                "priority": priority})

            cached = self.cache.get(request) \
                if self.cache is not None else None
            if cached is not None:
                job.state = "done"
                job.source = "cache"
                job.response = RunResponse(
                    result=cached, request=request, source="cache")
                self._jobs[job.id] = job
                self.counters["cache_hits"] += 1
                self.counters["completed"] += 1
                obs_events.emit("serve_cache_hit", point=key,
                                data={"job": job.id})
                self._cond.notify_all()
                return job.id

            primary_id = self._inflight.get(key)
            if primary_id is not None:
                primary = self._jobs[primary_id]
                job.primary = primary_id
                job.state = primary.state
                primary.followers.append(job.id)
                self._jobs[job.id] = job
                self.counters["coalesced"] += 1
                obs_events.emit("serve_coalesced", point=key, data={
                    "job": job.id, "primary": primary_id})
                return job.id

            if len(self._heap) >= self.max_queue_depth:
                self.counters["rejected"] += 1
                obs_events.emit("serve_rejected", point=key, data={
                    "job": job.id, "depth": len(self._heap),
                    "limit": self.max_queue_depth})
                raise QueueFullError(len(self._heap),
                                     self.max_queue_depth)

            self._jobs[job.id] = job
            self._inflight[key] = job.id
            heapq.heappush(self._heap, (-priority, seq, job.id))
            obs_events.emit("serve_scheduled", point=key, data={
                "job": job.id, "depth": len(self._heap)})
            self._cond.notify()
            return job.id

    # ------------------------------------------------------------------
    # Introspection / retrieval
    # ------------------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServeError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """A JSON-compatible snapshot of one job's state."""
        with self._lock:
            return self._job(job_id).snapshot()

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job is terminal (or ``timeout``); returns it.

        The returned :class:`Job` may still be non-terminal when the
        timeout elapsed first — check :attr:`Job.done`.
        """
        with self._cond:
            job = self._job(job_id)
            self._cond.wait_for(lambda: job.done, timeout=timeout)
            return job

    def result(self, job_id: str,
               timeout: float | None = None) -> RunResponse:
        """The job's :class:`~repro.spec.RunResponse` (blocking).

        Raises :class:`~repro.errors.ServeError` when the job failed
        or when ``timeout`` elapsed first.
        """
        job = self.wait(job_id, timeout=timeout)
        if job.state == "failed":
            raise ServeError(f"job {job_id} failed: {job.error}")
        if job.response is None:
            raise ServeError(
                f"job {job_id} did not complete within "
                f"{timeout if timeout is not None else 0:g}s "
                f"(state {job.state!r})")
        return job.response

    def stats(self) -> dict:
        """Service counters plus live queue state (JSON-compatible)."""
        with self._lock:
            stats = dict(self.counters)
            stats["queue_depth"] = len(self._heap)
            stats["inflight"] = len(self._inflight)
            stats["jobs"] = len(self._jobs)
        if self.cache is not None:
            stats["cache"] = {
                "hits": self.cache.hits, "misses": self.cache.misses,
                "stores": self.cache.stores,
                "refused": self.cache.refused,
                "quarantined": self.cache.quarantined}
        return stats

    def telemetry(self) -> TelemetryNode:
        """The service's counters as a telemetry (sub)tree."""
        with self._lock:
            counters = dict(self.counters)
            counters["queue_depth"] = len(self._heap)
            counters["inflight"] = len(self._inflight)
        children = []
        if self.cache is not None:
            children.append(self.cache.telemetry())
        return TelemetryNode(name="serve", counters=counters,
                             children=children)

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------

    def _execute(self, request: RunRequest) -> RunResponse:
        if self._executor is not None:
            return self._executor(request)
        from repro.api import execute

        return execute(request)

    def _worker(self) -> None:
        while True:
            with self._cond:
                self._cond.wait_for(
                    lambda: self._heap or self._stopping)
                if not self._heap:
                    return   # stopping and drained
                _, _, job_id = heapq.heappop(self._heap)
                job = self._jobs[job_id]
                job.state = "running"
                for follower_id in job.followers:
                    self._jobs[follower_id].state = "running"
                key = job.request.cache_key()
                obs_events.emit("serve_running", point=key,
                                data={"job": job.id})
            try:
                response = self._execute(job.request)
            except Exception as exc:  # noqa: BLE001 — reported, not fatal
                with self._cond:
                    self._fail_locked(
                        job, f"{type(exc).__name__}: {exc}")
                    self._cond.notify_all()
                continue
            if self.cache is not None:
                try:
                    self.cache.put(job.request, response.result)
                except OSError:
                    pass   # a read-only cache must not fail the job
            with self._cond:
                self.counters["simulations"] += 1
                self._complete_locked(job, response)
                self._cond.notify_all()

    def _complete_locked(self, job: Job, response: RunResponse) -> None:
        job.state = "done"
        job.source = response.source
        job.response = response
        self._inflight.pop(job.request.cache_key(), None)
        self.counters["completed"] += 1
        obs_events.emit("serve_done", point=job.request.cache_key(),
                        data={"job": job.id, "source": response.source,
                              "followers": len(job.followers)})
        for follower_id in job.followers:
            follower = self._jobs[follower_id]
            follower.state = "done"
            follower.source = "coalesced"
            follower.response = RunResponse(
                result=response.result, request=follower.request,
                source="coalesced", profile=response.profile)
            self.counters["completed"] += 1

    def _fail_locked(self, job: Job, error: str) -> None:
        job.state = "failed"
        job.error = error
        self._inflight.pop(job.request.cache_key(), None)
        self.counters["failed"] += 1
        obs_events.emit("serve_failed", point=job.request.cache_key(),
                        data={"job": job.id, "error": error})
        for follower_id in job.followers:
            follower = self._jobs[follower_id]
            follower.state = "failed"
            follower.error = error
            self.counters["failed"] += 1
