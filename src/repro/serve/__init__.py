"""Simulation service: daemon, content-addressed cache, typed client.

The serving layer turns the library's run API into a long-lived
process:

- :class:`~repro.serve.cache.ResultCache` — a content-addressed result
  store keyed by :meth:`~repro.spec.RunRequest.cache_key`, layered on
  the harness's :class:`~repro.harness.persist.ResultStore` (same
  atomic-write / checksum / quarantine discipline) and additionally
  refusing entries whose recorded result schema version does not match
  this build;
- :class:`~repro.serve.service.SimulationService` — the in-process
  scheduler: a priority queue with bounded admission (overflow raises
  :class:`~repro.errors.QueueFullError` instead of blocking),
  coalescing of identical in-flight requests (N concurrent submissions
  of one request run exactly one simulation), and cache-hit serving;
- :class:`~repro.serve.daemon.ServiceDaemon` — the stdlib HTTP facade
  (``repro serve``), speaking JSON over ``http.server``;
- :class:`~repro.serve.client.Client` — the blocking typed client
  (``repro submit`` / ``status`` / ``fetch``).

Every request transition is emitted to the ``repro.events/v1`` log
(``serve_enqueued`` → ``serve_coalesced`` / ``serve_cache_hit`` /
``serve_scheduled`` → ``serve_running`` → ``serve_done`` /
``serve_failed`` / ``serve_rejected``), correlated by job id and the
request's cache key.  See ``docs/serving.md``.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import Client
from repro.serve.daemon import ServiceDaemon
from repro.serve.service import Job, SimulationService

__all__ = [
    "ResultCache",
    "SimulationService",
    "ServiceDaemon",
    "Client",
    "Job",
]
