"""Content-addressed result cache for the simulation service.

:class:`ResultCache` subclasses the harness's
:class:`~repro.harness.persist.ResultStore`, so it inherits the
crash-safe write path wholesale: unique-temp-file + ``os.replace``
atomic writes, an embedded SHA-256 content checksum, and quarantine
(never deletion) of corrupt entries.  On top of that it:

- keys every entry by :meth:`~repro.spec.RunRequest.cache_key` — the
  same digest the memoizing runner and the sharded runner use, derived
  in one place (:mod:`repro.cachekey`), covering the canonical
  ``SimConfig.to_dict()``, the workload/trace identity, the execution
  variant, and the result schema version;
- records the originating request and this build's result schema
  version in the entry envelope, and **refuses** (quarantines) entries
  whose recorded ``schema_version`` does not match — a cache written
  by an older or newer build misses loudly instead of deserializing
  into subtly different results;
- counts hits / misses / stores / refusals for the service's
  telemetry tree.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CacheCorruptionError
from repro.harness.persist import ResultStore
from repro.sim import SimResult
from repro.sim.serialize import SCHEMA_VERSION
from repro.spec import RunRequest
from repro.stats.telemetry import TelemetryNode

__all__ = ["ResultCache"]


class ResultCache(ResultStore):
    """Request-keyed, schema-checked view over the result store."""

    def __init__(self, directory: str | Path):
        super().__init__(directory)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.refused = 0

    # ------------------------------------------------------------------
    # Envelope vetting (the ResultStore subclass hook)
    # ------------------------------------------------------------------

    def _check_envelope(self, path: Path, envelope: dict) -> None:
        """Refuse entries written under a different result schema.

        Raising :class:`~repro.errors.CacheCorruptionError` makes the
        base loader quarantine the file under ``<dir>/quarantine/``;
        the lookup then misses and the simulation re-runs.
        """
        version = envelope.get("schema_version")
        if version is not None and version != SCHEMA_VERSION:
            self.refused += 1
            raise CacheCorruptionError(
                str(path),
                f"result schema_version {version!r} does not match this "
                f"build's ({SCHEMA_VERSION}); entry quarantined")

    # ------------------------------------------------------------------
    # Request-keyed API
    # ------------------------------------------------------------------

    def get(self, request: RunRequest) -> SimResult | None:
        """The cached result for ``request``, or None (counted)."""
        result = self.load_key(request.cache_key())
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, request: RunRequest, result: SimResult) -> str:
        """Store ``result`` under ``request``'s key; returns the key.

        The envelope records the request's wire form and the result
        schema version, so an entry is self-describing for post-mortem
        and refusable on schema drift.
        """
        key = request.cache_key()
        self.store_key(key, result, meta={
            "schema_version": SCHEMA_VERSION,
            "request": request.to_dict(),
        })
        self.stores += 1
        return key

    def telemetry(self) -> TelemetryNode:
        """The cache's counters as one telemetry node."""
        return TelemetryNode(name="cache", counters={
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "refused": self.refused,
            "quarantined": self.quarantined,
        })
