"""Blocking typed client for the simulation service daemon.

Pure standard library (:mod:`http.client` + JSON).  The client speaks
the ``/v1`` protocol documented in :mod:`repro.serve.daemon` and
reconstructs full typed objects on receipt: a fetched job comes back
as a :class:`~repro.spec.RunResponse` whose ``result`` deserializes
through :func:`repro.sim.serialize.result_from_dict` — bit-identical
to the :class:`~repro.sim.results.SimResult` the daemon computed.

Error mapping: HTTP 429 raises
:class:`~repro.errors.QueueFullError`, any other non-success status
raises :class:`~repro.errors.ServeError` carrying the daemon's
``detail`` message.
"""

from __future__ import annotations

import http.client
import json
import re
from urllib.parse import quote

from repro.errors import QueueFullError, ServeError
from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT
from repro.sim.serialize import result_from_dict
from repro.spec import RunRequest, RunResponse

__all__ = ["Client"]


class Client:
    """One daemon endpoint; a fresh connection per call (stateless)."""

    def __init__(self, host: str = DEFAULT_HOST,
                 port: int = DEFAULT_PORT, *,
                 timeout: float = 630.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _call(self, method: str, path: str,
              body: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            headers = {"Content-Type": "application/json"} \
                if payload is not None else {}
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except OSError as exc:
                raise ServeError(
                    f"cannot reach the service at "
                    f"http://{self.host}:{self.port} ({exc})") from None
            try:
                document = json.loads(raw) if raw else {}
            except ValueError:
                raise ServeError(
                    f"service returned non-JSON ({response.status} "
                    f"{response.reason})") from None
            if response.status == 429:
                # Recover (depth, limit) from the daemon's detail line,
                # e.g. "service queue is full (16/16 requests pending)".
                detail = str(document.get("detail", ""))
                numbers = re.findall(r"(\d+)/(\d+)", detail)
                depth, limit = (map(int, numbers[0]) if numbers
                                else (0, 0))
                raise QueueFullError(depth, limit) from None
            if response.status >= 400:
                raise ServeError(
                    f"{method} {path} failed "
                    f"({response.status}): "
                    f"{document.get('detail', response.reason)}")
            return document
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def health(self) -> dict:
        """Liveness probe: ``{"ok": true, "version": ...}``."""
        return self._call("GET", "/v1/health")

    def submit(self, request: RunRequest, *, priority: int = 0) -> str:
        """Submit one request; returns the job id.

        Raises :class:`~repro.errors.QueueFullError` when the daemon's
        admission queue is at capacity.
        """
        document = self._call("POST", "/v1/submit", body={
            "request": request.to_dict(), "priority": priority})
        return document["job"]

    def status(self, job_id: str) -> dict:
        """The job's state snapshot (see ``Job.snapshot``)."""
        return self._call("GET", f"/v1/status/{quote(job_id)}")

    def fetch(self, job_id: str, *, wait: float = 0.0) -> RunResponse:
        """The job's typed response, blocking up to ``wait`` seconds.

        Raises :class:`~repro.errors.ServeError` when the job failed
        or is still pending after ``wait``.
        """
        document = self._call(
            "GET", f"/v1/result/{quote(job_id)}?wait={wait:g}")
        return RunResponse(
            result=result_from_dict(document["result"]),
            request=RunRequest.from_dict(document["request"]),
            source=document.get("source", "computed"),
            profile=document.get("profile"),
        )

    def run(self, request: RunRequest, *, priority: int = 0,
            wait: float = 600.0) -> RunResponse:
        """Submit and block for the response (the one-call form)."""
        return self.fetch(self.submit(request, priority=priority),
                          wait=wait)

    def stats(self) -> dict:
        """Service + cache counters."""
        return self._call("GET", "/v1/stats")

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit."""
        self._call("POST", "/v1/shutdown")
