"""The HTTP facade of the simulation service (``repro serve``).

Pure standard library: a :class:`http.server.ThreadingHTTPServer`
speaking JSON, wrapping one :class:`~repro.serve.service.
SimulationService`.  The wire protocol (all bodies JSON):

==========================  ==========================================
endpoint                    behavior
==========================  ==========================================
``GET  /v1/health``         liveness + package version
``POST /v1/submit``         body ``{"request": <RunRequest.to_dict()>,
                            "priority": 0}`` → ``{"job": id}``;
                            **429** when the queue is full, 400 for a
                            malformed request
``GET  /v1/status/<job>``   the job's state snapshot; 404 unknown
``GET  /v1/result/<job>``   blocks up to ``?wait=<seconds>`` (default
                            0) for the response; 200 carries
                            ``{"source", "request", "result",
                            "profile"}``; **408** not done in time,
                            **500** when the job failed
``GET  /v1/stats``          service + cache counters
``POST /v1/shutdown``       graceful drain and exit
==========================  ==========================================

Every error body is ``{"error": <type>, "detail": <message>}``.
Results travel as :func:`repro.sim.serialize.result_to_dict` payloads,
so a served result round-trips bit-identically through the client.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.errors import ConfigError, QueueFullError, ReproError, ServeError
from repro.serve.service import SimulationService
from repro.sim.serialize import result_to_dict
from repro.spec import RunRequest

__all__ = ["ServiceDaemon", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"

#: Default listening port of ``repro serve`` (and the client's default).
DEFAULT_PORT = 8357

#: Longest ``?wait=`` a single result poll may hold a connection open.
MAX_WAIT_SECONDS = 600.0


class _Handler(BaseHTTPRequestHandler):
    """One request; the service lives on the server object."""

    protocol_version = "HTTP/1.1"
    server: "_Server"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass   # the event log is the observability channel, not stderr

    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc: Exception) -> None:
        self._send(status, {"error": type(exc).__name__,
                            "detail": str(exc)})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise ServeError(f"request body is not valid JSON ({exc})") \
                from None
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server's contract
        service = self.server.service
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "health"]:
                import repro

                self._send(200, {"ok": True,
                                 "version": repro.__version__})
            elif len(parts) == 3 and parts[:2] == ["v1", "status"]:
                self._send(200, service.status(parts[2]))
            elif len(parts) == 3 and parts[:2] == ["v1", "result"]:
                self._result(service, parts[2],
                             parse_qs(url.query))
            elif parts == ["v1", "stats"]:
                self._send(200, service.stats())
            else:
                self._send(404, {"error": "NotFound",
                                 "detail": f"no route {url.path!r}"})
        except ServeError as exc:
            status = 404 if "unknown job" in str(exc) else 400
            self._error(status, exc)
        except ReproError as exc:
            self._error(400, exc)

    def do_POST(self) -> None:  # noqa: N802 — http.server's contract
        service = self.server.service
        parts = [p for p in urlparse(self.path).path.split("/") if p]
        try:
            if parts == ["v1", "submit"]:
                body = self._body()
                request = RunRequest.from_dict(body.get("request"))
                priority = body.get("priority", 0)
                job_id = service.submit(request, priority=priority)
                self._send(202, {"job": job_id,
                                 "state": service.status(job_id)["state"]})
            elif parts == ["v1", "shutdown"]:
                self._send(200, {"ok": True})
                self.server.request_shutdown()
            else:
                self._send(404, {"error": "NotFound",
                                 "detail": f"no route {self.path!r}"})
        except QueueFullError as exc:
            self._error(429, exc)
        except (ConfigError, ServeError) as exc:
            self._error(400, exc)
        except ReproError as exc:
            self._error(400, exc)

    def _result(self, service: SimulationService, job_id: str,
                query: dict) -> None:
        try:
            wait = float(query.get("wait", ["0"])[0])
        except ValueError:
            raise ServeError(
                f"wait must be a number of seconds, "
                f"got {query.get('wait')[0]!r}") from None
        wait = max(0.0, min(wait, MAX_WAIT_SECONDS))
        job = service.wait(job_id, timeout=wait)
        snapshot = service.status(job_id)
        if job.state == "failed":
            self._send(500, {"error": "JobFailed", "detail": job.error,
                             "status": snapshot})
            return
        if not job.done:
            self._send(408, {"error": "NotReady",
                             "detail": f"job {job_id} still "
                                       f"{job.state} after {wait:g}s",
                             "status": snapshot})
            return
        response = job.response
        assert response is not None
        self._send(200, {
            "job": job_id,
            "source": response.source,
            "request": response.request.to_dict(),
            "result": result_to_dict(response.result),
            "profile": response.profile,
        })


class _Server(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address: tuple[str, int],
                 service: SimulationService):
        super().__init__(address, _Handler)
        self.service = service
        self._shutdown_requested = threading.Event()

    def request_shutdown(self) -> None:
        self._shutdown_requested.set()
        # shutdown() must come from another thread; serve_forever()'s
        # own thread would deadlock joining itself.
        threading.Thread(target=self.shutdown, daemon=True).start()


class ServiceDaemon:
    """One service bound to one listening socket.

    ``port=0`` binds an ephemeral port (the bound address is on
    :attr:`address` immediately after construction — how the smoke
    test and the CLI's startup line discover it).  :meth:`serve_forever`
    blocks until a ``POST /v1/shutdown`` or :meth:`stop`;
    :meth:`start_background` runs the accept loop on a daemon thread
    for in-process tests.
    """

    def __init__(self, service: SimulationService | None = None, *,
                 host: str = DEFAULT_HOST, port: int = 0, **kwargs):
        self.service = service or SimulationService(**kwargs)
        self._server = _Server((host, port), self.service)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the accept loop on this thread until shut down."""
        self.service.start()
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._server.server_close()
            self.service.shutdown(wait=True)

    def start_background(self) -> None:
        """Run the accept loop on a daemon thread (tests, tooling)."""
        self.service.start()
        def loop() -> None:
            try:
                self._server.serve_forever(poll_interval=0.1)
            finally:
                # A remote /v1/shutdown lands here too: release the
                # socket and drain the service exactly like the
                # foreground path does.
                self._server.server_close()
                self.service.shutdown(wait=True)

        self._thread = threading.Thread(
            target=loop, name="repro-serve-http", daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop accepting, drain the service, release the socket."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._server.server_close()
        self.service.shutdown(wait=True)
