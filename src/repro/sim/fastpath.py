"""Idle-cycle stall proofs shared by the fast and event cycle engines.

A trace-driven run spends most of its cycles with every component
stalled: fetch blocked on a fill, the prediction unit blocked on a full
FTQ (or an L2-FTB promotion, or an unresolved misprediction), the
prefetcher with nothing queued.  Each such cycle does nothing but bump
one stall counter per stalled component and record an (unchanged) FTQ
occupancy sample.

:func:`stall_proof` recognises exactly those cycles *by proof*, not by
heuristic: it succeeds only when every component's next tick is known
to be a pure stall-counter bump, and collects each component's
self-scheduled wake bound through the uniform
:meth:`~repro.component.Component.next_wake_cycle` contract:

- the next memory fill completion (``MemorySystem.next_wake_cycle``),
- the next backend instruction completion (``Backend.next_wake_cycle``),
- the scheduled branch-resolution cycle,
- the cycle fetch's pending demand fill lands
  (``FetchEngine.next_wake_cycle``),
- the cycle a pending L2-FTB promotion completes
  (``PredictUnit.next_wake_cycle``).

:func:`plan_skip` (the fast engine's entry point) combines the proof
with the prefetcher's quiescence declaration and the earliest wake
bound into a :class:`SkipPlan`; the simulator then jumps the clock to
one cycle before that bound and batch-applies the per-cycle bookkeeping
the naive loop would have done (the stall counters, the occupancy
samples, the prefetcher's internal clock), making all engines
**bit-identical** — the same ``SimResult``, counter for counter.  The
event engine (``sim/events.py``) reuses the same proof but orders the
two jump gates adaptively and the wake bounds through its
:class:`~repro.sim.events.WakeCalendar`.  The equivalence matrix lives
in ``tests/test_fast_loop_equivalence.py``; the invariants each
component must uphold are documented in ``docs/performance.md``.

Why each gate is sound, in cycle-schedule order:

1. ``memory.begin_cycle`` only completes fills due this cycle; with the
   skip bounded by the memory wake no fill is due in the window.
2. ``backend.retire`` retires nothing before ``next_completion``; a
   non-empty window bumps ``retire_stall_cycles`` once per cycle.
3. Resolution is bounded by ``_resolve_at``.
4. The fetch engine, when stalled, bumps exactly one of
   ``miss_stall_cycles`` / ``ftq_empty_cycles`` / ``window_stall_cycles``
   and returns.  Its stall cannot clear mid-window: the fill bound, the
   FTQ (nobody pushes — predict is stalled too), and the backend window
   (no retirement before ``next_completion``) are all pinned.
5. The prediction unit checks FTQ-full *before* the L2-FTB wait, so a
   full FTQ contributes no wait bound; the other stall states bound or
   pin themselves the same way.  Running out of trace records is a
   silent no-op (no counter).
6. The prefetcher must declare itself :meth:`~repro.prefetch.base.
   Prefetcher.quiescent` — with no demand accesses, fills, or FTQ pushes
   in the window, quiescence is stable until the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.simulator import Simulator

__all__ = ["SkipPlan", "stall_proof", "plan_skip"]


@dataclass(slots=True)
class SkipPlan:
    """A provably idle window and the bookkeeping it owes."""

    target: int               # first cycle at which anything can change
    cycles: int               # skipped cycles: target - current - 1
    fetch_counter: str        # fetch stall counter to bump per cycle
    predict_counter: str | None   # predict stall counter (None: silent)
    retire_stalled: bool      # backend window non-empty in the window


def stall_proof(sim: "Simulator", cycle: int):
    """Prove that no component except the prefetcher can do real work.

    Returns ``(fetch_counter, predict_counter, retire_stalled, wakes)``
    when every non-prefetch component's next tick is a pure
    stall-counter bump, or None when any of them could do real work
    next cycle.  ``wakes`` is a list of ``(cycle, source)`` wake bounds
    gathered through each component's
    :meth:`~repro.component.Component.next_wake_cycle` contract — the
    earliest of them is the first cycle at which anything can change.

    The prefetcher is deliberately excluded: callers combine the proof
    with :meth:`~repro.prefetch.base.Prefetcher.quiescent` in the order
    that is cheapest for their engine (the fast engine checks it last,
    the event engine adapts the order to the workload).
    """
    # Failure checks run before any wake collection so a rejected
    # attempt (the common case on busy stretches) allocates nothing.

    # --- fetch engine ------------------------------------------------
    fetch_wake = sim.fetch_engine.next_wake_cycle(cycle)
    if fetch_wake is not None:
        fetch_counter = "miss_stall_cycles"
    else:
        head = sim.ftq.head()
        if head is None:
            fetch_counter = "ftq_empty_cycles"
        elif ((not head.wrong_path or sim.config.core.wrong_path_in_window)
                and sim.backend.free_slots <= 0):
            fetch_counter = "window_stall_cycles"
        else:
            return None   # fetch would access the memory system

    # --- prediction unit ---------------------------------------------
    predict = sim.predict_unit
    predict_wake = None
    if sim.ftq.full:
        # tick checks FTQ-full before the L2-FTB wait, so a pending
        # promotion neither clears nor bounds anything while full.
        predict_counter: str | None = "ftq_full_stalls"
    else:
        predict_wake = predict.next_wake_cycle(cycle)
        if predict_wake is not None:
            predict_counter = "ftb_l2_stall_cycles"
        elif predict.awaiting_resolution:
            if sim.config.frontend.model_wrong_path:
                return None   # producing wrong-path blocks every cycle
            predict_counter = "mispredict_stall_cycles"
        elif predict.out_of_records:
            predict_counter = None   # exhausted trace: silent no-op
        else:
            return None   # would produce a fetch block

    # --- self-scheduled progress bounds -------------------------------
    wakes: list[tuple[int, str]] = []
    if fetch_wake is not None:
        wakes.append((fetch_wake, "fetch.fill"))
    if predict_wake is not None:
        wakes.append((predict_wake, "predict.ftb_l2"))
    wake = sim.memory.next_wake_cycle(cycle)
    if wake is not None:
        wakes.append((wake, "memory.fill"))
    wake = sim.backend.next_wake_cycle(cycle)
    retire_stalled = wake is not None
    if retire_stalled:
        wakes.append((wake, "backend.completion"))
    if sim._resolve_at is not None:
        wakes.append((sim._resolve_at, "resolution"))

    return fetch_counter, predict_counter, retire_stalled, wakes


def plan_skip(sim: "Simulator", cycle: int,
              max_cycles: int) -> SkipPlan | None:
    """Plan a jump from ``cycle`` over provably idle cycles.

    Returns None when any component could do real work next cycle.  The
    returned plan never jumps past ``max_cycles + 1``, so the cycle-cap
    deadlock error fires with identical state to the naive loop; a fully
    deadlocked machine (no bound at all) jumps straight to the cap.
    """
    proof = stall_proof(sim, cycle)
    if proof is None:
        return None
    fetch_counter, predict_counter, retire_stalled, wakes = proof

    # --- prefetch engine ----------------------------------------------
    if not sim.prefetcher.quiescent(sim.ftq):
        return None

    target = min(w for w, _ in wakes) if wakes else max_cycles + 1
    if target > max_cycles + 1:
        target = max_cycles + 1
    skipped = target - cycle - 1
    if skipped <= 0:
        return None
    return SkipPlan(target=target, cycles=skipped,
                    fetch_counter=fetch_counter,
                    predict_counter=predict_counter,
                    retire_stalled=retire_stalled)
