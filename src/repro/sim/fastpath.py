"""Idle-cycle skip planning for the fast-path cycle engine.

A trace-driven run spends most of its cycles with every component
stalled: fetch blocked on a fill, the prediction unit blocked on a full
FTQ (or an L2-FTB promotion, or an unresolved misprediction), the
prefetcher with nothing queued.  Each such cycle does nothing but bump
one stall counter per stalled component and record an (unchanged) FTQ
occupancy sample.

:func:`plan_skip` recognises exactly those cycles *by proof*, not by
heuristic: it returns a plan only when every component's next tick is
known to be a pure stall-counter bump, and computes the earliest future
cycle at which anything can change:

- the next memory fill completion (``MemorySystem.next_event_cycle``),
- the next backend instruction completion (``Backend.next_completion``),
- the scheduled branch-resolution cycle,
- the cycle fetch's pending demand fill lands (``waiting_until``),
- the cycle a pending L2-FTB promotion completes (``ftb_wait_until``).

The simulator then jumps the clock to one cycle before that bound and
batch-applies the per-cycle bookkeeping the naive loop would have done
(the stall counters, the occupancy samples, the prefetcher's internal
clock), making fast and naive runs **bit-identical** — the same
``SimResult``, counter for counter.  The equivalence matrix lives in
``tests/test_fast_loop_equivalence.py``; the invariants each component
must uphold are documented in ``docs/performance.md``.

Why each gate is sound, in cycle-schedule order:

1. ``memory.begin_cycle`` only completes fills due this cycle; with the
   skip bounded by ``next_event_cycle`` no fill is due in the window.
2. ``backend.retire`` retires nothing before ``next_completion``; a
   non-empty window bumps ``retire_stall_cycles`` once per cycle.
3. Resolution is bounded by ``_resolve_at``.
4. The fetch engine, when stalled, bumps exactly one of
   ``miss_stall_cycles`` / ``ftq_empty_cycles`` / ``window_stall_cycles``
   and returns.  Its stall cannot clear mid-window: the fill bound, the
   FTQ (nobody pushes — predict is stalled too), and the backend window
   (no retirement before ``next_completion``) are all pinned.
5. The prediction unit checks FTQ-full *before* the L2-FTB wait, so a
   full FTQ contributes no wait bound; the other stall states bound or
   pin themselves the same way.  Running out of trace records is a
   silent no-op (no counter).
6. The prefetcher must declare itself :meth:`~repro.prefetch.base.
   Prefetcher.quiescent` — with no demand accesses, fills, or FTQ pushes
   in the window, quiescence is stable until the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.simulator import Simulator

__all__ = ["SkipPlan", "plan_skip"]


@dataclass(slots=True)
class SkipPlan:
    """A provably idle window and the bookkeeping it owes."""

    target: int               # first cycle at which anything can change
    cycles: int               # skipped cycles: target - current - 1
    fetch_counter: str        # fetch stall counter to bump per cycle
    predict_counter: str | None   # predict stall counter (None: silent)
    retire_stalled: bool      # backend window non-empty in the window


def plan_skip(sim: "Simulator", cycle: int,
              max_cycles: int) -> SkipPlan | None:
    """Plan a jump from ``cycle`` over provably idle cycles.

    Returns None when any component could do real work next cycle.  The
    returned plan never jumps past ``max_cycles + 1``, so the cycle-cap
    deadlock error fires with identical state to the naive loop; a fully
    deadlocked machine (no bound at all) jumps straight to the cap.
    """
    bounds = []

    # --- fetch engine ------------------------------------------------
    fetch = sim.fetch_engine
    waiting = fetch.waiting_until
    if waiting is not None:
        fetch_counter = "miss_stall_cycles"
        bounds.append(waiting)
    else:
        head = sim.ftq.head()
        if head is None:
            fetch_counter = "ftq_empty_cycles"
        elif ((not head.wrong_path or sim.config.core.wrong_path_in_window)
                and sim.backend.free_slots <= 0):
            fetch_counter = "window_stall_cycles"
        else:
            return None   # fetch would access the memory system

    # --- prediction unit ---------------------------------------------
    predict = sim.predict_unit
    if sim.ftq.full:
        # tick checks FTQ-full before the L2-FTB wait, so a pending
        # promotion neither clears nor bounds anything while full.
        predict_counter = "ftq_full_stalls"
    else:
        ftb_wait = predict.ftb_wait_until
        if ftb_wait is not None:
            predict_counter = "ftb_l2_stall_cycles"
            bounds.append(ftb_wait)
        elif predict.awaiting_resolution:
            if sim.config.frontend.model_wrong_path:
                return None   # producing wrong-path blocks every cycle
            predict_counter = "mispredict_stall_cycles"
        elif predict.out_of_records:
            predict_counter = None   # exhausted trace: silent no-op
        else:
            return None   # would produce a fetch block

    # --- prefetch engine ----------------------------------------------
    if not sim.prefetcher.quiescent(sim.ftq):
        return None

    # --- progress bounds ----------------------------------------------
    next_fill = sim.memory.next_event_cycle
    if next_fill is not None:
        bounds.append(next_fill)
    next_completion = sim.backend.next_completion
    if next_completion is not None:
        bounds.append(next_completion)
    if sim._resolve_at is not None:
        bounds.append(sim._resolve_at)

    target = min(bounds) if bounds else max_cycles + 1
    if target > max_cycles + 1:
        target = max_cycles + 1
    skipped = target - cycle - 1
    if skipped <= 0:
        return None
    return SkipPlan(target=target, cycles=skipped,
                    fetch_counter=fetch_counter,
                    predict_counter=predict_counter,
                    retire_stalled=next_completion is not None)
