"""SimResult (de)serialization.

Used by the persistent result cache and by users exporting runs.  JSON
object keys for the histogram fields are stringified integers (JSON has
no int keys); round-tripping restores them.

Payloads carry a ``schema_version``:

- (absent) / 1 — the pre-telemetry flat form.  Still accepted; such
  results load with ``telemetry=None``.
- 2 — adds the full hierarchical telemetry snapshot under the
  ``telemetry`` key (see :mod:`repro.stats.telemetry` for its own
  nested ``schema`` tag) plus the version field itself.

Readers reject payloads from a *newer* schema rather than guessing.
"""

from __future__ import annotations

import dataclasses
import json

from repro.errors import ReproError
from repro.sim.results import SimResult
from repro.stats.telemetry import TelemetrySnapshot

__all__ = ["SCHEMA_VERSION", "result_to_dict", "result_from_dict",
           "result_to_json", "result_from_json"]

SCHEMA_VERSION = 2

_INT_KEY_FIELDS = ("ftq_occupancy_hist", "fetch_block_hist",
                   "prefetch_lead_hist")


def result_to_dict(result: SimResult) -> dict:
    """Plain-dict form of a result (JSON compatible)."""
    payload = {field.name: getattr(result, field.name)
               for field in dataclasses.fields(result)
               if field.name != "telemetry"}
    payload["counters"] = dict(result.counters)
    for field in _INT_KEY_FIELDS:
        payload[field] = {str(k): v for k, v in payload[field].items()}
    payload["telemetry"] = (result.telemetry.to_dict()
                            if result.telemetry is not None else None)
    payload["schema_version"] = SCHEMA_VERSION
    return payload


def result_from_dict(payload: dict) -> SimResult:
    """Inverse of :func:`result_to_dict`.

    Accepts both current payloads and version-1 (pre-telemetry) ones;
    the latter deserialize with ``telemetry=None``.
    """
    data = dict(payload)
    version = data.pop("schema_version", 1)
    if not isinstance(version, int) or version < 1:
        raise ReproError(
            f"malformed serialized SimResult: bad schema_version "
            f"{version!r}")
    if version > SCHEMA_VERSION:
        raise ReproError(
            f"serialized SimResult has schema_version {version}, newer "
            f"than the supported {SCHEMA_VERSION}; upgrade repro to "
            f"read it")
    telemetry_payload = data.pop("telemetry", None)
    try:
        for field in _INT_KEY_FIELDS:
            data[field] = {int(k): v for k, v in data.get(field,
                                                          {}).items()}
        telemetry = (TelemetrySnapshot.from_dict(telemetry_payload)
                     if telemetry_payload is not None else None)
        return SimResult(**data, telemetry=telemetry)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed serialized SimResult: {exc}") from exc


def result_to_json(result: SimResult) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def result_from_json(text: str) -> SimResult:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed result JSON: {exc}") from exc
    return result_from_dict(payload)
