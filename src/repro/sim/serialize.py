"""SimResult (de)serialization.

Used by the persistent result cache and by users exporting runs.  JSON
object keys for the histogram fields are stringified integers (JSON has
no int keys); round-tripping restores them.
"""

from __future__ import annotations

import dataclasses
import json

from repro.errors import ReproError
from repro.sim.results import SimResult

__all__ = ["result_to_dict", "result_from_dict", "result_to_json",
           "result_from_json"]

_INT_KEY_FIELDS = ("ftq_occupancy_hist", "fetch_block_hist",
                   "prefetch_lead_hist")


def result_to_dict(result: SimResult) -> dict:
    """Plain-dict form of a result (JSON compatible)."""
    payload = dataclasses.asdict(result)
    for field in _INT_KEY_FIELDS:
        payload[field] = {str(k): v for k, v in payload[field].items()}
    return payload


def result_from_dict(payload: dict) -> SimResult:
    """Inverse of :func:`result_to_dict`."""
    data = dict(payload)
    try:
        for field in _INT_KEY_FIELDS:
            data[field] = {int(k): v for k, v in data.get(field,
                                                          {}).items()}
        return SimResult(**data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed serialized SimResult: {exc}") from exc


def result_to_json(result: SimResult) -> str:
    return json.dumps(result_to_dict(result), sort_keys=True)


def result_from_json(text: str) -> SimResult:
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"malformed result JSON: {exc}") from exc
    return result_from_dict(payload)
