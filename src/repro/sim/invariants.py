"""Post-run consistency checking.

:func:`check_invariants` cross-validates a finished run's counters: the
relationships below must hold for *any* workload and configuration (they
are structural properties of the simulator, not of the modeled machine).
The test suite runs them after every end-to-end simulation; users can run
them after their own experiments as a cheap sanity guard when modifying
the simulator.

Warm-up complicates a few relationships (statistics reset mid-run while
structures stay warm), so each check documents whether it tolerates
warm-up.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.results import SimResult

__all__ = ["check_invariants", "guard_invariants", "InvariantViolation"]


class InvariantViolation(SimulationError, AssertionError):
    """A structural counter relationship failed.

    Derives from :class:`~repro.errors.SimulationError` so the sweep
    executor (and any ``except ReproError`` handler) sees it as a
    structured library failure, and from ``AssertionError`` for backward
    compatibility with callers treating it as an assertion.

    ``violations`` carries the individual failed relationships and
    ``context`` an optional label (e.g. the workload) — diagnostics that
    survive pickling out of a worker process.
    """

    def __init__(self, violations: list[str] | str, context: str = ""):
        if isinstance(violations, str):
            violations = [violations]
        self.violations = list(violations)
        self.context = context
        message = "; ".join(self.violations)
        if context:
            message = f"{context}: {message}"
        super().__init__(message)

    def __reduce__(self):
        return (type(self), (self.violations, self.context))


def _check(condition: bool, message: str,
           violations: list[str]) -> None:
    if not condition:
        violations.append(message)


def check_invariants(result: SimResult,
                     warmed_up: bool = False) -> list[str]:
    """Return a list of violated invariants (empty = consistent).

    ``warmed_up`` must be True when the run used warm-up, which relaxes
    the relationships that statistics resets break.
    """
    violations: list[str] = []
    get = result.get

    # Retirement and delivery.
    _check(get("backend.retired") == result.instructions,
           "retired != measured instructions", violations)
    _check(get("fetch.instrs_delivered") == get("backend.delivered"),
           "fetch and backend disagree on deliveries", violations)
    if warmed_up:
        # Instructions delivered before the statistics reset retire
        # after it; the discrepancy is bounded by the window size.
        _check(get("backend.retired") - get("backend.delivered") <= 1024,
               "retired exceeds delivered beyond any window size",
               violations)
    else:
        _check(get("backend.delivered") >= get("backend.retired"),
               "retired more than delivered", violations)

    # Mispredict / squash / resolution bookkeeping.  At most one
    # misprediction is outstanding at a time, so with warm-up (where the
    # pending mispredict can straddle the statistics reset) the counters
    # may disagree by exactly one.
    if warmed_up:
        _check(abs(get("predict.mispredicts")
                   - get("predict.resolutions")) <= 1,
               "mispredict/resolution imbalance beyond the single "
               "outstanding mispredict", violations)
    else:
        _check(get("predict.mispredicts") == get("predict.resolutions"),
               "unresolved mispredicts at end of run", violations)
    _check(get("sim.squashes") == get("predict.resolutions"),
           "squash count != resolution count", violations)

    # Memory-system conservation.
    _check(get("mem.demand_misses") <= get("mem.demand_accesses"),
           "more demand misses than accesses", violations)
    _check(get("l1i.evictions") <= get("l1i.fills"),
           "L1-I evicted more blocks than it filled", violations)
    _check(get("l2.evictions") <= get("l2.fills"),
           "L2 evicted more blocks than it filled", violations)
    _check(get("mshr.demand_merges") >= get("mshr.late_prefetch_merges"),
           "late-prefetch merges exceed total merges", violations)

    # Bus accounting: transfers all have equal occupancy, so the busy
    # cycle total must divide evenly among them.
    transfers = (get("bus.demand_transfers")
                 + get("bus.prefetch_transfers"))
    busy = get("bus.busy_cycles")
    if transfers == 0:
        _check(busy == 0, "bus busy with zero transfers", violations)
    else:
        _check(busy % transfers == 0,
               "bus busy cycles not a multiple of transfers", violations)
    _check(0.0 <= result.bus_utilization <= 1.0,
           "bus utilization out of [0, 1]", violations)

    # Prefetch accounting (exact only without warm-up resets).
    if not warmed_up:
        _check(result.prefetches_useful <= result.prefetches_issued,
               "more useful prefetches than issued", violations)
        _check(get("pbuf.evicted_unused") + get("pbuf.useful_hits")
               <= get("pbuf.fills") + get("pbuf.duplicate_fills") + 64,
               "prefetch buffer conservation failed", violations)

    # RAS conservation.
    _check(get("ras.pops") <= get("ras.pushes")
           + get("ras.underflows") + get("ras.restores") * 64,
           "RAS popped far more than pushed", violations)

    # FTQ conservation: every push is popped or squashed (the FTQ is
    # empty at end of run except for trailing unfetched blocks).  With
    # warm-up, entries pushed before the reset pop after it, so the
    # imbalance is bounded by the queue depth instead.
    imbalance = (get("ftq.pops") + get("ftq.squashed_entries")
                 - get("ftq.pushes"))
    if warmed_up:
        _check(imbalance <= 256,
               "FTQ imbalance beyond any queue depth", violations)
    else:
        _check(imbalance <= 0,
               "FTQ popped/squashed more than pushed", violations)

    return violations


def guard_invariants(result: SimResult, warmed_up: bool = False,
                     context: str = "") -> SimResult:
    """Runtime guard: validate ``result`` and return it.

    On violation raises :class:`InvariantViolation` carrying the full
    violation list and ``context`` as structured diagnostics — so a sweep
    worker surfaces a *classifiable* failure (the supervisor records the
    point as failed-with-diagnostics) instead of a bare ``AssertionError``
    escaping the process.
    """
    violations = check_invariants(result, warmed_up=warmed_up)
    if violations:
        raise InvariantViolation(violations, context=context)
    return result


def assert_invariants(result: SimResult, warmed_up: bool = False) -> None:
    """Raise :class:`InvariantViolation` on the first failure."""
    guard_invariants(result, warmed_up=warmed_up)
