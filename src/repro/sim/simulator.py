"""The cycle-level simulator: wires the front end, memory, and backend.

Per-cycle schedule (one iteration of :meth:`Simulator.run`):

1. memory: complete fills due this cycle, reset the tag-port budget;
2. backend: retire completed instructions (frees window slots);
3. resolution: if the pending mispredicted branch resolves this cycle,
   squash (FTQ, PIQ, in-progress fetch) and redirect the prediction unit;
4. fetch engine: one demand access, deliver instructions;
5. prediction unit: produce one fetch block into the FTQ;
6. prefetch engine: scan/filter/issue.

The run ends when every trace record has retired.  ``warmup_instructions``
resets all statistics once that many instructions have retired, so reported
numbers cover only the measured region (caches, predictors, and the FTB
stay warm).
"""

from __future__ import annotations

from typing import Callable

from repro.bpred import ReturnAddressStack, make_direction_predictor
from repro.component import Component
from repro.config import ENGINES, SimConfig
from repro.cpu import Backend
from repro.errors import ConfigError, SimulationError, WatchdogStallError
from repro.frontend import FetchEngine, FetchTargetQueue, FTQEntry, \
    PredictUnit
from repro.ftb import FetchTargetBuffer, TwoLevelFTB
from repro.memory import MemorySystem
from repro.obs import events as obs_events
from repro.obs.profile import CycleProfiler
# Re-exported for backward compatibility: kind resolution now lives in
# the prefetcher registry (see repro/prefetch/__init__.py).
from repro.prefetch import make_prefetcher  # noqa: F401
from repro.sim.fastpath import plan_skip
from repro.sim.results import SimResult
from repro.stats import IntervalSampler, IntervalSeries, \
    RunLengthObserver, StatGroup, TelemetryNode, TelemetrySnapshot
from repro.trace import Trace

__all__ = ["Simulator", "make_prefetcher"]

_DEFAULT_CYCLE_CAP_PER_INSTR = 200

# Fast-engine fallback (see run()): probe the skip ratio over the
# first telemetry window (or this many cycles when interval telemetry
# is off) and latch to the naive loop when the skip machinery is
# provably not winning — per-cycle failed proofs are pure overhead.
# The two thresholds give the probe hysteresis: below MIN it falls
# back (one-way latch, logged as an ``engine_fallback`` event); at or
# above KEEP it stops probing; in between it keeps re-probing
# window by window.
_FALLBACK_PROBE_WINDOW = 4096
_FALLBACK_MIN_RATIO = 0.01
_FALLBACK_KEEP_RATIO = 0.05


class Simulator:
    """One configured machine, ready to run one trace.

    Everything beyond the trace and config is keyword-only:

    - ``name`` labels the result (defaults to the trace's name);
    - ``tracer`` attaches a per-cycle pipeline tracer (forces the
      naive loop — a tracer observes every cycle by definition);
    - ``engine`` overrides ``config.engine`` for this run: one of
      ``"naive"``, ``"fast"``, ``"event"``.  All three are
      bit-identical (see ``docs/performance.md``, "Engine selection");
    - ``fast_loop`` is the deprecated pre-``engine`` override, kept
      for one release: True selects the fast engine, False the naive
      loop.  ``engine`` wins when both are given.
    """

    def __init__(self, trace: Trace, config: SimConfig, *,
                 name: str | None = None, tracer=None,
                 fast_loop: bool | None = None,
                 engine: str | None = None):
        if config.max_instructions is not None \
                and config.max_instructions < len(trace):
            trace = trace.slice(0, config.max_instructions)
        self._warm_records = []
        if config.fast_forward_instructions > 0:
            cut = min(config.fast_forward_instructions, len(trace) - 1)
            self._warm_records = trace.records[:cut]
            trace = trace.slice(cut, len(trace))
        self.trace = trace
        self.config = config
        self.name = name or trace.name
        self.stats = StatGroup("sim")

        predictor_cfg = config.frontend.predictor
        self.predictor = make_direction_predictor(predictor_cfg)
        self.ras = ReturnAddressStack(predictor_cfg.ras_depth)
        if predictor_cfg.ftb_l2_sets:
            self.ftb = TwoLevelFTB(
                predictor_cfg.ftb_sets, predictor_cfg.ftb_ways,
                predictor_cfg.ftb_l2_sets, predictor_cfg.ftb_l2_ways,
                predictor_cfg.ftb_l2_latency)
        else:
            self.ftb = FetchTargetBuffer(predictor_cfg.ftb_sets,
                                         predictor_cfg.ftb_ways)
        self.ftq = FetchTargetQueue(config.frontend.ftq_depth)
        self.memory = MemorySystem(
            config.memory,
            prefetch_fill_to_l1=config.prefetch.fill_l1_directly)
        self.prefetcher = make_prefetcher(config, self.memory)
        self.memory.sidecar = self.prefetcher.sidecar
        self.backend = Backend(config.core)
        self.predict_unit = PredictUnit(self.trace, self.ftb, self.predictor,
                                        self.ras, config.frontend)
        self.fetch_engine = FetchEngine(
            self.trace, self.memory, self.ftq, self.backend, self.prefetcher,
            config.core, self._schedule_resolution)

        self.cycle = 0
        self.tracer = tracer
        if engine is None:
            if fast_loop is not None:
                engine = "fast" if fast_loop else "naive"
            else:
                engine = config.resolved_engine
        elif engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {engine!r}; expected one of "
                f"{', '.join(ENGINES)}")
        self.engine = engine
        # Back-compat mirror of the pre-engine attribute (True for any
        # skipping engine); scheduled for removal with the knob itself.
        self.fast_loop = engine != "naive"
        self.skipped_cycles = 0   # diagnostics only; not a statistic
        # Opt-in cycle-attribution profiler (see repro/obs/profile.py).
        # It lives outside the telemetry tree on purpose: SimResult
        # stays bit-identical with profiling on or off.
        self.profiler = CycleProfiler() if config.profile else None
        self._resolve_at: int | None = None
        self._resolve_entry: FTQEntry | None = None
        self._warmed = config.warmup_instructions == 0
        self._measure_start_cycle = 0
        self._measure_start_retired = 0
        # In-run checkpointing: when a sink is attached and
        # config.checkpoint_interval > 0, run() hands it a machine
        # snapshot every interval cycles (see sim/checkpoint.py).
        self.checkpoint_sink: Callable[[dict], None] | None = None
        self._resume_sampler: dict | None = None
        self._resume_occupancy: dict | None = None
        if self._warm_records:
            self._fast_forward()

    # ------------------------------------------------------------------

    def _fast_forward(self) -> None:
        """Functionally warm caches, FTB, and predictor (no timing).

        Approximates what a timed warm-up would leave behind: every
        touched block resident in L1-I/L2 (subject to capacity), the FTB
        trained on taken control transfers with fetch-block starts
        tracked the way the prediction unit partitions blocks, and the
        direction predictor trained on every conditional.  Statistics
        are reset afterwards so the measured region starts clean.
        """
        from repro.ftb import FTBEntry
        from repro.isa import INSTRUCTION_BYTES, InstrKind

        block_bytes = self.memory.block_bytes
        cap_bytes = self.config.frontend.max_fetch_block \
            * INSTRUCTION_BYTES
        history = 0
        history_mask = (1 << self.config.frontend.predictor
                        .history_bits) - 1
        l1i, l2 = self.memory.l1i, self.memory.l2
        predictor, ftb = self.predictor, self.ftb
        block_start = self._warm_records[0].pc

        for record in self._warm_records:
            bid = record.pc // block_bytes
            if not l1i.contains(bid):
                l1i.fill(bid)
                l2.fill(bid)
            kind = record.kind
            if kind == InstrKind.BRANCH_COND:
                predictor.update(record.pc, history, record.taken)
                history = ((history << 1) | int(record.taken)) \
                    & history_mask
            if record.next_pc != record.pc + INSTRUCTION_BYTES:
                target = None if kind.is_return else record.next_pc
                ftb.install(FTBEntry(
                    start=block_start,
                    fallthrough=record.pc + INSTRUCTION_BYTES,
                    target=target, kind=kind))
                block_start = record.next_pc
            elif record.pc + INSTRUCTION_BYTES - block_start >= cap_bytes:
                block_start = record.next_pc

        self._reset_stats()
        self.stats.bump("fast_forwarded", len(self._warm_records))

    def _schedule_resolution(self, entry: FTQEntry, resolve_at: int) -> None:
        if self._resolve_entry is not None:
            raise SimulationError(
                "two unresolved mispredictions in flight; the front end "
                "should have been down the wrong path")
        self._resolve_entry = entry
        self._resolve_at = resolve_at

    def _squash_and_redirect(self) -> None:
        entry = self._resolve_entry
        self._resolve_entry = None
        self._resolve_at = None
        self.ftq.clear()
        self.fetch_engine.squash()
        self.backend.flush_wrong_path()
        self.prefetcher.squash()
        self.predict_unit.on_resolve(entry)
        self.stats.bump("squashes")

    # ------------------------------------------------------------------

    def run(self) -> SimResult:
        """Simulate until the whole trace has retired."""
        total = len(self.trace)
        warmup = min(self.config.warmup_instructions, max(0, total - 1))
        max_cycles = self.config.max_cycles
        if max_cycles is None:
            max_cycles = _DEFAULT_CYCLE_CAP_PER_INSTR * total + 100_000

        # A tracer observes every cycle; it forces the naive loop.
        engine = self.engine if self.tracer is None else "naive"
        fast = engine == "fast"
        tracer = self.tracer
        profiler = self.profiler
        memory = self.memory
        mem_stats = memory.stats
        backend = self.backend
        fetch_engine = self.fetch_engine
        predict_unit = self.predict_unit
        prefetcher = self.prefetcher
        ftq = self.ftq

        window = self.config.telemetry_window
        if self._resume_sampler is not None:
            # Resuming from a checkpoint: continue the in-progress
            # series instead of anchoring a fresh one mid-run.
            sampler = IntervalSampler.from_state_dict(self._resume_sampler)
            self._resume_sampler = None
        else:
            sampler = IntervalSampler(window, origin=self.cycle,
                                      base_retired=backend.retired) \
                if window > 0 else None
        occupancy = RunLengthObserver(self.stats.histogram("ftq_occupancy"))
        if self._resume_occupancy is not None:
            occupancy.load_state_dict(self._resume_occupancy)
            self._resume_occupancy = None

        interval = self.config.checkpoint_interval
        sink = self.checkpoint_sink
        next_ckpt = (self.cycle + interval
                     if interval > 0 and sink is not None else None)
        watchdog = self.config.watchdog_interval
        # A resume restarts the watchdog's interval at the resume point.
        progress_cycle = self.cycle
        progress_retired = backend.retired

        if self.config.event_log is not None:
            obs_events.attach_log_file(self.config.event_log)
        obs_events.emit("run_start", data={
            "name": self.name, "engine": engine,
            "cycle": self.cycle, "instructions": total,
            "resumed": self.cycle > 0})

        if engine == "event":
            from repro.sim.events import run_event_loop

            occupancy, sampler = run_event_loop(
                self, total=total, warmup=warmup, max_cycles=max_cycles,
                occupancy=occupancy, sampler=sampler, interval=interval,
                sink=sink, next_ckpt=next_ckpt, watchdog=watchdog)
            return self._finish(occupancy, sampler, mem_stats)

        # Fast-engine fallback probe: measure the observed skip ratio
        # over the first telemetry window; when the skip machinery is
        # (almost) never winning, every further plan attempt is pure
        # overhead — latch to the naive loop for the rest of the run.
        # At least the default probe span: a tiny telemetry window
        # would judge the skip machinery before it ever gets a chance.
        probe_window = max(window, _FALLBACK_PROBE_WINDOW)
        probe_start = self.cycle
        probe_skipped = self.skipped_cycles
        probe_at = probe_start + probe_window

        while backend.retired < total:
            self.cycle += 1
            cycle = self.cycle
            if cycle > max_cycles:
                raise SimulationError(
                    f"cycle cap exceeded ({max_cycles}); retired "
                    f"{backend.retired}/{total} — likely a deadlock")
            memory.begin_cycle(cycle)
            backend.retire(cycle)
            if self._resolve_at is not None and cycle >= self._resolve_at:
                self._squash_and_redirect()
            fetched = fetch_engine.tick(cycle)
            predict_unit.tick(cycle, ftq)
            prefetcher.tick(cycle, ftq)
            occ = ftq.occupancy()
            occupancy.observe(occ)
            if sampler is not None:
                sampler.advance(cycle, occ, backend.retired,
                                mem_stats.get("demand_misses"))
            if profiler is not None:
                # End-of-cycle classification; inside a fast-path skip
                # window this state is pinned, so _apply_skip attributes
                # the whole window with one observe(n) call.
                profiler.observe(self, bool(fetched))
            if tracer is not None:
                tracer.record(cycle, self)

            if not self._warmed and backend.retired >= warmup:
                occupancy.flush()
                self._reset_measurement()
                occupancy = RunLengthObserver(
                    self.stats.histogram("ftq_occupancy"))
                if sampler is not None:
                    # Counters just cleared; anchor the interval series
                    # at the measurement origin so window boundaries and
                    # deltas cover only the measured region.
                    sampler = IntervalSampler(
                        window, origin=self.cycle,
                        base_retired=backend.retired)
                obs_events.emit("warmup_end", data={
                    "name": self.name, "cycle": self.cycle,
                    "retired": backend.retired})
            elif fast and not fetched and backend.retired < total:
                # (the fetched guard merely pre-filters active cycles;
                # the retired guard keeps the loop's exit cycle — and
                # therefore the reported cycle count — identical)
                if cycle >= probe_at:
                    span = cycle - probe_start
                    skipped = self.skipped_cycles - probe_skipped
                    ratio = skipped / span if span > 0 else 1.0
                    if ratio < _FALLBACK_MIN_RATIO:
                        # One-way latch: results are identical either
                        # way, only the per-cycle proof overhead goes.
                        fast = False
                        obs_events.emit("engine_fallback", data={
                            "name": self.name, "cycle": cycle,
                            "probe_cycles": span,
                            "skipped_cycles": skipped,
                            "skip_ratio": round(ratio, 6),
                            "from_engine": "fast",
                            "to_engine": "naive"})
                    elif ratio >= _FALLBACK_KEEP_RATIO:
                        probe_at = max_cycles + 1   # healthy: stop probing
                    else:
                        probe_start = cycle
                        probe_skipped = self.skipped_cycles
                        probe_at = cycle + probe_window
                if fast:
                    plan = plan_skip(self, cycle, max_cycles)
                    if plan is not None:
                        self._apply_skip(plan, occupancy, sampler)

            if watchdog > 0:
                if backend.retired > progress_retired:
                    progress_retired = backend.retired
                    progress_cycle = self.cycle
                elif self.cycle - progress_cycle >= watchdog:
                    obs_events.emit("watchdog_stall", data={
                        "name": self.name, "cycle": self.cycle,
                        "retired": backend.retired,
                        "watchdog_interval": watchdog})
                    raise WatchdogStallError(
                        self.cycle, backend.retired, watchdog,
                        state=self._stall_dump())
            if next_ckpt is not None and self.cycle >= next_ckpt:
                # End-of-cycle consistent point; ``>=`` (not ``==``)
                # because a fast-path skip may jump across the boundary.
                sink(self.state_dict(occupancy=occupancy, sampler=sampler))
                next_ckpt = self.cycle + interval

        return self._finish(occupancy, sampler, mem_stats)

    def _finish(self, occupancy: RunLengthObserver,
                sampler: IntervalSampler | None,
                mem_stats: StatGroup) -> SimResult:
        """Shared end-of-run finalization for every engine."""
        occupancy.flush()
        intervals = None
        if sampler is not None:
            intervals = sampler.finalize(
                self.cycle, self.backend.retired,
                mem_stats.get("demand_misses"))
        obs_events.emit("run_end", data={
            "name": self.name, "cycle": self.cycle,
            "retired": self.backend.retired,
            "skipped_cycles": self.skipped_cycles})
        return self._collect(intervals)

    def _apply_skip(self, plan, occupancy: RunLengthObserver,
                    sampler: IntervalSampler | None = None) -> None:
        """Batch-apply the bookkeeping of ``plan.cycles`` idle cycles.

        Bumps exactly the stall counters the naive loop would have,
        records the (constant) FTQ occupancy samples, advances the
        interval sampler across the window (retired instructions,
        demand misses, and FTQ occupancy are provably constant inside
        it, so boundary crossings are reconstructed exactly), lets the
        prefetcher catch up its internal clock, and jumps the cycle
        counter to one before the plan's progress bound.
        """
        n = plan.cycles
        if self.profiler is not None:
            # The skip proof pins every input classify() reads across
            # the window, so one call attributes all n cycles to the
            # exact bucket the naive loop would have chosen.
            self.profiler.observe(self, False, n)
        self.fetch_engine.stats.bump(plan.fetch_counter, n)
        if plan.predict_counter is not None:
            self.predict_unit.stats.bump(plan.predict_counter, n)
        if plan.retire_stalled:
            self.backend.stats.bump("retire_stall_cycles", n)
        occ = self.ftq.occupancy()
        occupancy.observe(occ, n)
        if sampler is not None:
            sampler.advance(plan.target - 1, occ, self.backend.retired,
                            self.memory.stats.get("demand_misses"))
        self.prefetcher.on_skip(plan.target - 1)
        self.cycle = plan.target - 1
        self.skipped_cycles += n

    def _reset_measurement(self) -> None:
        self._warmed = True
        self._measure_start_cycle = self.cycle
        self._measure_start_retired = self.backend.retired
        self._reset_stats()
        if self.profiler is not None:
            self.profiler.reset()

    def _stall_dump(self) -> dict:
        """Scheduling-state summary attached to watchdog failures."""
        return {
            "ftq_occupancy": self.ftq.occupancy(),
            "resolve_at": self._resolve_at,
            "fetch_waiting_until": self.fetch_engine.waiting_until,
            "ftb_wait_until": self.predict_unit.ftb_wait_until,
            "backend_occupancy": self.backend.occupancy,
            "next_completion": self.backend.next_completion,
            "next_fill": self.memory.next_event_cycle,
            "in_flight_blocks": self.memory.in_flight_blocks(),
            "predict_done": self.predict_unit.done,
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def state_dict(self, *, occupancy: RunLengthObserver | None = None,
                   sampler: IntervalSampler | None = None) -> dict:
        """JSON-compatible snapshot of the whole machine.

        ``occupancy``/``sampler`` are ``run()``'s loop-local telemetry
        accumulators; the in-run checkpoint hook passes them so a
        resumed run reproduces the interval series and the occupancy
        histogram bit for bit.  Snapshots taken between runs may omit
        them.
        """
        return {
            "cycle": self.cycle,
            # Convenience copy for heartbeats/diagnostics; restore reads
            # the authoritative value from the backend component state.
            "retired": self.backend.retired,
            "skipped_cycles": self.skipped_cycles,
            "resolve_at": self._resolve_at,
            "has_resolve_entry": self._resolve_entry is not None,
            "warmed": self._warmed,
            "measure_start_cycle": self._measure_start_cycle,
            "measure_start_retired": self._measure_start_retired,
            "stats": self.stats.state_dict(),
            # Positional, matching components() order.
            "components": [component.state_dict()
                           for component in self.components()],
            "occupancy": (occupancy.state_dict()
                          if occupancy is not None else None),
            "sampler": sampler.state_dict() if sampler is not None else None,
            "profile": (self.profiler.state_dict()
                        if self.profiler is not None else None),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a machine snapshot captured by :meth:`state_dict`.

        The simulator must have been constructed with the same trace
        and config as the one that produced the snapshot (the
        checkpoint manager enforces this via identity metadata); the
        next :meth:`run` call then continues from the captured cycle
        and produces a bit-identical :class:`SimResult`.
        """
        self.cycle = int(state["cycle"])
        self.skipped_cycles = int(state["skipped_cycles"])
        resolve_at = state["resolve_at"]
        self._resolve_at = int(resolve_at) if resolve_at is not None else None
        self._warmed = bool(state["warmed"])
        self._measure_start_cycle = int(state["measure_start_cycle"])
        self._measure_start_retired = int(state["measure_start_retired"])
        self.stats.load_state_dict(state["stats"])
        components = self.components()
        payloads = state["components"]
        if len(payloads) != len(components):
            raise SimulationError(
                f"snapshot holds {len(payloads)} component states, "
                f"machine has {len(components)}")
        for component, payload in zip(components, payloads):
            component.load_state_dict(payload)
        # Re-establish object-identity aliases that serialization by
        # value necessarily broke: the pending mispredicted entry is
        # the same object in the FTQ (when still queued) and as the
        # simulator's resolve entry (when already delivered).
        self.predict_unit.relink_pending(self.ftq)
        if state["has_resolve_entry"]:
            entry = self.predict_unit.pending_mispredict
            if entry is None:
                raise SimulationError(
                    "snapshot has a scheduled resolution but no pending "
                    "misprediction")
            self._resolve_entry = entry
        else:
            self._resolve_entry = None
        self._resume_occupancy = state.get("occupancy")
        self._resume_sampler = state.get("sampler")
        profile_state = state.get("profile")
        if self.profiler is not None and profile_state is not None:
            self.profiler.load_state_dict(profile_state)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def components(self) -> tuple[Component, ...]:
        """The top-level telemetry components, in reporting order.

        Every machine part implements :class:`repro.component.Component`;
        nested parts (predictor and RAS under the prediction unit, FTB
        levels, cache/bus/MSHR under the memory system, prefetcher
        buffers) report through their parent's ``sub_components``.
        """
        return (self.ftq, self.predict_unit, self.ftb, self.fetch_engine,
                self.prefetcher, self.backend, self.memory)

    def _reset_stats(self) -> None:
        self.stats.reset()
        for component in self.components():
            component.reset()

    def telemetry_snapshot(self, intervals: IntervalSeries | None = None,
                           ) -> TelemetrySnapshot:
        """Snapshot the full telemetry tree for the measured region.

        The root ``sim`` node carries the simulator's own counters and
        the FTQ-occupancy histogram; each component hangs off it as a
        subtree.  Safe to call mid-run (live view of current counters).
        """
        root = TelemetryNode.from_stat_group(
            self.stats,
            children=[component.telemetry()
                      for component in self.components()])
        meta = {
            "name": self.name,
            "prefetcher": self.config.prefetch.kind,
            "cycles": self.cycle - self._measure_start_cycle,
            "instructions": self.backend.retired
            - self._measure_start_retired,
        }
        return TelemetrySnapshot(root=root, meta=meta, intervals=intervals)

    def _collect(self, intervals: IntervalSeries | None = None) -> SimResult:
        return SimResult.from_snapshot(self.telemetry_snapshot(intervals))

    def profile_report(self) -> dict:
        """The cycle-attribution profile for the measured region so far.

        Buckets sum exactly to the measured cycle count (the ``cycles``
        field of :attr:`telemetry_snapshot`'s meta).  Requires
        ``SimConfig(profile=True)``; the convenience wrapper is
        :func:`repro.obs.profile_run`.
        """
        if self.profiler is None:
            raise SimulationError(
                "profiling is off; construct with SimConfig(profile=True) "
                "or use repro.obs.profile_run")
        meta = {
            "name": self.name,
            "prefetcher": self.config.prefetch.kind,
            "cycles": self.cycle - self._measure_start_cycle,
            "instructions": self.backend.retired
            - self._measure_start_retired,
        }
        return self.profiler.report(
            meta=meta,
            bus_busy=self.memory.bus.stats.get("busy_cycles"))
