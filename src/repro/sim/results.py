"""Simulation results: a thin typed view over a telemetry snapshot.

Historically ``SimResult`` was assembled by hand from a flat counter
namespace; it is now constructed from the hierarchical
:class:`~repro.stats.telemetry.TelemetrySnapshot` the simulator
collects (:meth:`SimResult.from_snapshot`).  The flat ``counters``
mapping and every headline field are preserved for compatibility — they
are derived from the tree, not stored separately by components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.stats.telemetry import TelemetrySnapshot

__all__ = ["SimResult"]


@dataclass
class SimResult:
    """Outcome of one simulation run.

    ``counters`` holds the full flat counter namespace
    (``group.counter`` -> value) for anything not surfaced as a field.
    """

    name: str
    prefetcher: str
    cycles: int
    instructions: int
    # Front end
    mispredicts: int
    bpred_accuracy: float
    ftq_mean_occupancy: float
    # Memory
    demand_misses: int
    demand_merges: int
    bus_utilization: float
    l2_misses: int
    # Prefetching
    prefetches_issued: int
    prefetches_useful: int
    prefetches_late: int
    counters: dict[str, int] = field(default_factory=dict)
    # Distributions (value -> count), for the characterization experiments.
    ftq_occupancy_hist: dict[int, int] = field(default_factory=dict)
    fetch_block_hist: dict[int, int] = field(default_factory=dict)
    # Prefetch lead times (fill -> first use), for timeliness analysis.
    prefetch_lead_hist: dict[int, int] = field(default_factory=dict)
    # The full hierarchical telemetry snapshot this view was built from
    # (None for results deserialized from pre-telemetry payloads).
    telemetry: "TelemetrySnapshot | None" = None

    @classmethod
    def from_snapshot(cls, snapshot: "TelemetrySnapshot") -> "SimResult":
        """Construct the typed view from one telemetry snapshot.

        Every field is derived from the snapshot's tree and metadata;
        nothing else flows from the machine components into the result.
        """
        root = snapshot.root
        meta = snapshot.meta
        flat = snapshot.flat_counters()
        cycles = int(meta.get("cycles", 0))

        occupancy = root.histogram("ftq_occupancy")
        occ_total = sum(occupancy.values())
        occ_sum = sum(value * count for value, count in occupancy.items())
        predictor = root.find(lambda node: "accuracy" in node.derived)
        predict = root.child("predict")
        lead_node = root.find(
            lambda node: "lead_cycles" in node.histograms)
        busy = flat.get("bus.busy_cycles", 0)
        return cls(
            name=str(meta.get("name", "")),
            prefetcher=str(meta.get("prefetcher", "")),
            cycles=cycles,
            instructions=int(meta.get("instructions", 0)),
            mispredicts=flat.get("predict.mispredicts", 0),
            bpred_accuracy=(predictor.derived["accuracy"]
                            if predictor is not None else 0.0),
            ftq_mean_occupancy=(occ_sum / occ_total if occ_total else 0.0),
            demand_misses=flat.get("mem.demand_misses", 0),
            demand_merges=flat.get("mshr.demand_merges", 0),
            bus_utilization=(min(1.0, busy / cycles)
                             if cycles > 0 else 0.0),
            l2_misses=flat.get("mem.l2_misses", 0),
            prefetches_issued=flat.get("mem.prefetches_issued", 0),
            prefetches_useful=(flat.get("pbuf.useful_hits", 0)
                               + flat.get("stream.head_hits", 0)),
            prefetches_late=flat.get("mem.late_prefetch_fills", 0),
            counters=flat,
            ftq_occupancy_hist=dict(occupancy),
            fetch_block_hist=(dict(predict.histogram("fetch_block_instrs"))
                              if predict is not None else {}),
            prefetch_lead_hist=(dict(lead_node.histograms["lead_cycles"])
                                if lead_node is not None else {}),
            telemetry=snapshot,
        )

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def l1i_mpki(self) -> float:
        """Demand misses (including merges) per kilo-instruction."""
        if self.instructions == 0:
            return 0.0
        return 1000.0 * (self.demand_misses + self.demand_merges) \
            / self.instructions

    @property
    def mispredicts_per_ki(self) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.instructions

    @property
    def prefetch_accuracy(self) -> float:
        """Useful prefetches / issued prefetches."""
        if self.prefetches_issued == 0:
            return 0.0
        return self.prefetches_useful / self.prefetches_issued

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of would-be misses covered by prefetching.

        Late prefetches (demand merged into an in-flight prefetch) count
        as covered-but-late; they are excluded here and reported
        separately.
        """
        would_miss = self.prefetches_useful + self.demand_misses \
            + self.demand_merges
        if would_miss == 0:
            return 0.0
        return self.prefetches_useful / would_miss

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC speedup of this run relative to ``baseline``."""
        if baseline.ipc == 0.0:
            return 0.0
        return self.ipc / baseline.ipc

    def get(self, counter: str) -> int:
        """Raw counter lookup (0 when absent)."""
        return self.counters.get(counter, 0)

    def summary(self) -> str:
        """Multi-line human-readable summary of the headline metrics."""
        lines = [
            f"{self.name} / {self.prefetcher}",
            f"  IPC {self.ipc:.3f} over {self.cycles} cycles "
            f"({self.instructions} instructions)",
            f"  L1-I MPKI {self.l1i_mpki:.2f} "
            f"({self.demand_misses} misses, {self.demand_merges} merges)",
            f"  bus utilization {self.bus_utilization:.1%}",
            f"  mispredicts/ki {self.mispredicts_per_ki:.2f} "
            f"(bpred accuracy {self.bpred_accuracy:.1%})",
        ]
        if self.prefetches_issued:
            lines.append(
                f"  prefetches {self.prefetches_issued} issued, "
                f"{self.prefetches_useful} useful "
                f"({self.prefetch_accuracy:.1%} accuracy, "
                f"{self.prefetch_coverage:.1%} coverage, "
                f"{self.prefetches_late} late)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SimResult({self.name!r}, {self.prefetcher}, "
                f"ipc={self.ipc:.3f}, mpki={self.l1i_mpki:.2f}, "
                f"bus={self.bus_utilization:.2%})")
