"""Sharded single-trace simulation: windowing, warm-up overlap, merge.

A long trace is split into ``K`` contiguous measurement windows.  Each
shard simulates a *warm-up overlap* prefix of the preceding window
before its own window begins — the overlap is simulated cycle-accurately
but excluded from measurement, reusing the simulator's existing warm-up
reset anchor (``SimConfig.warmup_instructions`` resets all statistics
once that many instructions have retired, leaving caches, predictors,
and the FTB warm).  This is the standard sampled-simulation recipe: the
overlap re-warms microarchitectural state that the shard did not watch
being built, and the residual IPC/MPKI error shrinks as the overlap
grows (see the calibration table in ``docs/performance.md``).

Two warm-up modes are supported:

- ``functional`` (the default) — before its timed overlap, each shard
  *functionally* fast-forwards over its **entire** preceding prefix
  (``SimConfig.fast_forward_instructions``): caches, the FTB, and the
  direction predictor replay the whole history at trace-walk speed
  (roughly an order of magnitude cheaper than cycle simulation), and
  the timed overlap then settles pipeline/queue state.  Long-lived
  state — the L2's resident footprint, predictor and FTB training — is
  reproduced from the retired-instruction history, so the residual
  error is dominated by what *cannot* be replayed functionally
  (wrong-path cache/FTB contents, in-flight prefetches) and amortizes
  with the measurement window length.
- ``overlap`` — timed overlap only, each shard simulates nothing before
  ``sim_start``.  Cheapest per shard and embarrassingly parallel in the
  strict sense, but long-lived state starts cold, so the IPC error is
  dominated by L2/predictor cold misses and decays only slowly with the
  overlap length.  Kept for measurement studies and as the degenerate
  mode for state that cannot be functionally warmed.

Planning is pure bookkeeping (:func:`plan_shards` /
:class:`ShardPlan`); execution can happen inline
(:func:`run_shards_inline`) or on the supervised process pool
(:mod:`repro.harness.shard_runner`).  Either way the per-shard
:class:`~repro.stats.telemetry.TelemetrySnapshot`\\ s reduce through
:func:`~repro.stats.sweep.merge_snapshots` into one snapshot labeled
with shard provenance (:func:`merge_shard_snapshots`), from which the
merged :class:`~repro.sim.results.SimResult` is built.

Guarantees:

- ``K=1`` degenerates to the monolithic run: the single shard covers
  the whole trace with the config's own warm-up, so the merged flat
  counter namespace is **bit-identical** to an unsharded simulation.
- For ``K>1`` the merged counters are the exact sums of the per-shard
  measured regions, which together tile the monolithic measured region
  instruction-for-instruction; only the microarchitectural state at
  each window entry is approximate (bounded by the overlap).
"""

from __future__ import annotations

import os.path
from dataclasses import dataclass

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.sim.results import SimResult
from repro.stats.sweep import merge_snapshots
from repro.stats.telemetry import TelemetryNode, TelemetrySnapshot
from repro.trace import Trace

__all__ = [
    "DEFAULT_SHARD_OVERLAP",
    "WARMUP_MODES",
    "ShardSpec",
    "ShardPlan",
    "plan_shards",
    "shard_config",
    "shard_checkpoint_dir",
    "run_shards_inline",
    "merge_shard_snapshots",
    "sharded_result",
]

#: Default warm-up overlap (instructions) prepended to every shard after
#: the first.  Chosen from the overlap-sensitivity calibration committed
#: in ``docs/performance.md`` (regenerate with ``repro shard
#: --calibrate``): with functional prefix warming on a 200k-instruction
#: ``gcc_like`` trace, 2000 instructions of timed overlap keeps the
#: merged IPC within ~1.5% of the monolithic run at K=2, ~2% at K=4,
#: and ~4% at K=8 (L1-I MPKI within ~0.2), while adding under 5% extra
#: cycle-simulated instructions at K=4.  The error amortizes with the
#: per-shard window length — longer traces shard more accurately —
#: and raising the overlap buys accuracy only slowly; the window
#: length, not the overlap, is the lever that matters.
DEFAULT_SHARD_OVERLAP = 2000

#: Warm-up modes (see the module docstring).
WARMUP_MODES = ("functional", "overlap")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the trace.

    The shard *simulates* records ``[sim_start, stop)`` and *measures*
    records ``[start, stop)``; the ``start - sim_start`` prefix is the
    warm-up overlap (plus, for the first shard, the sweep-level warm-up
    region), excluded from statistics via the warm-up reset anchor.
    """

    index: int
    sim_start: int   # first simulated record
    start: int       # first measured record
    stop: int        # one past the last record

    @property
    def warmup(self) -> int:
        """Instructions simulated before measurement starts."""
        return self.start - self.sim_start

    @property
    def measured(self) -> int:
        """Instructions inside the measurement window."""
        return self.stop - self.start

    @property
    def simulated(self) -> int:
        """Total instructions this shard simulates (overlap included)."""
        return self.stop - self.sim_start


@dataclass(frozen=True)
class ShardPlan:
    """The full decomposition of one trace into shards."""

    total: int
    overlap: int
    shards: tuple[ShardSpec, ...]

    def __len__(self) -> int:
        return len(self.shards)

    @property
    def overhead(self) -> float:
        """Extra simulated instructions as a fraction of the total."""
        extra = sum(s.simulated for s in self.shards) - self.total
        return extra / self.total if self.total else 0.0


def plan_shards(total: int, shards: int, overlap: int | None = None,
                warmup: int = 0) -> ShardPlan:
    """Split ``total`` instructions into ``shards`` contiguous windows.

    ``overlap`` is the warm-up prefix (in instructions) each shard after
    the first simulates before its window (default
    :data:`DEFAULT_SHARD_OVERLAP`, clamped to the records actually
    preceding the window).  ``warmup`` is the run-level warm-up region;
    it lands entirely inside the first shard's window, exactly as in the
    monolithic run.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if overlap is None:
        overlap = DEFAULT_SHARD_OVERLAP
    if overlap < 0:
        raise ConfigError(f"shard overlap must be >= 0, got {overlap}")
    if total < 1:
        raise ConfigError("cannot shard an empty trace")
    if shards > total:
        raise ConfigError(
            f"cannot split {total} instructions into {shards} shards "
            f"(each shard needs at least one measured instruction)")
    if warmup < 0:
        raise ConfigError(f"warmup must be >= 0, got {warmup}")
    base, extra = divmod(total, shards)
    specs = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        sim_start = 0 if index == 0 else max(0, start - overlap)
        specs.append(ShardSpec(index=index, sim_start=sim_start,
                               start=start, stop=stop))
        start = stop
    first = specs[0]
    if warmup >= first.stop:
        raise ConfigError(
            f"warmup ({warmup} instructions) must fit inside the first "
            f"shard's window ({first.stop} instructions); use fewer "
            f"shards or a shorter warm-up")
    return ShardPlan(total=total, overlap=overlap, shards=tuple(specs))


def _check_mode(warm: str) -> None:
    if warm not in WARMUP_MODES:
        raise ConfigError(
            f"unknown shard warm-up mode {warm!r}; "
            f"one of {', '.join(WARMUP_MODES)}")


def shard_config(config: SimConfig, spec: ShardSpec,
                 warm: str = "functional") -> SimConfig:
    """The per-shard configuration derived from the run's ``config``.

    The shard's warm-up anchor covers its timed overlap prefix; in
    ``functional`` mode the shard additionally fast-forwards over its
    full preceding prefix (``[0, sim_start)``).  The first shard keeps
    the run-level warm-up instead (its window starts at record 0,
    exactly like the monolithic run).  ``max_instructions`` is cleared —
    the callers apply it by slicing the trace before planning, so shards
    must not re-truncate.
    """
    _check_mode(warm)
    if config.fast_forward_instructions:
        raise ConfigError(
            "sharding does not compose with fast_forward_instructions; "
            "functional shard warm-up plays the same role per shard")
    warmup = config.warmup_instructions if spec.index == 0 else spec.warmup
    fast_forward = spec.sim_start if warm == "functional" else 0
    if warmup == config.warmup_instructions and fast_forward == 0 \
            and config.max_instructions is None:
        return config
    return config.replace(warmup_instructions=warmup,
                          fast_forward_instructions=fast_forward,
                          max_instructions=None)


def _shard_trace(trace: Trace, spec: ShardSpec, warm: str) -> Trace:
    """The records shard ``spec`` consumes under warm-up mode ``warm``.

    ``functional`` shards keep the whole prefix (the simulator's
    fast-forward eats ``[0, sim_start)``); ``overlap`` shards start at
    ``sim_start``.
    """
    start = 0 if warm == "functional" else spec.sim_start
    if start == 0 and spec.stop == len(trace):
        return trace
    return trace.slice(start, spec.stop)


def run_one_shard(trace: Trace, config: SimConfig, spec: ShardSpec,
                  name: str | None = None,
                  warm: str = "functional",
                  checkpoint_dir: str | None = None) -> TelemetrySnapshot:
    """Simulate one shard of ``trace`` and return its telemetry.

    ``trace`` is the *full* trace (indices in ``spec`` are absolute);
    the shard's slice is cut here.  Pool workers call this too, with a
    sub-trace whose spec was rebased to match.

    ``checkpoint_dir`` runs the shard through the machine checkpointer
    (see :mod:`repro.sim.checkpoint`): snapshots every
    ``config.checkpoint_interval`` cycles, and resume from the latest
    valid snapshot when this call retries a killed worker — the shard's
    telemetry is bit-identical either way.
    """
    from repro.sim.simulator import Simulator

    sub = _shard_trace(trace, spec, warm)
    cfg = shard_config(config, spec, warm)
    shard_name = name or f"{trace.name}#shard{spec.index}"
    if checkpoint_dir is not None:
        from repro.sim.checkpoint import run_with_checkpoints

        result = run_with_checkpoints(sub, cfg, directory=checkpoint_dir,
                                      name=shard_name).result
    else:
        result = Simulator(sub, cfg, name=shard_name).run()
    assert result.telemetry is not None
    return result.telemetry


def run_shards_inline(trace: Trace, config: SimConfig, plan: ShardPlan,
                      warm: str = "functional",
                      checkpoint_dir: str | None = None,
                      ) -> list[TelemetrySnapshot]:
    """Simulate every shard sequentially in this process."""
    return [run_one_shard(trace, config, spec, warm=warm,
                          checkpoint_dir=shard_checkpoint_dir(
                              checkpoint_dir, spec.index))
            for spec in plan.shards]


def shard_checkpoint_dir(checkpoint_dir: str | None,
                         index: int) -> str | None:
    """Each shard snapshots into its own subdirectory of the run's."""
    if checkpoint_dir is None:
        return None
    return os.path.join(checkpoint_dir, f"shard{index}")


def _restore_derived(node: TelemetryNode) -> None:
    """Recompute recomputable derived ratios after a merge.

    :func:`~repro.stats.telemetry.merge_nodes` drops derived ratios (a
    ratio of sums is not a sum of ratios).  The ratios the result view
    consumes are recomputable from merged counters, so restore them:
    predictor ``accuracy`` is ``correct / predictions``.
    """
    for _, sub in node.walk():
        predictions = sub.counters.get("predictions")
        if predictions:
            sub.derived["accuracy"] = \
                sub.counters.get("correct", 0) / predictions


def merge_shard_snapshots(snapshots: list[TelemetrySnapshot],
                          plan: ShardPlan, *,
                          name: str, first_warmup: int = 0,
                          warm: str = "functional",
                          ) -> TelemetrySnapshot:
    """Reduce per-shard snapshots into one, with shard provenance.

    Counters, histograms, and interval series merge through
    :func:`~repro.stats.sweep.merge_snapshots`; the result's metadata
    records the run ``name``, the shard count and overlap, and each
    shard's instruction window and measured cycle range
    (``meta["sharding"]``).
    """
    if len(snapshots) != len(plan.shards):
        raise ValueError(
            f"plan has {len(plan.shards)} shards but "
            f"{len(snapshots)} snapshots were provided")
    merged = merge_snapshots(snapshots)
    _restore_derived(merged.root)
    windows = []
    cycle_base = 0
    for spec, snap in zip(plan.shards, snapshots):
        cycles = int(snap.meta.get("cycles", 0))
        windows.append({
            "shard": spec.index,
            "start": spec.start,
            "stop": spec.stop,
            "warmup": spec.warmup if spec.index else first_warmup,
            "instructions": int(snap.meta.get("instructions", 0)),
            "cycle_range": [cycle_base, cycle_base + cycles],
        })
        cycle_base += cycles
    merged.meta["name"] = name
    merged.meta["sharding"] = {
        "shards": len(plan.shards),
        "overlap": plan.overlap,
        "warm": warm,
        "windows": windows,
    }
    return merged


def sharded_result(snapshots: list[TelemetrySnapshot], plan: ShardPlan,
                   *, name: str, first_warmup: int = 0,
                   warm: str = "functional") -> SimResult:
    """The merged :class:`SimResult` of one sharded run."""
    return SimResult.from_snapshot(
        merge_shard_snapshots(snapshots, plan, name=name,
                              first_warmup=first_warmup, warm=warm))
