"""In-run machine checkpoints: versioned snapshots, resume, heartbeats.

:class:`~repro.sim.simulator.Simulator` can hand its full machine state
(:meth:`~repro.sim.simulator.Simulator.state_dict`) to a checkpoint sink
every ``SimConfig.checkpoint_interval`` cycles.  This module owns what
happens to those snapshots:

- :class:`CheckpointManager` writes each one as a versioned,
  SHA-256-checksummed envelope via a **durable** atomic write (contents
  and directory entry fsynced — a snapshot must survive a machine
  crash, not just a process kill), rotates old snapshots away, and
  maintains a small *heartbeat* file (cycle / retired instructions) the
  supervised pool reads to tell a slow worker from a stuck one;
- :meth:`CheckpointManager.latest` returns the newest **valid**
  snapshot: corrupt files (bad JSON, checksum mismatch, missing keys)
  are quarantined under ``<dir>/quarantine/`` and skipped, while a
  snapshot whose identity metadata does not match the current run
  raises :class:`~repro.errors.CheckpointError` — silently resuming
  another run's machine state would corrupt results;
- :func:`run_with_checkpoints` is the one-call resumable run: build the
  simulator, resume from the latest valid snapshot when one exists,
  attach the sink, run to completion, leave a summary file for the
  supervising process, and drop the now-useless snapshots.

Identity metadata (:func:`snapshot_meta`) binds snapshots to the
(trace, config, package version) that produced them.  The config
fields that provably do not affect the result — ``engine``,
``fast_loop``, ``checkpoint_interval``, ``watchdog_interval`` — are
excluded from the digest (as are the observability fields ``profile`` and ``event_log``),
so a snapshot taken under one engine or cadence resumes cleanly
under another (resume is bit-identical either way; see
``tests/test_checkpoint.py``).

Crash drills: setting ``REPRO_CHECKPOINT_KILL_AFTER=N`` makes the
*first* process writing snapshots into a directory SIGKILL itself right
after its ``N``-th snapshot (a marker file keeps retries alive).  The
crash-recovery tests and the CI smoke job use this to exercise the real
kill-and-resume path end to end.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path

import repro
from repro.config import SimConfig
from repro.errors import CheckpointError
from repro.fsutil import atomic_write_text, quarantine
from repro.obs import events as obs_events
from repro.sim.results import SimResult
from repro.sim.simulator import Simulator
from repro.trace import Trace

__all__ = [
    "SCHEMA",
    "VERSION",
    "CheckpointManager",
    "CheckpointedRun",
    "snapshot_meta",
    "run_with_checkpoints",
    "read_heartbeat",
    "read_summary",
    "HEARTBEAT_NAME",
    "SUMMARY_NAME",
]

SCHEMA = "repro.checkpoint"
VERSION = 1

HEARTBEAT_NAME = "heartbeat.json"
SUMMARY_NAME = "ckpt-summary.json"

#: Crash-drill hook (tests, CI smoke job): SIGKILL the process after it
#: has written this many snapshots, once per checkpoint directory.
KILL_AFTER_ENV = "REPRO_CHECKPOINT_KILL_AFTER"
_KILL_MARKER = "crash-drill.done"


def snapshot_meta(trace: Trace, config: SimConfig) -> dict:
    """Identity metadata binding snapshots to one (trace, config) run.

    ``engine``, ``fast_loop``, ``checkpoint_interval``,
    ``watchdog_interval``, ``profile``, and ``event_log`` are
    normalized out of the config digest: none of them affects the
    simulated result, so snapshots stay resumable across engine,
    cadence, and observability changes.
    """
    normalized = config.execution_normalized()
    digest = hashlib.sha256(repr(normalized).encode("utf-8")) \
        .hexdigest()[:16]
    return {
        "trace": trace.name,
        "seed": trace.seed,
        "instructions": len(trace),
        "config_digest": digest,
        "repro_version": repro.__version__,
    }


class _CorruptSnapshot(Exception):
    """Internal: a snapshot file that should be quarantined, not raised."""


class CheckpointManager:
    """Directory of rotating, checksummed machine snapshots for one run.

    ``meta`` is the run identity (:func:`snapshot_meta`); ``keep`` is
    how many snapshots to retain (older ones are rotated away — one
    would suffice for resume, a second survives a crash *during* the
    newest write even if the filesystem reorders the replace).
    """

    def __init__(self, directory: str | Path, *, meta: dict | None = None,
                 keep: int = 2):
        if keep < 1:
            raise CheckpointError(str(directory),
                                  f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.meta = dict(meta) if meta else {}
        self.keep = keep
        self.written = 0
        self.quarantined = 0
        # Snapshots written by earlier (killed) attempts in this
        # directory still count toward the run's total.
        beat = read_heartbeat(self.directory)
        if beat is not None:
            self.written = int(beat.get("snapshots", 0))

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def path_for(self, cycle: int) -> Path:
        return self.directory / f"ckpt-{cycle:012d}.ckpt.json"

    def write(self, state: dict) -> Path:
        """Persist one machine snapshot durably; rotate old ones."""
        payload = json.dumps(state, separators=(",", ":"))
        envelope = json.dumps({
            "schema": SCHEMA,
            "version": VERSION,
            "meta": self.meta,
            "checksum": hashlib.sha256(
                payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        })
        path = self.path_for(int(state["cycle"]))
        atomic_write_text(self.directory, path, envelope, durable=True)
        self.written += 1
        self.heartbeat(int(state["cycle"]), int(state.get("retired", 0)))
        obs_events.emit("checkpoint_written", data={
            "cycle": int(state["cycle"]),
            "retired": int(state.get("retired", 0)),
            "snapshots": self.written, "path": str(path)})
        self._rotate()
        self._crash_drill()
        return path

    def heartbeat(self, cycle: int, retired: int) -> None:
        """Record forward progress for the supervising process.

        Best-effort (not fsynced): losing the last beat in a crash only
        delays stuck-vs-slow classification by one interval.
        """
        atomic_write_text(
            self.directory, self.directory / HEARTBEAT_NAME,
            json.dumps({"cycle": cycle, "retired": retired,
                        "snapshots": self.written, "pid": os.getpid(),
                        "time": time.time()}))

    def _rotate(self) -> None:
        for path in self.snapshots()[:-self.keep]:
            try:
                path.unlink()
            except OSError:
                pass

    def _crash_drill(self) -> None:
        spec = os.environ.get(KILL_AFTER_ENV)
        if not spec:
            return
        marker = self.directory / _KILL_MARKER
        if self.written >= int(spec) and not marker.exists():
            # Durably mark the drill done first, so the retry survives.
            atomic_write_text(self.directory, marker, "killed",
                              durable=True)
            os.kill(os.getpid(), signal.SIGKILL)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def snapshots(self) -> list[Path]:
        """Snapshot files on disk, oldest first."""
        return sorted(self.directory.glob("ckpt-*.ckpt.json"))

    def _parse(self, path: Path) -> dict:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise _CorruptSnapshot(f"cannot read: {exc}") from None
        try:
            envelope = json.loads(text)
        except ValueError as exc:
            raise _CorruptSnapshot(f"not valid JSON ({exc})") from None
        if not isinstance(envelope, dict) \
                or envelope.get("schema") != SCHEMA:
            raise _CorruptSnapshot("not a repro checkpoint envelope")
        if envelope.get("version") != VERSION:
            raise CheckpointError(
                str(path), f"unsupported checkpoint version "
                           f"{envelope.get('version')!r} "
                           f"(this build reads version {VERSION})")
        payload = envelope.get("payload")
        if not isinstance(payload, str):
            raise _CorruptSnapshot("missing payload")
        digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if digest != envelope.get("checksum"):
            raise _CorruptSnapshot("checksum mismatch")
        stored = envelope.get("meta", {})
        if self.meta and stored:
            mismatched = sorted(
                field for field in self.meta
                if field in stored and stored[field] != self.meta[field])
            if mismatched:
                detail = ", ".join(
                    f"{field}: snapshot has {stored[field]!r}, this run "
                    f"has {self.meta[field]!r}" for field in mismatched)
                raise CheckpointError(
                    str(path),
                    f"belongs to a different run ({detail}); point this "
                    f"run at a fresh checkpoint directory or delete the "
                    f"stale snapshots")
        try:
            state = json.loads(payload)
        except ValueError as exc:
            raise _CorruptSnapshot(
                f"payload not valid JSON ({exc})") from None
        if not isinstance(state, dict) or "cycle" not in state:
            raise _CorruptSnapshot("payload is not a machine snapshot")
        return state

    def load(self, path: str | Path) -> dict:
        """Parse one snapshot file, raising on any defect."""
        try:
            return self._parse(Path(path))
        except _CorruptSnapshot as exc:
            raise CheckpointError(str(path), str(exc)) from None

    def latest(self) -> dict | None:
        """Newest valid snapshot state, or None when there is none.

        Corrupt snapshots (truncated by a crash mid-write, garbled on
        disk) are quarantined and skipped; an identity or version
        mismatch raises :class:`CheckpointError` instead — resuming it
        would be silently wrong.
        """
        for path in reversed(self.snapshots()):
            try:
                return self._parse(path)
            except _CorruptSnapshot as exc:
                try:
                    quarantine(path)
                    self.quarantined += 1
                    obs_events.emit("checkpoint_quarantined", data={
                        "path": str(path), "reason": str(exc)})
                except OSError:
                    pass
        return None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop snapshots and the heartbeat (the run completed)."""
        for path in self.snapshots():
            try:
                path.unlink()
            except OSError:
                pass
        try:
            (self.directory / HEARTBEAT_NAME).unlink()
        except OSError:
            pass

    def write_summary(self, resumed_from_cycle: int | None) -> None:
        """Leave completion counters behind for the supervising process."""
        atomic_write_text(
            self.directory, self.directory / SUMMARY_NAME,
            json.dumps({"snapshots": self.written,
                        "resumed_from_cycle": resumed_from_cycle,
                        "quarantined": self.quarantined}))


def read_heartbeat(directory: str | Path) -> dict | None:
    """The directory's heartbeat, or None (missing or corrupt)."""
    return _read_json(Path(directory) / HEARTBEAT_NAME)


def read_summary(directory: str | Path) -> dict | None:
    """The directory's completion summary, or None."""
    return _read_json(Path(directory) / SUMMARY_NAME)


def _read_json(path: Path) -> dict | None:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


@dataclass
class CheckpointedRun:
    """Outcome of one :func:`run_with_checkpoints` call."""

    result: SimResult
    snapshots_written: int
    resumed_from_cycle: int | None
    quarantined: int


def run_with_checkpoints(trace: Trace, config: SimConfig, *,
                         directory: str | Path,
                         name: str | None = None,
                         fast_loop: bool | None = None,
                         engine: str | None = None,
                         keep: int = 2, resume: bool = True,
                         cleanup: bool = True) -> CheckpointedRun:
    """Run one simulation with periodic snapshots and crash resume.

    When ``directory`` already holds a valid snapshot of this exact run
    (same trace, seed, length, config — see :func:`snapshot_meta`) and
    ``resume`` is true, the simulation continues from it instead of
    cycle 0; the final :class:`~repro.sim.results.SimResult` is
    bit-identical to an uninterrupted run either way.  Snapshots are
    written every ``config.checkpoint_interval`` cycles (0 disables
    them — the run is then merely *resumable from* existing snapshots,
    not crash-safe itself).  On success a summary file with the
    snapshot/resume counters is left behind and, with ``cleanup``, the
    now-useless snapshots are dropped.
    """
    manager = CheckpointManager(directory, meta=snapshot_meta(trace, config),
                                keep=keep)
    sim = Simulator(trace, config, name=name, fast_loop=fast_loop,
                    engine=engine)
    resumed_from = None
    if resume:
        state = manager.latest()
        if state is not None:
            sim.load_state_dict(state)
            resumed_from = int(state["cycle"])
            obs_events.emit("checkpoint_resumed", data={
                "cycle": resumed_from,
                "retired": int(state.get("retired", 0)),
                "name": sim.name})
    if config.checkpoint_interval > 0:
        sim.checkpoint_sink = manager.write
    result = sim.run()
    manager.write_summary(resumed_from)
    if cleanup:
        manager.clear()
    return CheckpointedRun(result=result,
                           snapshots_written=manager.written,
                           resumed_from_cycle=resumed_from,
                           quarantined=manager.quarantined)
