"""Simulator wiring and results."""

from repro.sim.invariants import (
    InvariantViolation,
    assert_invariants,
    check_invariants,
    guard_invariants,
)
from repro.sim.results import SimResult
from repro.sim.sharding import (
    DEFAULT_SHARD_OVERLAP,
    ShardPlan,
    ShardSpec,
    merge_shard_snapshots,
    plan_shards,
    sharded_result,
)
from repro.sim.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.sim.simulator import Simulator, make_prefetcher
from repro.sim.checkpoint import (
    CheckpointManager,
    CheckpointedRun,
    read_heartbeat,
    run_with_checkpoints,
    snapshot_meta,
)

__all__ = [
    "Simulator",
    "SimResult",
    "CheckpointManager",
    "CheckpointedRun",
    "run_with_checkpoints",
    "snapshot_meta",
    "read_heartbeat",
    "DEFAULT_SHARD_OVERLAP",
    "ShardPlan",
    "ShardSpec",
    "plan_shards",
    "merge_shard_snapshots",
    "sharded_result",
    "make_prefetcher",
    "check_invariants",
    "guard_invariants",
    "assert_invariants",
    "InvariantViolation",
    "result_to_dict",
    "result_from_dict",
    "result_to_json",
    "result_from_json",
]


def __getattr__(name: str):
    if name == "run_simulation":
        raise AttributeError(
            "repro.sim.run_simulation was removed; call "
            "repro.simulate(trace, config, name=...) instead "
            "(same signature and behavior)")
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
