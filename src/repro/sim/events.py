"""The event-driven cycle engine: wake scheduling over components.

The naive loop polls every component every cycle; the fast engine
(``sim/fastpath.py``) adds machine-wide idle-window jumps but pays a
full stall-proof attempt on every cycle that delivers nothing — which
is why it *regresses* on prefetch-saturated runs, where the proof fails
(the prefetcher is busy) tens of thousands of times without ever
winning a jump.  This engine inverts the control flow: work is driven
by component wake state, not polling.

Three mechanisms, all bit-identical to the naive loop:

1. **Per-component tick elision.**  Each component's wake contract
   (:meth:`~repro.component.Component.next_wake_cycle`, plus the
   architectural state the contract is derived from) tells the loop
   when a tick can only be the component's own stall-counter bump; the
   loop applies the bump directly and skips the call:

   - *memory*: with no fill due (``next_wake_cycle`` → None or a
     future cycle), ``begin_cycle`` only resets the tag-port budget —
     inlined;
   - *backend*: before the oldest completion, ``retire`` only bumps
     ``retire_stall_cycles`` (window non-empty) or nothing (empty);
   - *fetch*: while the pending demand fill is in flight, ``tick``
     only bumps ``miss_stall_cycles``;
   - *predict*: while the FTQ is full, ``tick`` only bumps
     ``ftq_full_stalls`` (its first check, before any wait state).

   The prefetcher is ticked every cycle unless its class declares
   :attr:`~repro.prefetch.base.Prefetcher.inert_tick` (the no-prefetch
   baseline): quiescence alone is not enough, because a quiescent
   stream prefetcher's no-op tick still refreshes an internal LRU
   clock, so elision there would not be exact.

2. **Adaptively gated analytic jumps.**  Machine-wide idle spans are
   jumped exactly as under the fast engine (same
   :func:`~repro.sim.fastpath.stall_proof`, same
   ``Simulator._apply_skip`` bookkeeping), but the two jump gates —
   the stall proof and :meth:`~repro.prefetch.base.Prefetcher.
   quiescent` — are evaluated last-rejector-first.  On a saturated
   FDIP run the prefetcher's O(1) PIQ check rejects every attempt and
   stays in front; on a stream-prefetcher run quiescence walks every
   buffer, so the proof (which rejects on the FTQ head) moves in
   front instead.  Gate order cannot change the outcome — a jump
   needs both — so the adaptation is bit-identical by construction.

3. **A wake calendar.**  :class:`WakeCalendar` is a small binary-heap
   scheduler over ``(cycle, source)`` wake entries; each successful
   jump is planned by pushing every component's self-scheduled wake
   bound and popping the earliest.  The surviving entries name the
   wake order inside the span — :func:`plan_wake` exposes the chosen
   wake source for diagnostics (the watchdog stall dump).

Equivalence is enforced by the engine matrix in
``tests/test_fast_loop_equivalence.py`` and the checkpoint fuzz suite;
selection is ``SimConfig(engine="event")`` (the default — see
``docs/performance.md``).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.errors import SimulationError, WatchdogStallError
from repro.obs import events as obs_events
from repro.sim.fastpath import SkipPlan, stall_proof
from repro.stats import IntervalSampler, RunLengthObserver

if TYPE_CHECKING:
    from repro.sim.simulator import Simulator

__all__ = ["WakeCalendar", "plan_wake", "run_event_loop"]


class WakeCalendar:
    """A binary-heap calendar of pending ``(cycle, source)`` wakes.

    The event engine plans each analytic jump through one calendar
    instance (reused across attempts — no per-attempt allocation): the
    components' self-scheduled wake bounds are pushed, the earliest is
    the jump target, and the head entry names the wake source.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: list[tuple[int, str]] = []

    def clear(self) -> None:
        del self._heap[:]

    def push(self, cycle: int, source: str) -> None:
        heapq.heappush(self._heap, (cycle, source))

    def refill(self, wakes: list[tuple[int, str]]) -> tuple[int, str] | None:
        """Replace the pending wakes wholesale and return the earliest.

        Takes ownership of ``wakes``; one C-level heapify beats a
        Python-level push per entry, and the jump planner refills the
        whole calendar on every attempt anyway.
        """
        heapq.heapify(wakes)
        self._heap = wakes
        return wakes[0] if wakes else None

    def earliest(self) -> tuple[int, str] | None:
        """The soonest pending wake, without removing it."""
        return self._heap[0] if self._heap else None

    def pop(self) -> tuple[int, str]:
        return heapq.heappop(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:
        head = self._heap[0] if self._heap else None
        return f"WakeCalendar(pending={len(self._heap)}, next={head})"


def _plan_from_proof(proof, cycle: int, max_cycles: int,
                     calendar: WakeCalendar) -> SkipPlan | None:
    """Turn a successful stall proof into a jump plan (or None when
    the earliest wake is too close to skip anything)."""
    fetch_counter, predict_counter, retire_stalled, wakes = proof
    head = calendar.refill(wakes)
    target = head[0] if head is not None else max_cycles + 1
    if target > max_cycles + 1:
        target = max_cycles + 1
    skipped = target - cycle - 1
    if skipped <= 0:
        return None
    return SkipPlan(target=target, cycles=skipped,
                    fetch_counter=fetch_counter,
                    predict_counter=predict_counter,
                    retire_stalled=retire_stalled)


def plan_wake(sim: "Simulator", cycle: int, max_cycles: int,
              calendar: WakeCalendar) -> SkipPlan | None:
    """The event engine's jump planner.

    Precondition: the caller has already established prefetcher
    quiescence (gate ordering is the caller's concern — the engine
    adapts it to the workload).  Runs the shared
    :func:`~repro.sim.fastpath.stall_proof`, orders the wake bounds
    through ``calendar``, and returns the same
    :class:`~repro.sim.fastpath.SkipPlan` the fast engine would — the
    two engines are bit-identical by construction.
    """
    proof = stall_proof(sim, cycle)
    if proof is None:
        return None
    return _plan_from_proof(proof, cycle, max_cycles, calendar)


def run_event_loop(sim: "Simulator", *, total: int, warmup: int,
                   max_cycles: int, occupancy: RunLengthObserver,
                   sampler: IntervalSampler | None, interval: int,
                   sink, next_ckpt: int | None, watchdog: int,
                   ) -> tuple[RunLengthObserver, IntervalSampler | None]:
    """Drive ``sim`` to completion under wake scheduling.

    Mirrors the naive loop's per-cycle schedule exactly — same
    component order, same one-stall-counter-per-cycle accounting, same
    warm-up reset, watchdog, and ``>=``-triggered checkpoint semantics
    across jumps — while eliding ticks the wake contracts prove to be
    pure stall bumps.  Returns the (possibly warm-up-rebound) occupancy
    observer and interval sampler for the caller's finalization.
    """
    config = sim.config
    window = config.telemetry_window
    profiler = sim.profiler
    memory = sim.memory
    mem_stats = memory.stats
    backend = sim.backend
    fetch_engine = sim.fetch_engine
    predict_unit = sim.predict_unit
    prefetcher = sim.prefetcher
    ftq = sim.ftq

    # Hot-loop locals.  The underlying containers are mutated in place
    # everywhere during a run (squash clears, heap pushes/pops), never
    # rebound — load_state_dict, which does rebind, only runs between
    # runs.
    mem_events = memory._events
    ftq_entries = ftq._entries
    ftq_depth = ftq.depth
    fetch_bump = fetch_engine.stats.bump
    predict_bump = predict_unit.stats.bump
    backend_bump = backend.stats.bump
    prefetch_tick = prefetcher.tick
    prefetch_inert = prefetcher.inert_tick
    quiescent = prefetcher.quiescent
    issue_width = backend.core.issue_width
    bwindow = backend._window
    bwindow_popleft = bwindow.popleft
    calendar = WakeCalendar()
    proof_first = False   # adaptive jump-gate order; see the skip gate

    # The cycle counter and the occupancy run-length accumulator live
    # in locals; ``sim.cycle`` and the observer fields are synced at
    # every boundary where other code can read them (warm-up reset,
    # analytic jumps, watchdog trips, checkpoint snapshots, loop exit).
    cycle = sim.cycle
    warmed = sim._warmed
    occ_hist = occupancy._histogram
    occ_value = occupancy._value
    occ_weight = occupancy._weight
    # A single ``cycle >= ckpt_at`` compare per cycle; the sentinel
    # sits past the cycle-cap error so it can never trigger.
    ckpt_at = next_ckpt if next_ckpt is not None else max_cycles + 2

    progress_cycle = cycle
    progress_retired = backend.retired
    if backend.retired >= total:
        return occupancy, sampler

    while True:
        cycle += 1
        if cycle > max_cycles:
            sim.cycle = cycle
            occupancy._value = occ_value
            occupancy._weight = occ_weight
            raise SimulationError(
                f"cycle cap exceeded ({max_cycles}); retired "
                f"{backend.retired}/{total} — likely a deadlock")
        # memory: wake only when a fill is due; otherwise inline the
        # input-free bookkeeping begin_cycle would do.
        if mem_events and mem_events[0][0] <= cycle:
            memory.begin_cycle(cycle)
        else:
            memory._now = cycle
            memory._ports_used = 0
        # backend: asleep until the oldest completion; a non-empty
        # window owes exactly one retire_stall_cycles per stalled cycle
        # (matching the fast engine's batch accounting).  The due case
        # inlines Backend.retire (a completion at the head guarantees
        # n >= 1, so the n == 0 stall branch cannot apply).
        if bwindow:
            if bwindow[0] <= cycle:
                n = 0
                while n < issue_width and bwindow and bwindow[0] <= cycle:
                    bwindow_popleft()
                    n += 1
                backend.retired += n
                backend_bump("retired", n)
            else:
                backend_bump("retire_stall_cycles")
        if sim._resolve_at is not None and cycle >= sim._resolve_at:
            sim._squash_and_redirect()
        # fetch: asleep until the pending demand fill lands; the
        # elided tick would only bump miss_stall_cycles.
        waiting = fetch_engine._waiting_until
        if waiting is not None and cycle < waiting:
            fetch_bump("miss_stall_cycles")
            fetched = False
        else:
            fetched = fetch_engine.tick(cycle)
        # predict: a full FTQ is its first check — the elided tick
        # would only bump ftq_full_stalls.
        if len(ftq_entries) >= ftq_depth:
            predict_bump("ftq_full_stalls")
        else:
            predict_unit.tick(cycle, ftq)
        # prefetcher: ticked every cycle unless its tick is declared
        # inert — quiescent ticks are no-ops by contract, but the
        # stream prefetcher's no-op still refreshes its LRU clock, so
        # quiescence alone does not justify elision.
        if not prefetch_inert:
            prefetch_tick(cycle, ftq)
        retired = backend.retired
        # Occupancy run-length accounting, inlined (one branch per
        # cycle instead of a method call; same arithmetic as
        # RunLengthObserver.observe).
        occ = len(ftq_entries)
        if occ == occ_value:
            occ_weight += 1
        else:
            if occ_weight:
                occ_hist.observe(occ_value, occ_weight)
            occ_value = occ
            occ_weight = 1
        if sampler is not None:
            sampler.advance(cycle, occ, retired,
                            mem_stats.get("demand_misses"))
        if profiler is not None:
            profiler.observe(sim, bool(fetched))

        if not warmed and retired >= warmup:
            sim.cycle = cycle
            occupancy._value = occ_value
            occupancy._weight = occ_weight
            occupancy.flush()
            sim._reset_measurement()
            warmed = True
            occupancy = RunLengthObserver(
                sim.stats.histogram("ftq_occupancy"))
            occ_hist = occupancy._histogram
            occ_value = occupancy._value
            occ_weight = occupancy._weight
            if sampler is not None:
                sampler = IntervalSampler(
                    window, origin=cycle, base_retired=retired)
            obs_events.emit("warmup_end", data={
                "name": sim.name, "cycle": cycle, "retired": retired})
        elif not fetched and retired < total:
            # A jump needs both gates: the stall proof and prefetcher
            # quiescence.  Which one is cheap and which one rejects is
            # workload-dependent (a saturated FDIP rejects on its PIQ
            # in O(1); a stream prefetcher's quiescence walks every
            # buffer while the proof rejects on the FTQ head), so the
            # engine checks the gate that rejected last first —
            # move-to-front over two gates, bit-identical under either
            # order.
            if proof_first:
                proof = stall_proof(sim, cycle)
                if proof is not None and not quiescent(ftq):
                    proof = None
                    proof_first = False
            elif quiescent(ftq):
                proof = stall_proof(sim, cycle)
                if proof is None:
                    proof_first = True
            else:
                proof = None
            if proof is not None:
                plan = _plan_from_proof(proof, cycle, max_cycles,
                                        calendar)
                if plan is not None:
                    sim.cycle = cycle
                    occupancy._value = occ_value
                    occupancy._weight = occ_weight
                    sim._apply_skip(plan, occupancy, sampler)
                    cycle = sim.cycle
                    occ_value = occupancy._value
                    occ_weight = occupancy._weight

        if watchdog > 0:
            if retired > progress_retired:
                progress_retired = retired
                progress_cycle = cycle
            elif cycle - progress_cycle >= watchdog:
                sim.cycle = cycle
                occupancy._value = occ_value
                occupancy._weight = occ_weight
                obs_events.emit("watchdog_stall", data={
                    "name": sim.name, "cycle": cycle,
                    "retired": retired,
                    "watchdog_interval": watchdog})
                raise WatchdogStallError(
                    cycle, retired, watchdog, state=sim._stall_dump())
        if cycle >= ckpt_at:
            # End-of-cycle consistent point; ``>=`` (not ``==``)
            # because an analytic jump may cross the boundary.
            sim.cycle = cycle
            occupancy._value = occ_value
            occupancy._weight = occ_weight
            sink(sim.state_dict(occupancy=occupancy, sampler=sampler))
            ckpt_at = cycle + interval
        if retired >= total:
            # Retirement only moves in the retire step at the top of
            # the cycle, so the end-of-cycle check is equivalent to the
            # naive loop's top-of-cycle condition.
            break

    sim.cycle = cycle
    occupancy._value = occ_value
    occupancy._weight = occ_weight
    return occupancy, sampler
