"""Named synthetic workloads standing in for the paper's benchmarks."""

from repro.workloads.calibrate import (
    DEFAULT_BANDS,
    CalibrationBand,
    CalibrationReport,
    calibrate,
    calibrate_suite,
)
from repro.workloads.suite import (
    ALL_WORKLOADS,
    CLIENT_WORKLOADS,
    PROFILES,
    SERVER_WORKLOADS,
    WorkloadProfile,
    build_program,
    build_trace,
    get_profile,
)

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "ALL_WORKLOADS",
    "CLIENT_WORKLOADS",
    "SERVER_WORKLOADS",
    "get_profile",
    "build_program",
    "build_trace",
    "DEFAULT_BANDS",
    "CalibrationBand",
    "CalibrationReport",
    "calibrate",
    "calibrate_suite",
]
