"""Workload calibration checking.

Each profile carries an *intent*: a band of front-end-relevant
characteristics (dynamic block footprint, control fraction, taken rate,
base L1-I MPKI) that makes it a meaningful stand-in for its namesake
benchmark class.  :func:`calibrate` measures a profile against its band
and reports drift — the maintenance tool to run after touching the
generator or the profile shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import simulate
from repro.config import PrefetchConfig, PrefetcherKind, SimConfig
from repro.trace import characterize
from repro.workloads.suite import ALL_WORKLOADS, build_trace, get_profile

__all__ = ["CalibrationBand", "CalibrationReport", "calibrate",
           "calibrate_suite", "DEFAULT_BANDS"]


@dataclass(frozen=True)
class CalibrationBand:
    """Acceptable ranges for one profile's measured characteristics."""

    dyn_footprint_kb: tuple[float, float]
    control_fraction: tuple[float, float] = (0.10, 0.35)
    taken_fraction: tuple[float, float] = (0.55, 0.95)
    base_mpki: tuple[float, float] = (0.0, 100.0)


# Bands encode the *category* intent: clients must (mostly) fit a 16KB
# L1-I, servers must exceed it.  Per-profile footprint bands order the
# suite from tiny kernels to the largest OO server workload.  Bands
# assume trace lengths of roughly the default 60k instructions or more
# (dynamic footprints grow with trace length before saturating).
DEFAULT_BANDS: dict[str, CalibrationBand] = {
    "compress_like": CalibrationBand((0.05, 4.0), base_mpki=(0.0, 3.0)),
    "li_like": CalibrationBand((1.0, 8.0), base_mpki=(0.0, 6.0)),
    "ijpeg_like": CalibrationBand((1.0, 10.0), base_mpki=(0.0, 6.0)),
    "m88ksim_like": CalibrationBand((1.0, 12.0), base_mpki=(0.0, 8.0)),
    "deltablue_like": CalibrationBand((4.0, 16.0), base_mpki=(1.0, 25.0)),
    "go_like": CalibrationBand((3.0, 16.0), base_mpki=(0.5, 15.0)),
    "groff_like": CalibrationBand((10.0, 32.0), base_mpki=(3.0, 30.0)),
    "perl_like": CalibrationBand((13.0, 48.0), base_mpki=(10.0, 70.0)),
    "gcc_like": CalibrationBand((16.0, 48.0), base_mpki=(8.0, 50.0)),
    "vortex_like": CalibrationBand((24.0, 80.0), base_mpki=(15.0, 90.0)),
}


@dataclass(frozen=True)
class CalibrationReport:
    """Measured characteristics of one profile vs its band."""

    name: str
    dyn_footprint_kb: float
    control_fraction: float
    taken_fraction: float
    base_mpki: float
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def _in_band(value: float, band: tuple[float, float]) -> bool:
    return band[0] <= value <= band[1]


def calibrate(name: str, trace_length: int = 60_000, seed: int = 1,
              band: CalibrationBand | None = None) -> CalibrationReport:
    """Measure one profile and compare against its band."""
    get_profile(name)  # raises for unknown names
    if band is None:
        band = DEFAULT_BANDS[name]
    trace = build_trace(name, trace_length, seed=seed)
    stats = characterize(trace)
    base = simulate(trace, SimConfig(
        prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
        warmup_instructions=trace_length // 5))

    dyn_kb = stats.distinct_blocks * stats.block_bytes / 1024.0
    failures = []
    if not _in_band(dyn_kb, band.dyn_footprint_kb):
        failures.append(
            f"dyn footprint {dyn_kb:.1f}KB outside "
            f"{band.dyn_footprint_kb}")
    if not _in_band(stats.control_fraction, band.control_fraction):
        failures.append(
            f"control fraction {stats.control_fraction:.2f} outside "
            f"{band.control_fraction}")
    if not _in_band(stats.taken_fraction, band.taken_fraction):
        failures.append(
            f"taken fraction {stats.taken_fraction:.2f} outside "
            f"{band.taken_fraction}")
    if not _in_band(base.l1i_mpki, band.base_mpki):
        failures.append(
            f"base MPKI {base.l1i_mpki:.1f} outside {band.base_mpki}")

    return CalibrationReport(
        name=name,
        dyn_footprint_kb=dyn_kb,
        control_fraction=stats.control_fraction,
        taken_fraction=stats.taken_fraction,
        base_mpki=base.l1i_mpki,
        failures=tuple(failures),
    )


def calibrate_suite(trace_length: int = 60_000,
                    seed: int = 1) -> list[CalibrationReport]:
    """Calibrate every profile in the suite."""
    return [calibrate(name, trace_length, seed)
            for name in ALL_WORKLOADS]
