"""The workload suite.

The paper evaluates on SPEC95-era programs with widely varying instruction
footprints.  Those binaries (and the authors' SimpleScalar setup) are not
available here, so each benchmark is substituted by a synthetic profile
whose *front-end-relevant* characteristics bracket the original: static
code footprint, dispatch fan-out (how much code each outer-loop iteration
sweeps), call-graph depth, branch bias mix, and indirect-branch density.

Profiles are grouped into two categories:

- ``client`` — small instruction working sets that mostly fit a 16KB L1-I;
  prefetching opportunity is limited.
- ``server`` — working sets several times the L1-I, swept repeatedly by a
  wide dispatch loop; these are the workloads where fetch-directed
  prefetching shines.

Every profile is deterministic: (profile name, seed, length) identifies a
trace exactly, which the on-disk trace cache exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfg import Program, ProgramShape, generate_program
from repro.errors import ConfigError
from repro.trace import Trace, TraceCache

__all__ = [
    "WorkloadProfile",
    "PROFILES",
    "CLIENT_WORKLOADS",
    "SERVER_WORKLOADS",
    "ALL_WORKLOADS",
    "get_profile",
    "build_program",
    "build_trace",
]

_GENERATOR_VERSION = 6  # bump to invalidate cached traces


@dataclass(frozen=True)
class WorkloadProfile:
    """One named synthetic workload."""

    name: str
    category: str              # "client" or "server"
    description: str
    shape: ProgramShape
    program_seed: int = 11

    def __post_init__(self) -> None:
        if self.category not in ("client", "server"):
            raise ConfigError(
                f"category must be client/server, got {self.category!r}")


def _shape(target_instrs: int, n_functions: int, fanout: int,
           zipf: float = 0.6, levels: int = 8,
           indirect: float = 0.15, loops: float = 0.25,
           call_zipf: float = 1.2, p_call: float = 0.16,
           biases: tuple[float, ...] | None = None) -> ProgramShape:
    kwargs = dict(
        target_instrs=target_instrs,
        n_functions=n_functions,
        n_levels=min(levels, n_functions),
        dispatcher_fanout=fanout,
        dispatcher_zipf_s=zipf,
        p_call_indirect=indirect,
        p_loop=loops,
        call_zipf_s=call_zipf,
        p_call=p_call,
    )
    if biases is not None:
        kwargs["taken_bias_choices"] = biases
    return ProgramShape(**kwargs)


PROFILES: dict[str, WorkloadProfile] = {
    profile.name: profile
    for profile in [
        WorkloadProfile(
            name="compress_like",
            category="client",
            description="tiny loopy kernel; fits the L1-I easily",
            shape=_shape(2048, 12, 2, zipf=1.2, levels=4, loops=0.40),
        ),
        WorkloadProfile(
            name="li_like",
            category="client",
            description="lisp interpreter; tiny hot loop, deep recursion",
            shape=_shape(4096, 24, 2, zipf=1.1, levels=6, loops=0.35,
                         indirect=0.25),
        ),
        WorkloadProfile(
            name="ijpeg_like",
            category="client",
            description="image codec; compute kernels, few branches",
            shape=_shape(8192, 40, 4, zipf=1.0, levels=6, loops=0.45,
                         biases=(0.05, 0.1, 0.9, 0.95)),
        ),
        WorkloadProfile(
            name="m88ksim_like",
            category="client",
            description="small simulator loop; modest footprint",
            shape=_shape(6144, 32, 3, zipf=1.0, levels=6, loops=0.32),
        ),
        WorkloadProfile(
            name="deltablue_like",
            category="client",
            description="OO constraint solver; call/indirect heavy",
            shape=_shape(12288, 64, 6, zipf=0.9, levels=8, indirect=0.30),
        ),
        WorkloadProfile(
            name="go_like",
            category="client",
            description="hard-to-predict branches, mid footprint",
            shape=_shape(24576, 96, 8, zipf=0.8,
                         biases=(0.2, 0.35, 0.5, 0.5, 0.65, 0.8)),
        ),
        WorkloadProfile(
            name="groff_like",
            category="server",
            description="document formatter; large swept working set",
            shape=_shape(32768, 128, 32, zipf=0.35, call_zipf=0.4,
                         loops=0.18, p_call=0.20),
        ),
        WorkloadProfile(
            name="perl_like",
            category="server",
            description="interpreter dispatch; indirect heavy, large",
            shape=_shape(40960, 160, 40, zipf=0.3, indirect=0.35,
                         call_zipf=0.4, loops=0.18, p_call=0.20),
        ),
        WorkloadProfile(
            name="gcc_like",
            category="server",
            description="compiler passes; very large instruction footprint",
            shape=_shape(49152, 192, 48, zipf=0.15, call_zipf=0.3,
                         loops=0.15, p_call=0.22),
        ),
        WorkloadProfile(
            name="vortex_like",
            category="server",
            description="OO database; the largest footprint in the suite",
            shape=_shape(65536, 256, 72, zipf=0.1, indirect=0.25,
                         call_zipf=0.3, loops=0.15, p_call=0.22),
        ),
    ]
}

CLIENT_WORKLOADS: tuple[str, ...] = tuple(
    name for name, profile in PROFILES.items()
    if profile.category == "client")
SERVER_WORKLOADS: tuple[str, ...] = tuple(
    name for name, profile in PROFILES.items()
    if profile.category == "server")
ALL_WORKLOADS: tuple[str, ...] = tuple(PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name; raises ConfigError for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(ALL_WORKLOADS)}") from None


def build_program(name: str) -> Program:
    """Generate the (deterministic) program for profile ``name``."""
    profile = get_profile(name)
    return generate_program(profile.shape, seed=profile.program_seed,
                            name=profile.name)


def build_trace(name: str, length: int, seed: int = 1,
                cache: TraceCache | None = None) -> Trace:
    """Build (or load from cache) a trace of ``length`` instructions."""
    profile = get_profile(name)

    def _build() -> Trace:
        program = build_program(name)
        return Trace.from_program(program, length, seed=seed,
                                  name=profile.name)

    if cache is None:
        cache = TraceCache()
    key = (f"v{_GENERATOR_VERSION}:{name}:seed{profile.program_seed}"
           f":walk{seed}:len{length}")
    return cache.get_or_build(key, _build)
