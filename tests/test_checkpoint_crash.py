"""SIGKILL-and-resume drills through the real execution paths.

``REPRO_CHECKPOINT_KILL_AFTER=N`` makes a worker SIGKILL itself right
after its N-th machine snapshot (once per checkpoint directory), so
these tests kill real pool workers mid-run and assert the supervised
retry resumes from the snapshot — and that the final results are
bit-identical to a never-killed run.  This is the closest the suite
gets to yanking the power cord.
"""

from __future__ import annotations

import pytest

from repro.config import PrefetchConfig, PrefetcherKind, SimConfig
from repro.harness.parallel import parallel_sweep
from repro.harness.shard_runner import run_sharded
from repro.sim.checkpoint import KILL_AFTER_ENV
from repro.workloads import build_trace

LENGTH = 2500


def _config(kind: str = PrefetcherKind.FDIP, **changes) -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind=kind))
    return config.replace(**changes) if changes else config


@pytest.mark.slow
def test_sweep_survives_sigkill_with_identical_results(tmp_path,
                                                       monkeypatch):
    points = [("gcc_like", _config(PrefetcherKind.NONE)),
              ("gcc_like", _config(PrefetcherKind.FDIP))]

    clean = parallel_sweep(points, trace_length=LENGTH, seed=3,
                           processes=1)
    assert clean.ok

    monkeypatch.setenv(KILL_AFTER_ENV, "2")
    drilled = parallel_sweep(points, trace_length=LENGTH, seed=3,
                             processes=2, max_retries=2,
                             machine_checkpoints=tmp_path / "mc",
                             checkpoint_interval=500)
    assert drilled.ok, [f.message for f in drilled.failures]
    for point in points:
        assert drilled[point] == clean[point]
    # Every point was killed once and came back from a snapshot.
    assert drilled.counters["crashes"] >= 1
    assert drilled.counters["ckpt_resumes"] >= 1
    assert drilled.counters["snapshots"] > 0


@pytest.mark.slow
def test_sharded_run_survives_sigkill(tmp_path, monkeypatch):
    trace = build_trace("gcc_like", LENGTH, seed=5)
    config = _config(checkpoint_interval=400)

    clean = run_sharded(trace, config, shards=3, processes=1)

    monkeypatch.setenv(KILL_AFTER_ENV, "1")
    drilled = run_sharded(trace, config, shards=3, processes=2,
                          max_retries=2,
                          checkpoint_dir=str(tmp_path / "shards"))
    assert drilled == clean
    # Each shard directory ran its own crash drill.
    markers = list((tmp_path / "shards").glob("shard*/crash-drill.done"))
    assert len(markers) == 3
