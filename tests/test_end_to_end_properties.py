"""End-to-end property tests: random programs through the full simulator.

The strongest invariant in the repository: for *any* generated program
and *any* prefetcher, the trace-driven front end must deliver exactly
the committed instruction stream — every record retires, in order, no
matter how the predictors, FTB, caches, and squash logic interact.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.cfg import ProgramShape, TraceWalker, generate_program
from repro.ftb import FetchTargetBuffer, FTBEntry
from repro.isa import InstrKind
from repro.trace import Trace

_shapes = st.builds(
    ProgramShape,
    target_instrs=st.sampled_from([512, 1024, 2048]),
    n_functions=st.sampled_from([4, 8, 16]),
    n_levels=st.sampled_from([2, 3, 4]),
    dispatcher_fanout=st.integers(1, 4),
    p_loop=st.floats(0.0, 0.5),
    p_call_indirect=st.floats(0.0, 0.5),
    block_body_mean=st.floats(1.5, 6.0),
)


@given(_shapes, st.integers(0, 2 ** 16))
@settings(max_examples=12, deadline=None)
def test_generated_programs_always_validate(shape, seed):
    program = generate_program(shape, seed=seed)
    program.validate()
    assert program.n_instrs > 0


@given(_shapes, st.integers(0, 2 ** 16))
@settings(max_examples=10, deadline=None)
def test_walker_chain_consistency_on_random_programs(shape, seed):
    program = generate_program(shape, seed=seed)
    walker = TraceWalker(program, seed=seed ^ 0xABCD)
    records = walker.walk(1500)
    for previous, current in zip(records, records[1:]):
        assert previous.next_pc == current.pc
        assert program.instr_at(current.pc) is not None


@given(_shapes, st.integers(0, 2 ** 10),
       st.sampled_from(list(PrefetcherKind.ALL)))
@settings(max_examples=10, deadline=None)
def test_simulator_retires_every_record(shape, seed, kind):
    program = generate_program(shape, seed=seed)
    trace = Trace.from_program(program, 1200, seed=seed + 1)
    config = SimConfig(prefetch=PrefetchConfig(kind=kind))
    result = simulate(trace, config)
    assert result.instructions == len(trace)
    assert result.cycles > 0
    assert result.get("backend.retired") == len(trace)


@given(_shapes, st.integers(0, 2 ** 10))
@settings(max_examples=8, deadline=None)
def test_simulation_is_deterministic(shape, seed):
    program = generate_program(shape, seed=seed)
    trace = Trace.from_program(program, 800, seed=seed)
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))
    a = simulate(trace, config)
    b = simulate(trace, config)
    assert a.cycles == b.cycles
    assert a.counters == b.counters


# ----------------------------------------------------------------------
# FTB vs. a reference LRU model
# ----------------------------------------------------------------------

_ftb_ops = st.lists(
    st.tuples(st.booleans(), st.integers(0, 31)), max_size=150)


@given(_ftb_ops)
@settings(max_examples=50)
def test_ftb_matches_reference_lru(ops):
    ftb = FetchTargetBuffer(sets=4, ways=2)
    # Reference: per-set dict of pc -> entry, insertion order = LRU.
    reference: list[dict[int, int]] = [{} for _ in range(4)]

    for is_install, slot in ops:
        pc = 0x40_0000 + slot * 4
        set_index = slot % 4
        ref_set = reference[set_index]
        if is_install:
            entry = FTBEntry(start=pc, fallthrough=pc + 16,
                             target=pc + 64, kind=InstrKind.JUMP_DIRECT)
            ftb.install(entry)
            if pc in ref_set:
                del ref_set[pc]
            elif len(ref_set) >= 2:
                del ref_set[next(iter(ref_set))]
            ref_set[pc] = pc + 64
        else:
            found = ftb.lookup(pc)
            expected = ref_set.get(pc)
            if expected is None:
                assert found is None
            else:
                assert found is not None
                assert found.target == expected
                del ref_set[pc]
                ref_set[pc] = expected
    assert ftb.resident_entries() == sum(len(s) for s in reference)
