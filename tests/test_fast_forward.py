"""Functional fast-forward warm-up."""

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.errors import ConfigError


def config_with(ff=0, warmup=0, kind=PrefetcherKind.FDIP):
    return SimConfig(prefetch=PrefetchConfig(kind=kind),
                     fast_forward_instructions=ff,
                     warmup_instructions=warmup)


class TestFastForward:
    def test_measured_region_shrinks(self, small_trace):
        result = simulate(small_trace, config_with(ff=8000))
        assert result.instructions == len(small_trace) - 8000
        assert result.get("sim.fast_forwarded") == 8000

    def test_zero_is_default_and_noop(self, small_trace):
        result = simulate(small_trace, config_with())
        assert result.instructions == len(small_trace)
        assert result.get("sim.fast_forwarded") == 0

    def test_warms_structures(self, small_trace):
        cold = simulate(small_trace.slice(8000, len(small_trace)),
                              config_with())
        warm = simulate(small_trace, config_with(ff=8000))
        # Same measured records; the warmed run must miss less.
        assert warm.instructions == cold.instructions
        assert warm.l1i_mpki <= cold.l1i_mpki
        assert warm.mispredicts <= cold.mispredicts

    def test_close_to_timed_warmup(self, small_trace):
        timed = simulate(small_trace, config_with(warmup=8000))
        fast = simulate(small_trace, config_with(ff=8000))
        assert fast.ipc == pytest.approx(timed.ipc, rel=0.12)

    def test_ff_beyond_trace_clamped(self, small_trace):
        result = simulate(small_trace,
                                config_with(ff=10 ** 9))
        assert result.instructions == 1

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            config_with(ff=-1)

    def test_stats_reset_after_ff(self, small_trace):
        result = simulate(small_trace, config_with(ff=8000))
        # The functional pass must not leak fills into measured stats
        # beyond what the timed region itself did.
        assert result.get("l1i.fills") <= result.get("mem.demand_misses") \
            + result.get("mem.prefetches_issued") \
            + result.get("mshr.demand_merges") + 8
