"""Post-run invariant checker."""

import dataclasses

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.sim import (
    InvariantViolation,
    assert_invariants,
    check_invariants,
)


class TestOnRealRuns:
    @pytest.mark.parametrize("kind", PrefetcherKind.ALL)
    def test_every_prefetcher_consistent(self, small_trace, kind):
        config = SimConfig(prefetch=PrefetchConfig(kind=kind),
                           max_instructions=6000)
        result = simulate(small_trace, config)
        assert check_invariants(result) == []

    def test_with_warmup(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP), warmup_instructions=3000)
        result = simulate(small_trace, config)
        assert check_invariants(result, warmed_up=True) == []

    def test_wrong_path_off_consistent(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP), max_instructions=6000)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, model_wrong_path=False))
        result = simulate(small_trace, config)
        assert check_invariants(result) == []

    def test_two_level_ftb_consistent(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP), max_instructions=6000)
        predictor = dataclasses.replace(
            config.frontend.predictor, ftb_sets=16, ftb_ways=2,
            ftb_l2_sets=256)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, predictor=predictor))
        result = simulate(small_trace, config)
        assert check_invariants(result) == []


class TestDetection:
    def test_detects_corrupted_counters(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.NONE), max_instructions=3000)
        result = simulate(small_trace, config)
        result.counters["backend.retired"] += 1
        violations = check_invariants(result)
        assert violations

    def test_assert_raises(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.NONE), max_instructions=3000)
        result = simulate(small_trace, config)
        result.counters["sim.squashes"] += 5
        with pytest.raises(InvariantViolation):
            assert_invariants(result)

    def test_assert_passes_clean(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.NONE), max_instructions=3000)
        assert_invariants(simulate(small_trace, config))
