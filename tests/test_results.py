"""SimResult derived metrics."""

import pytest

from repro.sim import SimResult


def make_result(**overrides):
    defaults = dict(
        name="w", prefetcher="fdip", cycles=1000, instructions=2000,
        mispredicts=10, bpred_accuracy=0.9, ftq_mean_occupancy=5.0,
        demand_misses=40, demand_merges=10, bus_utilization=0.25,
        l2_misses=5, prefetches_issued=100, prefetches_useful=50,
        prefetches_late=10,
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        assert make_result().ipc == pytest.approx(2.0)

    def test_ipc_zero_cycles(self):
        assert make_result(cycles=0).ipc == 0.0

    def test_mpki_includes_merges(self):
        result = make_result()
        assert result.l1i_mpki == pytest.approx(1000 * 50 / 2000)

    def test_mispredicts_per_ki(self):
        assert make_result().mispredicts_per_ki == pytest.approx(5.0)

    def test_prefetch_accuracy(self):
        assert make_result().prefetch_accuracy == pytest.approx(0.5)

    def test_prefetch_accuracy_no_prefetches(self):
        assert make_result(prefetches_issued=0).prefetch_accuracy == 0.0

    def test_prefetch_coverage(self):
        result = make_result()
        assert result.prefetch_coverage == pytest.approx(50 / 100)

    def test_coverage_empty(self):
        result = make_result(prefetches_useful=0, demand_misses=0,
                             demand_merges=0)
        assert result.prefetch_coverage == 0.0

    def test_speedup_over(self):
        fast = make_result(cycles=500)
        slow = make_result(cycles=1000)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_speedup_over_zero_baseline(self):
        assert make_result().speedup_over(make_result(cycles=0)) == 0.0

    def test_counter_get_default(self):
        assert make_result().get("absent.counter") == 0

    def test_counter_get_present(self):
        result = make_result(counters={"fdip.issued": 7})
        assert result.get("fdip.issued") == 7

    def test_repr_readable(self):
        text = repr(make_result())
        assert "ipc=2.000" in text


class TestSummary:
    def test_summary_contains_headline_metrics(self):
        result = make_result()
        text = result.summary()
        assert "IPC 2.000" in text
        assert "MPKI" in text
        assert "prefetches 100 issued" in text

    def test_summary_omits_prefetch_block_when_none(self):
        result = make_result(prefetches_issued=0)
        assert "issued" not in result.summary()

    def test_summary_is_multiline(self):
        assert len(make_result().summary().splitlines()) >= 4
