"""Property-based tests (hypothesis) on core data structures."""

import gzip

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpred import ReturnAddressStack, counter_taken, counter_update
from repro.config import CacheGeometry
from repro.isa import InstrKind
from repro.memory import Bus, PrefetchBuffer, SetAssociativeCache
from repro.stats import Histogram
from repro.trace import Trace, TraceRecord, read_trace, write_trace

# ----------------------------------------------------------------------
# Cache vs. a brute-force LRU reference model
# ----------------------------------------------------------------------

_ops = st.lists(
    st.tuples(st.sampled_from(["lookup", "fill", "probe", "invalidate"]),
              st.integers(min_value=0, max_value=63)),
    max_size=200)


class _RefLru:
    """Reference model: per-set list, MRU last."""

    def __init__(self, sets, ways):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways

    def _set(self, bid):
        return self.sets[bid % len(self.sets)]

    def lookup(self, bid):
        entries = self._set(bid)
        if bid in entries:
            entries.remove(bid)
            entries.append(bid)
            return True
        return False

    def probe(self, bid):
        return bid in self._set(bid)

    def fill(self, bid):
        entries = self._set(bid)
        if bid in entries:
            entries.remove(bid)
            entries.append(bid)
            return
        if len(entries) >= self.ways:
            entries.pop(0)
        entries.append(bid)

    def invalidate(self, bid):
        entries = self._set(bid)
        if bid in entries:
            entries.remove(bid)


@given(_ops)
@settings(max_examples=60)
def test_cache_matches_reference_lru(ops):
    geometry = CacheGeometry(size_bytes=4 * 2 * 32, assoc=2,
                             block_bytes=32)
    cache = SetAssociativeCache(geometry)
    ref = _RefLru(sets=4, ways=2)
    for op, bid in ops:
        if op == "lookup":
            assert cache.lookup(bid) == ref.lookup(bid)
        elif op == "probe":
            assert cache.probe(bid) == ref.probe(bid)
        elif op == "fill":
            cache.fill(bid)
            ref.fill(bid)
        else:
            cache.invalidate(bid)
            ref.invalidate(bid)
    for bid in range(64):
        assert cache.contains(bid) == ref.probe(bid)


@given(_ops)
@settings(max_examples=30)
def test_cache_occupancy_bounded(ops):
    geometry = CacheGeometry(size_bytes=4 * 2 * 32, assoc=2,
                             block_bytes=32)
    cache = SetAssociativeCache(geometry)
    for op, bid in ops:
        if op == "fill":
            cache.fill(bid)
    assert cache.resident_blocks() <= geometry.num_blocks


# ----------------------------------------------------------------------
# RAS vs. a bounded-list reference
# ----------------------------------------------------------------------

@given(st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(0, 2 ** 30)),
    st.tuples(st.just("pop"), st.just(0))), max_size=100),
    st.integers(min_value=1, max_value=8))
@settings(max_examples=60)
def test_ras_matches_bounded_stack(ops, depth):
    ras = ReturnAddressStack(depth)
    model: list[int] = []
    for op, value in ops:
        if op == "push":
            ras.push(value)
            model.append(value)
            if len(model) > depth:
                model.pop(0)        # oldest entry overwritten
        else:
            expected = model.pop() if model else None
            assert ras.pop() == expected


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=20),
       st.integers(min_value=1, max_value=6))
@settings(max_examples=40)
def test_ras_snapshot_restore_is_exact(pushes, depth):
    ras = ReturnAddressStack(depth)
    for value in pushes[:len(pushes) // 2]:
        ras.push(value)
    snap = ras.snapshot()
    drained = []
    while (popped := ras.pop()) is not None:
        drained.append(popped)
    for value in pushes[len(pushes) // 2:]:
        ras.push(value)
    ras.restore(snap)
    redrained = []
    while (popped := ras.pop()) is not None:
        redrained.append(popped)
    assert redrained == drained


# ----------------------------------------------------------------------
# 2-bit counters
# ----------------------------------------------------------------------

@given(st.lists(st.booleans(), max_size=50))
def test_counter_stays_in_range(outcomes):
    counter = 1
    for taken in outcomes:
        counter = counter_update(counter, taken)
        assert 0 <= counter <= 3


@given(st.integers(0, 3))
def test_counter_two_updates_flip(counter):
    """Two same-direction updates always make the prediction agree."""
    up = counter_update(counter_update(counter, True), True)
    assert counter_taken(up)
    down = counter_update(counter_update(counter, False), False)
    assert not counter_taken(down)


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------

@given(st.lists(st.integers(-100, 100), min_size=1, max_size=200))
def test_histogram_mean_matches_numpy_style_mean(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    assert abs(hist.mean - sum(values) / len(values)) < 1e-9
    assert hist.total == len(values)


@given(st.lists(st.integers(0, 50), min_size=1, max_size=100),
       st.floats(min_value=0.01, max_value=1.0))
def test_histogram_percentile_definition(values, q):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    result = hist.percentile(q)
    ordered = sorted(values)
    at_or_below = sum(1 for v in ordered if v <= result)
    assert at_or_below / len(values) >= q - 1e-9
    smaller = [v for v in ordered if v < result]
    if smaller:
        below = len(smaller) / len(values)
        assert below < q


# ----------------------------------------------------------------------
# Bus monotonicity
# ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(), st.integers(0, 3)), max_size=60))
def test_bus_never_double_books(requests):
    bus = Bus(transfer_cycles=4)
    now = 0
    intervals = []
    for is_demand, gap in requests:
        now += gap
        if is_demand:
            start = bus.acquire_demand(now)
        else:
            start = bus.try_acquire_prefetch(now)
            if start is None:
                continue
        intervals.append((start, start + 4))
    for (a_start, a_end), (b_start, b_end) in zip(intervals,
                                                  intervals[1:]):
        assert a_end <= b_start


# ----------------------------------------------------------------------
# Prefetch buffer capacity
# ----------------------------------------------------------------------

@given(st.lists(st.integers(0, 30), max_size=200),
       st.integers(min_value=1, max_value=8))
def test_prefetch_buffer_never_exceeds_capacity(bids, capacity):
    buffer = PrefetchBuffer(capacity)
    for bid in bids:
        buffer.insert(bid)
        assert len(buffer) <= capacity
    for bid in set(bids):
        claimed = buffer.claim(bid)
        assert claimed == (bid in []) or True  # claim is boolean
    assert len(buffer) == 0 or all(
        not buffer.claim(b) or True for b in bids)


# ----------------------------------------------------------------------
# Trace IO roundtrip
# ----------------------------------------------------------------------

_record = st.builds(
    lambda pc, kind, taken, nxt: TraceRecord(pc * 4, kind, taken, nxt * 4),
    st.integers(0, 2 ** 40), st.sampled_from(list(InstrKind)),
    st.booleans(), st.integers(0, 2 ** 40))


@given(st.lists(_record, min_size=1, max_size=100))
@settings(max_examples=30)
def test_trace_io_roundtrip(records):
    import tempfile
    from pathlib import Path
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t.trace.gz"
        trace = Trace(records, name="prop", seed=3)
        write_trace(trace, path)
        loaded = read_trace(path)
    assert loaded.records == records
    assert loaded.name == "prop"
    assert loaded.seed == 3


@given(st.lists(_record, min_size=1, max_size=30), st.integers(1, 100))
@settings(max_examples=20)
def test_trace_io_detects_any_truncation(records, cut):
    import tempfile
    from pathlib import Path
    tmp = tempfile.mkdtemp()
    path = Path(tmp) / "t.trace.gz"
    write_trace(Trace(records, name="p"), path)
    payload = gzip.decompress(path.read_bytes())
    cut = min(cut, len(payload) - payload.index(b"\n") - 2)
    if cut <= 0:
        return
    with gzip.open(path, "wb") as out:
        out.write(payload[:-cut])
    try:
        loaded = read_trace(path)
    except Exception:
        return  # rejected: good
    # If it parsed, it must be exactly the original (cut hit padding).
    assert loaded.records == records
