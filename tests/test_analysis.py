"""Analysis package: stall accounting and prefetch timeliness."""

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.analysis import (
    StallBreakdown,
    TimelinessSummary,
    stall_breakdown,
    timeliness_summary,
)
from repro.sim import SimResult


def make_result(counters=None, cycles=1000, **overrides):
    defaults = dict(
        name="w", prefetcher="fdip", cycles=cycles, instructions=2000,
        mispredicts=10, bpred_accuracy=0.9, ftq_mean_occupancy=5.0,
        demand_misses=40, demand_merges=10, bus_utilization=0.25,
        l2_misses=5, prefetches_issued=100, prefetches_useful=50,
        prefetches_late=10, counters=counters or {},
    )
    defaults.update(overrides)
    return SimResult(**defaults)


class TestStallBreakdown:
    def test_fractions_from_counters(self):
        result = make_result(counters={
            "fetch.active_cycles": 500,
            "fetch.miss_stall_cycles": 300,
            "fetch.window_stall_cycles": 100,
            "fetch.ftq_empty_cycles": 50,
            "fetch.mshr_stall_cycles": 0,
        })
        breakdown = stall_breakdown(result)
        assert breakdown.active == pytest.approx(0.5)
        assert breakdown.icache_miss == pytest.approx(0.3)
        assert breakdown.window_full == pytest.approx(0.1)
        assert breakdown.ftq_empty == pytest.approx(0.05)
        assert breakdown.other == pytest.approx(0.05)

    def test_missing_counters_are_zero(self):
        breakdown = stall_breakdown(make_result())
        assert breakdown.active == 0.0
        assert breakdown.other == pytest.approx(1.0)

    def test_row_matches_headers(self):
        breakdown = stall_breakdown(make_result())
        assert len(breakdown.as_row()) == len(StallBreakdown.headers())

    def test_end_to_end_accounting_sums_to_one(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP))
        result = simulate(small_trace, config)
        breakdown = stall_breakdown(result)
        total = (breakdown.active + breakdown.icache_miss
                 + breakdown.window_full + breakdown.ftq_empty
                 + breakdown.mshr_full + breakdown.other)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert breakdown.active > 0

    def test_prefetching_shifts_miss_stalls_to_active(self, small_trace):
        base = stall_breakdown(simulate(
            small_trace,
            SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))))
        fdip = stall_breakdown(simulate(
            small_trace,
            SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))))
        assert fdip.icache_miss < base.icache_miss
        assert fdip.active > base.active


class TestTimeliness:
    def test_empty_histogram(self):
        summary = timeliness_summary(make_result())
        assert summary.mean_lead_cycles == 0.0
        assert summary.p50_lead_cycles == 0

    def test_summary_from_histogram(self):
        result = make_result()
        result.prefetch_lead_hist.update({10: 5, 20: 5})
        summary = timeliness_summary(result)
        assert summary.mean_lead_cycles == pytest.approx(15.0)
        assert summary.p50_lead_cycles == 10
        assert summary.p90_lead_cycles == 20

    def test_late_fraction(self):
        summary = timeliness_summary(make_result())
        assert summary.late_fraction == pytest.approx(10 / 60)

    def test_late_fraction_empty(self):
        result = make_result(prefetches_useful=0, prefetches_late=0)
        assert timeliness_summary(result).late_fraction == 0.0

    def test_row_matches_headers(self):
        summary = timeliness_summary(make_result())
        assert len(summary.as_row()) == len(TimelinessSummary.headers())

    def test_end_to_end_leads_recorded(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP))
        result = simulate(small_trace, config)
        if result.prefetches_useful:
            assert sum(result.prefetch_lead_hist.values()) > 0
            summary = timeliness_summary(result)
            assert summary.mean_lead_cycles >= 0.0
