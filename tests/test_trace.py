"""Trace records, containers, IO, characterization, and caching."""

import gzip

import pytest

from repro.errors import TraceError
from repro.isa import INSTRUCTION_BYTES, InstrKind
from repro.trace import (
    Trace,
    TraceCache,
    TraceRecord,
    characterize,
    read_trace,
    write_trace,
)


class TestTraceRecord:
    def test_redirects_iff_nonsequential(self):
        straight = TraceRecord(0x1000, InstrKind.ALU, False, 0x1004)
        assert not straight.redirects
        jumped = TraceRecord(0x1000, InstrKind.JUMP_DIRECT, True, 0x2000)
        assert jumped.redirects

    def test_not_taken_branch_does_not_redirect(self):
        record = TraceRecord(0x1000, InstrKind.BRANCH_COND, False, 0x1004)
        assert not record.redirects
        assert record.is_control

    def test_is_tuple(self):
        record = TraceRecord(0x1000, InstrKind.ALU, False, 0x1004)
        pc, kind, taken, next_pc = record
        assert (pc, kind, taken, next_pc) == (0x1000, InstrKind.ALU,
                                              False, 0x1004)


class TestTraceContainer:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace([])

    def test_indexing_and_iteration(self, tb):
        trace = tb.seq(5).build()
        assert len(trace) == 5
        assert trace[0].pc == 0x40_0000
        assert [r.pc for r in trace] == \
            [0x40_0000 + 4 * i for i in range(5)]

    def test_slice(self, tb):
        trace = tb.seq(10).build()
        part = trace.slice(2, 5)
        assert len(part) == 3
        assert part[0].pc == trace[2].pc

    def test_slice_bounds_checked(self, tb):
        trace = tb.seq(3).build()
        with pytest.raises(TraceError):
            trace.slice(2, 2)
        with pytest.raises(TraceError):
            trace.slice(0, 99)

    def test_from_program(self, small_program):
        trace = Trace.from_program(small_program, 100, seed=1)
        assert len(trace) == 100
        assert trace.name == small_program.name


class TestTraceIO:
    def test_roundtrip(self, tmp_path, small_trace):
        path = tmp_path / "t.trace.gz"
        write_trace(small_trace, path)
        loaded = read_trace(path)
        assert loaded.name == small_trace.name
        assert loaded.seed == small_trace.seed
        assert loaded.records == small_trace.records

    def test_kind_preserved_exactly(self, tmp_path, tb):
        trace = tb.seq(1).call(0x40_1000).ret(0x40_0008).build()
        path = tmp_path / "t.trace.gz"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert [r.kind for r in loaded] == [r.kind for r in trace]
        assert isinstance(loaded[1].kind, InstrKind)

    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "junk.trace.gz"
        with gzip.open(path, "wb") as out:
            out.write(b'{"magic": "something-else"}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.trace.gz"
        with gzip.open(path, "wb") as out:
            out.write(b"\xff\xfe not json\n")
        with pytest.raises(TraceError):
            read_trace(path)

    def test_rejects_truncation(self, tmp_path, small_trace):
        path = tmp_path / "t.trace.gz"
        write_trace(small_trace, path)
        payload = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as out:
            out.write(payload[:len(payload) - 10])
        with pytest.raises(TraceError):
            read_trace(path)

    def test_rejects_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            read_trace(tmp_path / "absent.trace.gz")

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        with gzip.open(path, "wb") as out:
            out.write(b'{"magic": "repro-trace", "version": 99, '
                      b'"name": "x", "seed": 0, "count": 0}\n')
        with pytest.raises(TraceError):
            read_trace(path)

    def test_truncation_error_reports_byte_offset(self, tmp_path,
                                                  small_trace):
        path = tmp_path / "t.trace.gz"
        write_trace(small_trace, path)
        payload = gzip.decompress(path.read_bytes())
        header_line, _, records = payload.partition(b"\n")
        # Keep 3 complete records plus half of a fourth.
        cut = len(header_line) + 1 + 3 * 18 + 9
        with gzip.open(path, "wb") as out:
            out.write(payload[:cut])
        with pytest.raises(TraceError) as info:
            read_trace(path)
        message = str(info.value)
        assert "only 3 are complete" in message
        assert f"record boundary at {len(header_line) + 1 + 3 * 18}" \
            in message

    def test_rejects_trailing_data(self, tmp_path, small_trace):
        path = tmp_path / "t.trace.gz"
        write_trace(small_trace, path)
        payload = gzip.decompress(path.read_bytes())
        with gzip.open(path, "wb") as out:
            out.write(payload + b"\x00" * 18)
        with pytest.raises(TraceError, match="trailing data"):
            read_trace(path)

    def test_rejects_invalid_count(self, tmp_path):
        path = tmp_path / "t.trace.gz"
        with gzip.open(path, "wb") as out:
            out.write(b'{"magic": "repro-trace", "version": 1, '
                      b'"name": "x", "seed": 0, "count": -3}\n')
        with pytest.raises(TraceError, match="count"):
            read_trace(path)

    def test_rejects_corrupt_record_payload(self, tmp_path, small_trace):
        path = tmp_path / "t.trace.gz"
        write_trace(small_trace, path)
        payload = bytearray(gzip.decompress(path.read_bytes()))
        # Overwrite the first record's kind byte with a non-kind value.
        kind_at = payload.index(b"\n") + 1 + 8
        payload[kind_at] = 0xEE
        with gzip.open(path, "wb") as out:
            out.write(bytes(payload))
        with pytest.raises(TraceError, match="corrupt record payload"):
            read_trace(path)


class TestCharacterize:
    def test_counts_and_fractions(self, tb):
        trace = (tb.seq(3)
                   .branch(0x40_0000, taken=True)
                   .seq(2)
                   .branch(0x40_1000, taken=False)
                   .build())
        stats = characterize(trace)
        assert stats.n_records == 7
        assert stats.control_fraction == pytest.approx(2 / 7)
        assert stats.taken_fraction == pytest.approx(1 / 2)

    def test_footprint(self, tb):
        trace = tb.seq(16).build()  # 64 bytes = 2 x 32B blocks
        stats = characterize(trace, block_bytes=32)
        assert stats.distinct_pcs == 16
        assert stats.footprint_bytes == 64
        assert stats.distinct_blocks == 2

    def test_offset_bits_histogram(self, tb):
        # Backward taken branch to itself-ish: distance 3 instrs back.
        trace = tb.seq(3).branch(0x40_0000, taken=True).seq(1).build()
        stats = characterize(trace)
        # distance = -3 instructions -> 2 bits
        assert dict(stats.offset_bits.items()) == {2: 1}

    def test_mix_fraction(self, tb):
        trace = tb.seq(2, InstrKind.LOAD).seq(2, InstrKind.ALU).build()
        stats = characterize(trace)
        assert stats.mix_fraction(InstrKind.LOAD) == pytest.approx(0.5)
        assert stats.mix_fraction(InstrKind.STORE) == 0.0

    def test_repeated_block_counted_once(self, tb):
        trace = (tb.seq(2).jump(0x40_0000).seq(2).jump(0x40_0000)
                 .seq(1).build())
        stats = characterize(trace)
        assert stats.distinct_pcs == 3


class TestTraceCache:
    def test_build_then_hit(self, tmp_path, tiny_trace):
        cache = TraceCache(tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return tiny_trace

        first = cache.get_or_build("key1", builder)
        second = cache.get_or_build("key1", builder)
        assert len(calls) == 1
        assert first.records == second.records

    def test_different_keys_different_files(self, tmp_path, tiny_trace):
        cache = TraceCache(tmp_path)
        cache.get_or_build("a", lambda: tiny_trace)
        cache.get_or_build("b", lambda: tiny_trace)
        assert len(list(tmp_path.glob("*.trace.gz"))) == 2

    def test_corrupt_entry_rebuilt(self, tmp_path, tiny_trace):
        cache = TraceCache(tmp_path)
        cache.get_or_build("k", lambda: tiny_trace)
        victim = next(tmp_path.glob("*.trace.gz"))
        victim.write_bytes(b"garbage")
        rebuilt = cache.get_or_build("k", lambda: tiny_trace)
        assert rebuilt.records == tiny_trace.records

    def test_clear(self, tmp_path, tiny_trace):
        cache = TraceCache(tmp_path)
        cache.get_or_build("k", lambda: tiny_trace)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "env"))
        from repro.trace import default_cache_dir
        assert default_cache_dir() == tmp_path / "env"


def test_record_sizes_match_io_constant(tb):
    """Every InstrKind value must survive the u8 encoding."""
    assert max(int(k) for k in InstrKind) < 256
    assert INSTRUCTION_BYTES == 4
