"""Stream-buffer internals: merges, reallocation, pending hygiene."""


from repro.config import CacheGeometry, MemoryConfig, PrefetchConfig
from repro.frontend import FetchTargetQueue
from repro.memory import MISS, MemorySystem
from repro.prefetch import StreamBufferPrefetcher


def make(buffers=2, depth=3, mshrs=8):
    config = MemoryConfig(
        icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
        l2=CacheGeometry(size_bytes=64 * 1024, assoc=4, block_bytes=32),
        l2_hit_latency=8, memory_latency=40, bus_transfer_cycles=4,
        mshr_entries=mshrs)
    memory = MemorySystem(config)
    prefetch = PrefetchConfig(kind="stream", stream_buffers=buffers,
                              stream_depth=depth, allocation_filter=False,
                              max_prefetches_per_cycle=1)
    stream = StreamBufferPrefetcher(memory, prefetch)
    memory.sidecar = stream.sidecar
    return memory, stream


FTQ = FetchTargetQueue(2)


class TestMergedFills:
    def test_demand_merge_marks_slot_arrived(self):
        memory, stream = make(buffers=1)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, FTQ)                 # request 101
        result = memory.demand_fetch(101, 3)  # merges into the prefetch
        memory.begin_cycle(result.ready_cycle)
        assert stream.stats.get("late_fills") == 1
        # The slot was popped by probe_and_claim during the demand, so
        # the buffer keeps streaming from 102.
        assert stream.buffers[0].next_bid == 102

    def test_pending_map_cleared_after_merge(self):
        memory, stream = make(buffers=1)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, FTQ)
        memory.demand_fetch(101, 3)
        memory.begin_cycle(200)
        assert 101 not in stream._pending


class TestReallocation:
    def test_reallocation_unpends_old_slots(self):
        memory, stream = make(buffers=1, depth=3)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        for cycle in (2, 7, 12):
            memory.begin_cycle(cycle)
            stream.tick(cycle, FTQ)
        pending_before = set(stream._pending)
        assert pending_before
        memory.begin_cycle(20)
        stream.on_demand(500, MISS, 20)   # reallocates the only buffer
        for bid in pending_before:
            assert bid not in stream._pending \
                or stream._pending[bid] == []
        assert stream.buffers[0].next_bid == 501

    def test_orphan_fill_after_reallocation_is_harmless(self):
        memory, stream = make(buffers=1, depth=2)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.tick(2, FTQ)               # 101 in flight
        memory.begin_cycle(3)
        stream.on_demand(500, MISS, 3)    # reallocate; 101 fill orphaned
        memory.begin_cycle(200)           # fill completes anyway
        # Buffer must be streaming 501.. and not corrupted by the fill.
        assert stream.buffers[0].next_bid is not None
        assert stream.buffers[0].next_bid >= 501
        assert not stream.probe_and_claim(101)


class TestSharedRequests:
    def test_two_buffers_share_one_fill(self):
        memory, stream = make(buffers=2, depth=2)
        memory.begin_cycle(1)
        stream.on_demand(100, MISS, 1)
        memory.begin_cycle(2)
        stream.on_demand(100, MISS, 2)    # second buffer, same stream
        # Both buffers now stream from 101.
        for cycle in (3, 8, 13, 18):
            memory.begin_cycle(cycle)
            stream.tick(cycle, FTQ)
        issued = stream.stats.get("issued")
        memory.begin_cycle(300)
        arrived = [slot.arrived
                   for buffer in stream.buffers
                   for slot in buffer.slots]
        assert all(arrived)
        # Shared fills mean fewer bus transfers than total slots.
        total_slots = sum(len(b.slots) for b in stream.buffers)
        assert issued < total_slots or total_slots == 0


class TestInactiveBuffers:
    def test_fresh_buffers_request_nothing(self):
        memory, stream = make(buffers=2)
        memory.begin_cycle(1)
        stream.tick(1, FTQ)
        assert stream.stats.get("issued") == 0
        assert all(not b.active for b in stream.buffers)
