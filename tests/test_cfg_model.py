"""CFG model validation and lookup."""

import pytest

from repro.cfg import TEXT_BASE, BasicBlock, Function, Program
from repro.errors import GenerationError
from repro.isa import INSTRUCTION_BYTES, InstrKind, StaticInstr


def make_block(start, kinds, fallthrough=None, target=None, **kwargs):
    """Build a block from a list of kinds; last may be control."""
    instrs = []
    pc = start
    for i, kind in enumerate(kinds):
        is_last = i == len(kinds) - 1
        tgt = target if (is_last and kind.is_control
                         and not kind.is_indirect) else None
        instrs.append(StaticInstr(pc, kind, tgt))
        pc += INSTRUCTION_BYTES
    return BasicBlock(start=start, instrs=instrs, fallthrough=fallthrough,
                      **kwargs)


def single_return_function(name="f", start=TEXT_BASE):
    block = make_block(start, [InstrKind.ALU, InstrKind.RETURN])
    return Function(name=name, blocks=[block])


class TestBasicBlock:
    def test_end_and_count(self):
        block = make_block(TEXT_BASE, [InstrKind.ALU, InstrKind.ALU,
                                       InstrKind.RETURN])
        assert block.n_instrs == 3
        assert block.end == TEXT_BASE + 12

    def test_terminator_detected(self):
        block = make_block(TEXT_BASE, [InstrKind.ALU, InstrKind.RETURN])
        assert block.terminator is not None
        assert block.terminator.kind == InstrKind.RETURN

    def test_fallthrough_block_has_no_terminator(self):
        block = make_block(TEXT_BASE, [InstrKind.ALU, InstrKind.LOAD],
                           fallthrough=TEXT_BASE + 8)
        assert block.terminator is None

    def test_empty_block_rejected(self):
        block = BasicBlock(start=TEXT_BASE, instrs=[], fallthrough=None)
        with pytest.raises(GenerationError):
            block.validate()

    def test_noncontiguous_pcs_rejected(self):
        instrs = [StaticInstr(TEXT_BASE, InstrKind.ALU),
                  StaticInstr(TEXT_BASE + 8, InstrKind.RETURN)]
        block = BasicBlock(start=TEXT_BASE, instrs=instrs, fallthrough=None)
        with pytest.raises(GenerationError):
            block.validate()

    def test_mid_block_control_rejected(self):
        instrs = [StaticInstr(TEXT_BASE, InstrKind.JUMP_DIRECT,
                              TEXT_BASE + 8),
                  StaticInstr(TEXT_BASE + 4, InstrKind.RETURN)]
        block = BasicBlock(start=TEXT_BASE, instrs=instrs, fallthrough=None)
        with pytest.raises(GenerationError):
            block.validate()

    def test_no_terminator_no_fallthrough_rejected(self):
        block = make_block(TEXT_BASE, [InstrKind.ALU])
        with pytest.raises(GenerationError):
            block.validate()

    def test_direct_branch_needs_target(self):
        instrs = [StaticInstr(TEXT_BASE, InstrKind.BRANCH_COND)]
        block = BasicBlock(start=TEXT_BASE, instrs=instrs,
                           fallthrough=TEXT_BASE + 4)
        with pytest.raises(GenerationError):
            block.validate()

    def test_indirect_needs_target_set(self):
        instrs = [StaticInstr(TEXT_BASE, InstrKind.JUMP_INDIRECT)]
        block = BasicBlock(start=TEXT_BASE, instrs=instrs,
                           fallthrough=TEXT_BASE + 4)
        with pytest.raises(GenerationError):
            block.validate()

    def test_indirect_weight_length_mismatch_rejected(self):
        instrs = [StaticInstr(TEXT_BASE, InstrKind.JUMP_INDIRECT)]
        block = BasicBlock(start=TEXT_BASE, instrs=instrs,
                           fallthrough=TEXT_BASE + 4,
                           indirect_targets=(TEXT_BASE,),
                           indirect_weights=(0.5, 0.5))
        with pytest.raises(GenerationError):
            block.validate()

    def test_bad_bias_rejected(self):
        block = make_block(TEXT_BASE, [InstrKind.RETURN], taken_bias=1.5)
        with pytest.raises(GenerationError):
            block.validate()

    def test_bad_loop_trips_rejected(self):
        block = make_block(TEXT_BASE, [InstrKind.RETURN], loop_trips=0)
        with pytest.raises(GenerationError):
            block.validate()


class TestFunction:
    def test_must_end_in_return(self):
        block = make_block(TEXT_BASE, [InstrKind.ALU,
                                       InstrKind.JUMP_DIRECT],
                           target=TEXT_BASE)
        function = Function(name="f", blocks=[block])
        with pytest.raises(GenerationError):
            function.validate()

    def test_contiguous_layout_enforced(self):
        b1 = make_block(TEXT_BASE, [InstrKind.ALU],
                        fallthrough=TEXT_BASE + 100)
        b2 = make_block(TEXT_BASE + 100, [InstrKind.RETURN])
        function = Function(name="f", blocks=[b1, b2])
        with pytest.raises(GenerationError):
            function.validate()

    def test_entry_is_first_block(self):
        function = single_return_function()
        assert function.entry == TEXT_BASE

    def test_n_instrs(self):
        function = single_return_function()
        assert function.n_instrs == 2


class TestProgram:
    def test_requires_functions(self):
        with pytest.raises(GenerationError):
            Program([])

    def test_instr_and_block_lookup(self):
        program = Program([single_return_function()])
        instr = program.instr_at(TEXT_BASE + 4)
        assert instr is not None
        assert instr.kind == InstrKind.RETURN
        assert program.block_at(TEXT_BASE + 4).start == TEXT_BASE
        assert program.instr_at(0xDEAD_BEEC) is None

    def test_footprint(self):
        program = Program([single_return_function()])
        assert program.n_instrs == 2
        assert program.footprint_bytes == 8

    def test_call_must_target_function_entry(self):
        f0_block = BasicBlock(
            start=TEXT_BASE,
            instrs=[StaticInstr(TEXT_BASE, InstrKind.CALL,
                                TEXT_BASE + 12),  # mid-function target
                    StaticInstr(TEXT_BASE + 4, InstrKind.RETURN)],
            fallthrough=None)
        # Force the call mid-block constraint off by splitting blocks.
        b1 = BasicBlock(start=TEXT_BASE,
                        instrs=[StaticInstr(TEXT_BASE, InstrKind.CALL,
                                            TEXT_BASE + 12)],
                        fallthrough=TEXT_BASE + 4)
        b2 = make_block(TEXT_BASE + 4, [InstrKind.RETURN])
        f0 = Function(name="f0", blocks=[b1, b2])
        f1 = single_return_function("f1", start=TEXT_BASE + 8)
        del f0_block
        with pytest.raises(GenerationError):
            Program([f0, f1])

    def test_function_entered_at(self):
        f0 = single_return_function("f0", TEXT_BASE)
        f1 = single_return_function("f1", TEXT_BASE + 8)
        program = Program([f0, f1])
        assert program.function_entered_at(TEXT_BASE + 8).name == "f1"
        assert program.function_entered_at(TEXT_BASE + 4) is None

    def test_noncontiguous_functions_rejected(self):
        f0 = single_return_function("f0", TEXT_BASE)
        f1 = single_return_function("f1", TEXT_BASE + 64)
        with pytest.raises(GenerationError):
            Program([f0, f1])
