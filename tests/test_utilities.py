"""DOT export, trace sampling, ASCII charts, combined prefetcher."""

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.analysis import bar_chart, histogram_chart
from repro.cfg import function_to_dot, program_to_dot
from repro.errors import TraceError
from repro.trace import sample_trace, split_trace


class TestDotExport:
    def test_function_dot_structure(self, small_program):
        dot = function_to_dot(small_program.functions[0])
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot

    def test_every_block_has_a_node(self, small_program):
        function = small_program.functions[1]
        dot = function_to_dot(function)
        for block in function.blocks:
            assert f"b{block.start:x}" in dot

    def test_program_dot_with_clusters(self, small_program):
        dot = program_to_dot(small_program, max_functions=3)
        assert dot.count("subgraph cluster_") == 3

    def test_external_targets_get_placeholders(self, small_program):
        dot = program_to_dot(small_program, max_functions=1)
        # main calls deeper functions that are not included.
        assert "style=dashed" in dot

    def test_conditional_edges_carry_bias(self, small_program):
        dot = program_to_dot(small_program)
        assert "taken p=" in dot


class TestSampling:
    def test_systematic_sampling(self, small_trace):
        sampled = sample_trace(small_trace, sample=100, skip=300)
        expected = 0
        period = 400
        n = len(small_trace)
        for start in range(0, n, period):
            expected += min(100, n - start)
        assert len(sampled) == expected

    def test_skip_zero_is_identity(self, small_trace):
        assert sample_trace(small_trace, 10, 0) is small_trace

    def test_sampled_windows_are_contiguous(self, small_trace):
        sampled = sample_trace(small_trace, sample=50, skip=50)
        # Within a window, records chain (next_pc == next record's pc).
        for i in range(49):
            assert sampled[i].next_pc == sampled[i + 1].pc

    def test_validation(self, small_trace):
        with pytest.raises(TraceError):
            sample_trace(small_trace, 0, 10)
        with pytest.raises(TraceError):
            sample_trace(small_trace, 10, -1)

    def test_split_covers_everything(self, small_trace):
        parts = split_trace(small_trace, 7)
        assert sum(len(p) for p in parts) == len(small_trace)
        assert abs(len(parts[0]) - len(parts[-1])) <= 1

    def test_split_order_preserved(self, small_trace):
        parts = split_trace(small_trace, 3)
        rejoined = [r for part in parts for r in part]
        assert rejoined == small_trace.records

    def test_split_validation(self, small_trace):
        with pytest.raises(TraceError):
            split_trace(small_trace, 0)
        with pytest.raises(TraceError):
            split_trace(small_trace, len(small_trace) + 1)


class TestBarChart:
    def test_scaling_to_peak(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_zero_values_have_empty_bars(self):
        chart = bar_chart(["a", "b"], [0.0, 1.0], width=10)
        assert chart.splitlines()[0].count("#") == 0

    def test_title(self):
        chart = bar_chart(["a"], [1.0], title="T")
        assert chart.splitlines()[0] == "T"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_ok(self):
        assert bar_chart([], []) == ""


class TestHistogramChart:
    def test_small_histogram_one_bar_per_value(self):
        chart = histogram_chart({1: 5, 3: 10}, width=10)
        assert len(chart.splitlines()) == 2

    def test_large_histogram_bucketed(self):
        hist = {i: 1 for i in range(100)}
        chart = histogram_chart(hist, max_buckets=10)
        assert len(chart.splitlines()) <= 10
        assert "-" in chart.splitlines()[0]

    def test_bucket_counts_conserved(self):
        hist = {i: 2 for i in range(50)}
        chart = histogram_chart(hist, max_buckets=5)
        total = sum(int(line.rsplit(None, 1)[-1])
                    for line in chart.splitlines())
        assert total == 100

    def test_empty(self):
        assert histogram_chart({}) == ""
        assert histogram_chart({}, title="T") == "T"


class TestCombinedPrefetcher:
    def test_runs_to_completion(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.COMBINED))
        result = simulate(small_trace, config)
        assert result.instructions == len(small_trace)
        assert result.get("combined.nlp_issued") > 0
        assert result.get("fdip.issued") > 0

    def test_not_worse_than_fdip_alone(self, small_trace):
        fdip = simulate(small_trace, SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP)))
        combined = simulate(small_trace, SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.COMBINED)))
        assert combined.ipc >= fdip.ipc * 0.97

    def test_shared_buffer_counts_useful_once(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.COMBINED))
        result = simulate(small_trace, config)
        assert result.prefetches_useful <= result.prefetches_issued
