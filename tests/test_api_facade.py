"""The stable public API: ``repro.api``, the prefetcher registry, and
the removed ``run_simulation`` alias's migration hints."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.api import simulate
from repro.config import PrefetchConfig, PrefetcherKind, SimConfig
from repro.errors import SimulationError
from repro.prefetch import make_prefetcher, register, registered_kinds
from repro.prefetch.none import NonePrefetcher
from repro.prefetch.registry import create
from repro.sim.simulator import Simulator


class TestFacade:
    def test_simulate_exported_from_top_level(self):
        assert repro.simulate is simulate
        assert callable(repro.sweep)
        assert callable(repro.make_runner)

    def test_telemetry_types_exported_from_top_level(self):
        from repro.stats.telemetry import TelemetryNode, TelemetrySnapshot

        assert repro.TelemetryNode is TelemetryNode
        assert repro.TelemetrySnapshot is TelemetrySnapshot
        assert callable(repro.merge_snapshots)

    def test_results_carry_telemetry_snapshot(self, tiny_trace):
        result = simulate(tiny_trace)
        assert isinstance(result.telemetry, repro.TelemetrySnapshot)
        assert result.telemetry.root.name == "sim"

    def test_simulate_default_config(self, tiny_trace):
        result = simulate(tiny_trace)
        assert result.instructions > 0
        assert result == simulate(tiny_trace, SimConfig())

    def test_simulate_naive_override(self, tiny_trace):
        fast = simulate(tiny_trace, SimConfig())
        naive = simulate(tiny_trace, SimConfig(), fast_loop=False)
        assert fast == naive

    def test_simulator_extras_are_keyword_only(self, tiny_trace):
        with pytest.raises(TypeError):
            Simulator(tiny_trace, SimConfig(), "a-name")


class TestRemovedAlias:
    """``run_simulation`` is gone; every import site gets a hint."""

    def test_top_level_attribute_raises_with_hint(self):
        with pytest.raises(AttributeError, match="repro.simulate"):
            repro.run_simulation

    def test_sim_package_attribute_raises_with_hint(self):
        import repro.sim

        with pytest.raises(AttributeError, match="repro.simulate"):
            repro.sim.run_simulation

    def test_simulator_module_has_no_alias(self):
        import repro.sim.simulator as simulator

        assert not hasattr(simulator, "run_simulation")
        assert "run_simulation" not in simulator.__all__

    def test_unknown_attribute_still_plain_error(self):
        # The migration __getattr__ must not swallow ordinary typos.
        with pytest.raises(AttributeError, match="no attribute"):
            repro.simualte

    def test_simulate_does_not_warn(self, tiny_trace):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(tiny_trace, SimConfig())

    def test_readme_documents_api_facade_as_entry_point(self):
        from pathlib import Path

        readme = Path(__file__).resolve().parent.parent / "README.md"
        text = " ".join(readme.read_text(encoding="utf-8").split())
        assert "repro.api" in text
        assert "only documented programmatic entry points" in text
        # The removal is documented, with the replacement spelled out.
        assert "run_simulation" in text
        assert "removed" in text


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = registered_kinds()
        for kind in PrefetcherKind.ALL:
            assert kind in kinds

    def test_make_prefetcher_resolves_each_builtin(self, tiny_trace):
        for kind in PrefetcherKind.ALL:
            config = SimConfig(prefetch=PrefetchConfig(kind=kind))
            sim = Simulator(tiny_trace, config)
            assert sim.prefetcher is not None

    def test_unknown_kind_error_names_alternatives(self):
        with pytest.raises(SimulationError) as excinfo:
            create("bogus", None, PrefetchConfig())
        message = str(excinfo.value)
        assert "bogus" in message
        for kind in PrefetcherKind.ALL:
            assert kind in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SimulationError, match="already registered"):
            register(PrefetcherKind.NONE)(NonePrefetcher)

    def test_invalid_kind_string_rejected(self):
        with pytest.raises(SimulationError):
            register("")
        with pytest.raises(SimulationError):
            register(None)  # type: ignore[arg-type]

    def test_custom_prefetcher_runs_end_to_end(self, tiny_trace):
        """A registered subclass flows through ``simulate`` untouched.

        Custom kinds shadow a built-in (``PrefetchConfig`` validates the
        kind string), so restore the original factory afterwards.
        """
        ticks = []

        class CountingNone(NonePrefetcher):
            def tick(self, now, ftq):
                ticks.append(now)
                super().tick(now, ftq)

        register(PrefetcherKind.NONE, replace=True)(CountingNone)
        try:
            config = SimConfig(
                prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))
            sim = Simulator(tiny_trace, config, fast_loop=False)
            result = sim.run()
            assert isinstance(sim.prefetcher, CountingNone)
            assert len(ticks) == result.cycles
        finally:
            register(PrefetcherKind.NONE, replace=True)(NonePrefetcher)

    def test_make_prefetcher_reexported_from_simulator(self):
        # Long-standing import site kept working after the registry
        # refactor.
        from repro.sim.simulator import make_prefetcher as legacy
        assert legacy is make_prefetcher
