"""Memory-system edge cases beyond the basic hierarchy tests."""

import pytest

from repro.config import CacheGeometry, MemoryConfig
from repro.memory import MERGED, MemorySystem, PrefetchBuffer
from repro.prefetch.fdip import PrefetchBufferSidecar


def make_memory(l2_kb=2, sidecar=None, fill_to_l1=False):
    config = MemoryConfig(
        icache=CacheGeometry(size_bytes=512, assoc=2, block_bytes=32),
        l2=CacheGeometry(size_bytes=l2_kb * 1024, assoc=2, block_bytes=32),
        l2_hit_latency=10, memory_latency=50, bus_transfer_cycles=4,
        mshr_entries=8)
    return MemorySystem(config, sidecar=sidecar,
                        prefetch_fill_to_l1=fill_to_l1)


class TestL2Contents:
    def test_l2_eviction_restores_memory_latency(self):
        memory = make_memory(l2_kb=2)   # 64 blocks, 2-way, 32 sets
        memory.begin_cycle(1)
        first = memory.demand_fetch(0, 1)
        assert first.ready_cycle == 1 + 4 + 50
        # Thrash L2 set 0 (block ids congruent mod 32).
        now = first.ready_cycle
        for bid in (32, 64):
            memory.begin_cycle(now)
            result = memory.demand_fetch(bid, now)
            now = result.ready_cycle
        memory.begin_cycle(now)
        memory.l1i.invalidate(0)
        result = memory.demand_fetch(0, now)
        # Block 0 was evicted from L2: full memory latency again.
        assert result.ready_cycle - now == 4 + 50

    def test_l2_hit_after_unrelated_traffic(self):
        memory = make_memory(l2_kb=64)
        memory.begin_cycle(1)
        first = memory.demand_fetch(0, 1)
        memory.begin_cycle(first.ready_cycle)
        memory.l1i.invalidate(0)
        result = memory.demand_fetch(0, first.ready_cycle)
        assert result.ready_cycle - first.ready_cycle == 4 + 10


class TestDirectFill:
    def test_prefetch_fill_to_l1_skips_sidecar(self):
        buffer = PrefetchBuffer(4)
        memory = make_memory(sidecar=PrefetchBufferSidecar(buffer),
                             fill_to_l1=True)
        memory.begin_cycle(1)
        assert memory.try_issue_prefetch(5, 1)
        memory.drain_in_flight()
        assert memory.l1i.contains(5)
        assert not buffer.contains(5)
        assert memory.stats.get("prefetch_fills_to_l1") == 1

    def test_merged_prefetch_still_goes_to_l1(self):
        buffer = PrefetchBuffer(4)
        memory = make_memory(sidecar=PrefetchBufferSidecar(buffer),
                             fill_to_l1=True)
        memory.begin_cycle(1)
        memory.try_issue_prefetch(5, 1)
        result = memory.demand_fetch(5, 2)
        assert result.outcome == MERGED
        memory.drain_in_flight()
        assert memory.l1i.contains(5)
        assert memory.stats.get("late_prefetch_fills") == 1


class TestDrain:
    def test_drain_handles_mixed_entries(self):
        buffer = PrefetchBuffer(4)
        memory = make_memory(sidecar=PrefetchBufferSidecar(buffer))
        memory.begin_cycle(1)
        memory.demand_fetch(1, 1)
        memory.try_issue_prefetch(2, 6)
        memory.try_issue_prefetch(3, 11)
        memory.demand_fetch(3, 12)        # merges into the prefetch
        memory.drain_in_flight()
        assert memory.l1i.contains(1)
        assert buffer.contains(2)
        assert memory.l1i.contains(3)     # merged -> L1
        assert len(memory.mshrs) == 0

    def test_drain_empty_is_noop(self):
        memory = make_memory()
        memory.drain_in_flight()
        assert memory.in_flight_blocks() == []


class TestLeadTimes:
    def test_claim_records_lead(self):
        buffer = PrefetchBuffer(4)
        memory = make_memory(sidecar=PrefetchBufferSidecar(buffer))
        memory.begin_cycle(1)
        memory.try_issue_prefetch(5, 1)
        ready = 1 + 4 + 50
        memory.begin_cycle(ready)
        use_cycle = ready + 20
        memory.begin_cycle(use_cycle)
        result = memory.demand_fetch(5, use_cycle)
        assert result.outcome == "sidecar"
        hist = buffer.stats.histogram("lead_cycles")
        assert hist.total == 1
        assert hist.mean == pytest.approx(20.0)
