"""Synthetic ISA semantics."""

import pytest

from repro.isa import INSTRUCTION_BYTES, InstrKind, StaticInstr


class TestInstrKind:
    def test_control_partition(self):
        control = {k for k in InstrKind if k.is_control}
        assert control == {
            InstrKind.BRANCH_COND, InstrKind.JUMP_DIRECT,
            InstrKind.JUMP_INDIRECT, InstrKind.CALL,
            InstrKind.CALL_INDIRECT, InstrKind.RETURN,
        }

    def test_only_branch_cond_is_conditional(self):
        assert InstrKind.BRANCH_COND.is_conditional
        for kind in InstrKind:
            if kind != InstrKind.BRANCH_COND:
                assert not kind.is_conditional

    def test_unconditional_excludes_cond_and_noncontrol(self):
        assert not InstrKind.BRANCH_COND.is_unconditional
        assert not InstrKind.ALU.is_unconditional
        assert InstrKind.JUMP_DIRECT.is_unconditional
        assert InstrKind.RETURN.is_unconditional

    def test_call_classification(self):
        assert InstrKind.CALL.is_call
        assert InstrKind.CALL_INDIRECT.is_call
        assert not InstrKind.RETURN.is_call

    def test_indirect_classification(self):
        assert InstrKind.JUMP_INDIRECT.is_indirect
        assert InstrKind.CALL_INDIRECT.is_indirect
        assert InstrKind.RETURN.is_indirect
        assert not InstrKind.JUMP_DIRECT.is_indirect
        assert not InstrKind.CALL.is_indirect

    def test_memory_classification(self):
        assert InstrKind.LOAD.is_memory
        assert InstrKind.STORE.is_memory
        assert not InstrKind.ALU.is_memory

    def test_kinds_fit_in_a_byte(self):
        assert all(0 <= int(kind) < 256 for kind in InstrKind)


class TestStaticInstr:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            StaticInstr(pc=0x1002, kind=InstrKind.ALU)

    def test_target_alignment_enforced(self):
        with pytest.raises(ValueError):
            StaticInstr(pc=0x1000, kind=InstrKind.JUMP_DIRECT,
                        target=0x2001)

    def test_next_sequential(self):
        instr = StaticInstr(pc=0x1000, kind=InstrKind.ALU)
        assert instr.next_sequential == 0x1000 + INSTRUCTION_BYTES

    def test_repr_contains_target(self):
        instr = StaticInstr(pc=0x1000, kind=InstrKind.JUMP_DIRECT,
                            target=0x2000)
        assert "0x2000" in repr(instr)

    def test_frozen(self):
        instr = StaticInstr(pc=0x1000, kind=InstrKind.ALU)
        with pytest.raises(AttributeError):
            instr.pc = 0x2000
