"""The simulation service: coalescing, caching, admission, HTTP."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api import simulate
from repro.config import SimConfig
from repro.errors import QueueFullError, ServeError
from repro.obs import configure_logging, read_events, reset_logging
from repro.serve import Client, ResultCache, ServiceDaemon, \
    SimulationService
from repro.sim.serialize import SCHEMA_VERSION, result_to_json
from repro.spec import RunRequest, RunResponse, resolve_request
from repro.workloads import build_trace

LENGTH = 6_000


def _request(seed: int = 1, **kwargs) -> RunRequest:
    return resolve_request(workload="compress_like",
                           trace_length=LENGTH, seed=seed, **kwargs)


@pytest.fixture()
def event_log(tmp_path):
    path = tmp_path / "events.jsonl"
    configure_logging(file=str(path))
    yield path
    reset_logging()


@pytest.fixture(scope="module")
def small_result():
    trace = build_trace("compress_like", LENGTH, seed=1)
    return simulate(trace, SimConfig(), name="compress_like")


def _serve_kinds(path) -> list[str]:
    return [event["kind"] for event in read_events(path)
            if event["kind"].startswith("serve_")]


def _wait_for(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition never became true")
        time.sleep(0.01)


class _GatedExecutor:
    """Counts invocations; holds them until released."""

    def __init__(self, result, fail: bool = False):
        self.result = result
        self.fail = fail
        self.gate = threading.Event()
        self.calls: list[RunRequest] = []

    def __call__(self, request: RunRequest) -> RunResponse:
        self.calls.append(request)
        assert self.gate.wait(timeout=30)
        if self.fail:
            raise RuntimeError("injected executor failure")
        return RunResponse(result=self.result, request=request)


class TestCoalescing:
    def test_concurrent_identical_requests_run_once(self, event_log,
                                                    small_result):
        executor = _GatedExecutor(small_result)
        service = SimulationService(workers=2, executor=executor)
        request = _request()
        ids = [service.submit(request) for _ in range(4)]
        assert len(set(ids)) == 4          # every client gets its own job
        executor.gate.set()
        responses = [service.result(job, timeout=30) for job in ids]
        service.shutdown()

        assert len(executor.calls) == 1    # exactly one simulation
        sources = sorted(r.source for r in responses)
        assert sources == ["coalesced", "coalesced", "coalesced",
                           "computed"]
        # Every follower shares the primary's one result object.
        assert all(r.result is responses[0].result or
                   r.result is small_result for r in responses)

        kinds = _serve_kinds(event_log)
        assert kinds.count("serve_running") == 1
        assert kinds.count("serve_coalesced") == 3
        assert kinds.count("serve_enqueued") == 4
        assert kinds.count("serve_done") == 1

    def test_different_requests_do_not_coalesce(self, small_result):
        executor = _GatedExecutor(small_result)
        service = SimulationService(workers=1, executor=executor,
                                    max_queue_depth=8)
        first = service.submit(_request(seed=1))
        second = service.submit(_request(seed=2))
        executor.gate.set()
        service.result(first, timeout=30)
        service.result(second, timeout=30)
        service.shutdown()
        assert len(executor.calls) == 2

    def test_failure_propagates_to_followers(self, small_result):
        executor = _GatedExecutor(small_result, fail=True)
        service = SimulationService(workers=1, executor=executor)
        request = _request()
        primary = service.submit(request)
        _wait_for(lambda: executor.calls)
        follower = service.submit(request)
        executor.gate.set()
        with pytest.raises(ServeError, match="injected"):
            service.result(primary, timeout=30)
        with pytest.raises(ServeError, match="injected"):
            service.result(follower, timeout=30)
        assert service.counters["failed"] == 2
        service.shutdown()


class TestCacheServing:
    def test_repeat_request_is_a_bit_identical_cache_hit(
            self, tmp_path, event_log):
        service = SimulationService(cache_dir=str(tmp_path / "cache"),
                                    workers=1)
        request = _request(label="compress_like")
        cold = service.result(service.submit(request), timeout=300)
        warm = service.result(service.submit(request), timeout=300)
        service.shutdown()

        assert cold.source == "computed"
        assert warm.source == "cache"
        assert result_to_json(warm.result) == result_to_json(cold.result)
        trace = build_trace("compress_like", LENGTH, seed=1)
        direct = simulate(trace, SimConfig(), name="compress_like")
        assert result_to_json(warm.result) == result_to_json(direct)

        kinds = _serve_kinds(event_log)
        assert kinds.count("serve_running") == 1
        assert kinds.count("serve_cache_hit") == 1
        assert service.cache.hits == 1
        assert service.cache.stores == 1

    def test_cache_survives_service_restart(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        request = _request()
        first = SimulationService(cache_dir=cache_dir, workers=1)
        cold = first.result(first.submit(request), timeout=300)
        first.shutdown()
        second = SimulationService(cache_dir=cache_dir, workers=1)
        warm = second.result(second.submit(request), timeout=30)
        second.shutdown()
        assert warm.source == "cache"
        assert result_to_json(warm.result) == result_to_json(cold.result)


class TestSchemaRefusal:
    def test_mismatched_schema_version_is_refused_and_quarantined(
            self, tmp_path, small_result):
        cache = ResultCache(tmp_path / "cache")
        request = _request()
        key = cache.put(request, small_result)
        path = cache._path(key)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        assert envelope["schema_version"] == SCHEMA_VERSION
        envelope["schema_version"] = SCHEMA_VERSION + 7
        path.write_text(json.dumps(envelope), encoding="utf-8")

        assert cache.get(request) is None
        assert cache.refused == 1
        assert cache.quarantined == 1
        assert not path.exists()
        assert len(cache.quarantined_files()) == 1

    def test_matching_schema_version_loads(self, tmp_path, small_result):
        cache = ResultCache(tmp_path / "cache")
        request = _request()
        cache.put(request, small_result)
        loaded = cache.get(request)
        assert loaded is not None
        assert result_to_json(loaded) == result_to_json(small_result)
        assert (cache.hits, cache.misses, cache.refused) == (1, 0, 0)

    def test_envelope_records_request_and_schema(self, tmp_path,
                                                 small_result):
        cache = ResultCache(tmp_path / "cache")
        request = _request()
        key = cache.put(request, small_result)
        envelope = json.loads(
            cache._path(key).read_text(encoding="utf-8"))
        assert envelope["schema_version"] == SCHEMA_VERSION
        assert envelope["request"] == request.to_dict()


class TestAdmissionControl:
    def test_overflow_rejected_not_blocked(self, event_log,
                                           small_result):
        executor = _GatedExecutor(small_result)
        service = SimulationService(workers=1, max_queue_depth=2,
                                    executor=executor)
        running = service.submit(_request(seed=1))
        _wait_for(lambda: executor.calls)   # seed=1 holds the worker
        queued = [service.submit(_request(seed=2)),
                  service.submit(_request(seed=3))]
        started = time.monotonic()
        with pytest.raises(QueueFullError, match="429|full"):
            service.submit(_request(seed=4))
        assert time.monotonic() - started < 5   # rejected, not hung
        executor.gate.set()
        for job in [running, *queued]:
            service.result(job, timeout=30)
        service.shutdown()

        assert service.counters["rejected"] == 1
        kinds = _serve_kinds(event_log)
        assert kinds.count("serve_rejected") == 1

    def test_coalesced_and_cached_never_count_against_depth(
            self, small_result):
        executor = _GatedExecutor(small_result)
        service = SimulationService(workers=1, max_queue_depth=1,
                                    executor=executor)
        first = service.submit(_request())
        _wait_for(lambda: executor.calls)
        followers = [service.submit(_request()) for _ in range(5)]
        executor.gate.set()
        for job in [first, *followers]:
            service.result(job, timeout=30)
        service.shutdown()
        assert len(executor.calls) == 1

    def test_bad_limits_rejected(self):
        with pytest.raises(ServeError, match="workers"):
            SimulationService(workers=0)
        with pytest.raises(ServeError, match="max_queue_depth"):
            SimulationService(max_queue_depth=0)


class TestPriority:
    def test_higher_priority_runs_first(self, small_result):
        executor = _GatedExecutor(small_result)
        service = SimulationService(workers=1, max_queue_depth=8,
                                    executor=executor)
        service.submit(_request(seed=1))
        _wait_for(lambda: executor.calls)   # worker busy on seed=1
        service.submit(_request(seed=2), priority=0)
        urgent = service.submit(_request(seed=3), priority=5)
        executor.gate.set()
        service.result(urgent, timeout=30)
        service.shutdown()
        order = [request.seed for request in executor.calls]
        assert order.index(3) < order.index(2)

    def test_non_int_priority_rejected(self, small_result):
        service = SimulationService(
            executor=_GatedExecutor(small_result))
        with pytest.raises(ServeError, match="priority"):
            service.submit(_request(), priority="high")
        service.shutdown()


class TestServiceErrors:
    def test_unknown_workload_rejected_at_submit(self, small_result):
        service = SimulationService(
            executor=_GatedExecutor(small_result))
        with pytest.raises(ServeError, match="unknown workload"):
            service.submit(RunRequest("not_a_workload",
                                      trace_length=LENGTH))
        service.shutdown()

    def test_unknown_job_id(self, small_result):
        service = SimulationService(
            executor=_GatedExecutor(small_result))
        with pytest.raises(ServeError, match="unknown job"):
            service.status("job-999999")
        service.shutdown()

    def test_submit_after_shutdown_refused(self, small_result):
        service = SimulationService(
            executor=_GatedExecutor(small_result))
        service.start()
        service.shutdown()
        with pytest.raises(ServeError, match="shutting down"):
            service.submit(_request())


class TestTelemetry:
    def test_counters_in_tree(self, tmp_path, small_result):
        executor = _GatedExecutor(small_result)
        executor.gate.set()
        service = SimulationService(cache_dir=str(tmp_path / "cache"),
                                    workers=1, executor=executor)
        service.result(service.submit(_request()), timeout=30)
        service.result(service.submit(_request()), timeout=30)
        service.shutdown()
        node = service.telemetry()
        assert node.name == "serve"
        assert node.counters["submitted"] == 2
        assert node.counters["cache_hits"] == 1
        cache_node = node.child("cache")
        assert cache_node is not None
        assert cache_node.counters["stores"] == 1
        stats = service.stats()
        assert stats["completed"] == 2
        assert stats["cache"]["hits"] == 1


class TestHTTPRoundtrip:
    def _daemon(self, **kwargs):
        daemon = ServiceDaemon(SimulationService(**kwargs), port=0)
        daemon.start_background()
        return daemon, Client(*daemon.address)

    def test_health_and_stats(self, small_result):
        daemon, client = self._daemon(
            executor=_GatedExecutor(small_result))
        try:
            health = client.health()
            assert health["ok"] is True
            assert "version" in health
            assert client.stats()["submitted"] == 0
        finally:
            daemon.stop()

    def test_submit_fetch_roundtrip_is_typed_and_identical(
            self, tmp_path):
        daemon, client = self._daemon(
            cache_dir=str(tmp_path / "cache"), workers=1)
        try:
            request = _request(label="compress_like")
            job = client.submit(request)
            response = client.fetch(job, wait=300)
            assert isinstance(response, RunResponse)
            assert response.source == "computed"
            assert response.request.cache_key() == request.cache_key()
            again = client.run(request)
            assert again.source == "cache"
            assert result_to_json(again.result) == \
                result_to_json(response.result)
            trace = build_trace("compress_like", LENGTH, seed=1)
            direct = simulate(trace, SimConfig(), name="compress_like")
            assert result_to_json(response.result) == \
                result_to_json(direct)
        finally:
            daemon.stop()

    def test_coalescing_over_http(self, small_result):
        executor = _GatedExecutor(small_result)
        daemon, client = self._daemon(workers=2, executor=executor)
        try:
            request = _request()
            ids = [client.submit(request) for _ in range(3)]
            executor.gate.set()
            sources = sorted(client.fetch(job, wait=30).source
                             for job in ids)
            assert sources == ["coalesced", "coalesced", "computed"]
            assert len(executor.calls) == 1
        finally:
            daemon.stop()

    def test_queue_overflow_maps_to_429(self, small_result):
        executor = _GatedExecutor(small_result)
        daemon, client = self._daemon(workers=1, max_queue_depth=1,
                                      executor=executor)
        try:
            client.submit(_request(seed=1))
            _wait_for(lambda: executor.calls)
            client.submit(_request(seed=2))
            with pytest.raises(QueueFullError):
                client.submit(_request(seed=3))
            executor.gate.set()
        finally:
            daemon.stop()

    def test_unknown_job_is_a_client_error(self, small_result):
        daemon, client = self._daemon(
            executor=_GatedExecutor(small_result))
        try:
            with pytest.raises(ServeError, match="unknown job"):
                client.status("job-999999")
            with pytest.raises(ServeError, match="unknown job"):
                client.fetch("job-999999")
        finally:
            daemon.stop()

    def test_pending_job_is_not_ready(self, small_result):
        executor = _GatedExecutor(small_result)
        daemon, client = self._daemon(workers=1, executor=executor)
        try:
            job = client.submit(_request())
            with pytest.raises(ServeError, match="still"):
                client.fetch(job, wait=0)
            executor.gate.set()
            assert client.fetch(job, wait=30).source == "computed"
        finally:
            daemon.stop()

    def test_unreachable_daemon_is_a_serve_error(self):
        client = Client("127.0.0.1", 1, timeout=2)
        with pytest.raises(ServeError, match="cannot reach"):
            client.health()

    def test_remote_shutdown(self, small_result):
        daemon, client = self._daemon(
            executor=_GatedExecutor(small_result))
        client.shutdown()
        _wait_for(lambda: daemon._thread is None
                  or not daemon._thread.is_alive())
        with pytest.raises(ServeError):
            client.health()
