"""Bit-identity of the accelerated cycle engines against the naive loop.

The fast path (``engine="fast"``, see ``repro/sim/fastpath.py``) jumps
over provably idle cycles in one step; the event engine
(``engine="event"``, see ``repro/sim/events.py``) additionally elides
per-component work inside productive cycles.  Their correctness claim
is absolute: the full :class:`~repro.sim.results.SimResult` — every
counter, every histogram, every derived metric — must equal the naive
cycle-by-cycle loop's, for every prefetcher and configuration.  These
tests sweep that claim across the engine matrix, the prefetcher kinds,
cache-probe-filter modes, trace seeds, and the warm-up-reset edge case.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import ENGINES, FilterMode, PrefetchConfig, \
    PrefetcherKind, SimConfig
from repro.sim.simulator import Simulator
from repro.trace import Trace

ALL_KINDS = PrefetcherKind.ALL
CPF_MODES = (FilterMode.ENQUEUE, FilterMode.REMOVE)
SEEDS = (9, 23)
ACCELERATED = tuple(e for e in ENGINES if e != "naive")


@pytest.fixture(scope="module")
def traces(small_program):
    return {seed: Trace.from_program(small_program, 3_000, seed=seed)
            for seed in SEEDS}


def run_all(trace: Trace, config: SimConfig):
    """``{engine: (result, simulator)}`` over every registered engine."""
    out = {}
    for engine in ENGINES:
        sim = Simulator(trace, config, engine=engine)
        out[engine] = (sim.run(), sim)
    return out


def assert_identical(naive, other, engine="fast"):
    """Equality with a readable counter-level diff on failure.

    ``SimResult`` equality covers the full telemetry snapshot (tree,
    meta, and interval series), so every comparison here is also a
    snapshot-identity assertion.
    """
    if naive == other:
        assert naive.telemetry == other.telemetry
        return
    diffs = [f"{key}: naive={naive.counters.get(key)} "
             f"{engine}={other.counters.get(key)}"
             for key in sorted(set(naive.counters) | set(other.counters))
             if naive.counters.get(key) != other.counters.get(key)]
    for field in ("cycles", "instructions", "mispredicts",
                  "ftq_mean_occupancy", "ftq_occupancy_hist",
                  "fetch_block_hist", "prefetch_lead_hist"):
        if getattr(naive, field) != getattr(other, field):
            diffs.append(f"{field}: naive={getattr(naive, field)!r} "
                         f"{engine}={getattr(other, field)!r}")
    if naive.telemetry != other.telemetry:
        nt, ot = naive.telemetry, other.telemetry
        if nt is not None and ot is not None \
                and nt.intervals != ot.intervals:
            diffs.append(f"intervals: naive={nt.intervals!r} "
                         f"{engine}={ot.intervals!r}")
        else:
            diffs.append("telemetry snapshots differ")
    raise AssertionError(f"{engine} engine diverged from naive loop:\n  "
                         + "\n  ".join(diffs))


def assert_matrix_identical(runs):
    naive = runs["naive"][0]
    for engine in ACCELERATED:
        assert_identical(naive, runs[engine][0], engine)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", CPF_MODES)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_engine_matrix_matches_naive(traces, kind, mode, seed):
    config = SimConfig(prefetch=PrefetchConfig(kind=kind,
                                               filter_mode=mode))
    assert_matrix_identical(run_all(traces[seed], config))


def test_accelerated_engines_actually_skip(traces):
    """A stall-heavy run must exercise the skip machinery, or the
    matrix above proves nothing."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    runs = run_all(traces[SEEDS[0]], config)
    assert_matrix_identical(runs)
    for engine in ACCELERATED:
        sim = runs[engine][1]
        assert sim.skipped_cycles > 0, engine
        assert sim.skipped_cycles < sim.cycle, engine
    assert runs["naive"][1].skipped_cycles == 0


def test_warmup_reset_straddles_skip_window(traces):
    """The measurement reset must land on exactly the same cycle.

    With a long memory latency the run is dominated by multi-hundred-
    cycle skip windows; a warm-up threshold mid-run forces the reset to
    fire inside that regime.  Retirement bounds every skip, so the
    reset cycle — and all post-reset statistics — must be identical.
    """
    for warmup in (500, 1000, 1500):
        config = SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
            warmup_instructions=warmup)
        config = config.replace(
            memory=replace(config.memory, memory_latency=400))
        runs = run_all(traces[SEEDS[0]], config)
        assert_matrix_identical(runs)
        for engine in ACCELERATED:
            assert runs[engine][1].skipped_cycles > 0, engine


@pytest.mark.parametrize("engine", ACCELERATED)
@pytest.mark.parametrize("kind", (PrefetcherKind.NONE,
                                  PrefetcherKind.FDIP,
                                  PrefetcherKind.STREAM))
def test_interval_series_identical_under_batching(traces, kind, engine):
    """Per-window interval samples must be bit-identical per engine.

    The sampler reconstructs window boundaries that fall *inside* a
    skipped-cycle batch analytically; a small window against a
    stall-heavy run makes many boundaries land mid-skip.
    """
    config = SimConfig(prefetch=PrefetchConfig(kind=kind),
                       telemetry_window=64)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    naive = Simulator(traces[SEEDS[0]], config, engine="naive").run()
    sim = Simulator(traces[SEEDS[0]], config, engine=engine)
    accel = sim.run()
    assert sim.skipped_cycles > 0
    assert naive.telemetry is not None and accel.telemetry is not None
    assert naive.telemetry.intervals is not None
    assert naive.telemetry.intervals == accel.telemetry.intervals
    assert_identical(naive, accel, engine)
    # The series must tile the measured region: windows are contiguous,
    # and the per-window instruction deltas sum to the run's total.
    samples = accel.telemetry.intervals.samples
    assert sum(s.instructions for s in samples) == accel.instructions
    assert sum(s.cycles for s in samples) == accel.cycles
    assert samples[-1].end_cycle == sim.cycle


def test_interval_series_with_warmup_reset(traces):
    """The series restarts at the measurement origin after warm-up."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
                       warmup_instructions=1000, telemetry_window=64)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    runs = run_all(traces[SEEDS[0]], config)
    assert_matrix_identical(runs)
    for engine in ACCELERATED:
        result, sim = runs[engine]
        assert sim.skipped_cycles > 0, engine
        samples = result.telemetry.intervals.samples
        assert sum(s.instructions for s in samples) == result.instructions
        assert sum(s.cycles for s in samples) == result.cycles


def test_tracer_forces_naive_loop(traces):
    """A tracer must observe every cycle: any engine drops to naive."""
    from repro.analysis import PipeTracer

    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))
    for engine in ACCELERATED:
        tracer = PipeTracer(start=1, length=50)
        sim = Simulator(traces[SEEDS[0]], config, tracer=tracer,
                        engine=engine)
        sim.run()
        assert sim.skipped_cycles == 0, engine
        assert len(tracer.snapshots) > 0, engine


def test_fast_loop_config_knob(traces):
    """``SimConfig.fast_loop=False`` disables skipping without the
    constructor override."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
                       fast_loop=False)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    sim = Simulator(traces[SEEDS[0]], config)
    sim.run()
    assert sim.skipped_cycles == 0
