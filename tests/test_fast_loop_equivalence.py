"""Bit-identity of the fast-path cycle engine against the naive loop.

The fast path (``SimConfig.fast_loop``, see ``repro/sim/fastpath.py``)
jumps over provably idle cycles in one step.  Its correctness claim is
absolute: the full :class:`~repro.sim.results.SimResult` — every
counter, every histogram, every derived metric — must equal the naive
cycle-by-cycle loop's, for every prefetcher and configuration.  These
tests sweep that claim across the prefetcher kinds, cache-probe-filter
modes, trace seeds, and the warm-up-reset edge case.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import FilterMode, PrefetchConfig, PrefetcherKind, \
    SimConfig
from repro.sim.simulator import Simulator
from repro.trace import Trace

ALL_KINDS = PrefetcherKind.ALL
CPF_MODES = (FilterMode.ENQUEUE, FilterMode.REMOVE)
SEEDS = (9, 23)


@pytest.fixture(scope="module")
def traces(small_program):
    return {seed: Trace.from_program(small_program, 3_000, seed=seed)
            for seed in SEEDS}


def both(trace: Trace, config: SimConfig):
    """(naive result, fast result, fast simulator) for one point."""
    naive = Simulator(trace, config, fast_loop=False).run()
    sim = Simulator(trace, config, fast_loop=True)
    fast = sim.run()
    return naive, fast, sim


def assert_identical(naive, fast):
    """Equality with a readable counter-level diff on failure.

    ``SimResult`` equality covers the full telemetry snapshot (tree,
    meta, and interval series), so every comparison here is also a
    snapshot-identity assertion.
    """
    if naive == fast:
        assert naive.telemetry == fast.telemetry
        return
    diffs = [f"{key}: naive={naive.counters.get(key)} "
             f"fast={fast.counters.get(key)}"
             for key in sorted(set(naive.counters) | set(fast.counters))
             if naive.counters.get(key) != fast.counters.get(key)]
    for field in ("cycles", "instructions", "mispredicts",
                  "ftq_mean_occupancy", "ftq_occupancy_hist",
                  "fetch_block_hist", "prefetch_lead_hist"):
        if getattr(naive, field) != getattr(fast, field):
            diffs.append(f"{field}: naive={getattr(naive, field)!r} "
                         f"fast={getattr(fast, field)!r}")
    if naive.telemetry != fast.telemetry:
        nt, ft = naive.telemetry, fast.telemetry
        if nt is not None and ft is not None \
                and nt.intervals != ft.intervals:
            diffs.append(f"intervals: naive={nt.intervals!r} "
                         f"fast={ft.intervals!r}")
        else:
            diffs.append("telemetry snapshots differ")
    raise AssertionError("fast loop diverged from naive loop:\n  "
                         + "\n  ".join(diffs))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mode", CPF_MODES)
@pytest.mark.parametrize("kind", ALL_KINDS)
def test_fast_loop_matches_naive(traces, kind, mode, seed):
    config = SimConfig(prefetch=PrefetchConfig(kind=kind,
                                               filter_mode=mode))
    naive, fast, _ = both(traces[seed], config)
    assert_identical(naive, fast)


def test_fast_loop_actually_skips(traces):
    """A stall-heavy run must exercise the skip machinery, or the
    matrix above proves nothing."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    naive, fast, sim = both(traces[SEEDS[0]], config)
    assert_identical(naive, fast)
    assert sim.skipped_cycles > 0
    assert sim.skipped_cycles < sim.cycle


def test_warmup_reset_straddles_skip_window(traces):
    """The measurement reset must land on exactly the same cycle.

    With a long memory latency the run is dominated by multi-hundred-
    cycle skip windows; a warm-up threshold mid-run forces the reset to
    fire inside that regime.  Retirement bounds every skip, so the
    reset cycle — and all post-reset statistics — must be identical.
    """
    for warmup in (500, 1000, 1500):
        config = SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
            warmup_instructions=warmup)
        config = config.replace(
            memory=replace(config.memory, memory_latency=400))
        naive, fast, sim = both(traces[SEEDS[0]], config)
        assert_identical(naive, fast)
        assert sim.skipped_cycles > 0


@pytest.mark.parametrize("kind", (PrefetcherKind.NONE,
                                  PrefetcherKind.FDIP,
                                  PrefetcherKind.STREAM))
def test_interval_series_identical_under_batching(traces, kind):
    """Per-window interval samples must be bit-identical fast vs naive.

    The sampler reconstructs window boundaries that fall *inside* a
    skipped-cycle batch analytically; a small window against a
    stall-heavy run makes many boundaries land mid-skip.
    """
    config = SimConfig(prefetch=PrefetchConfig(kind=kind),
                       telemetry_window=64)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    naive, fast, sim = both(traces[SEEDS[0]], config)
    assert sim.skipped_cycles > 0
    assert naive.telemetry is not None and fast.telemetry is not None
    assert naive.telemetry.intervals is not None
    assert naive.telemetry.intervals == fast.telemetry.intervals
    assert_identical(naive, fast)
    # The series must tile the measured region: windows are contiguous,
    # and the per-window instruction deltas sum to the run's total.
    samples = fast.telemetry.intervals.samples
    assert sum(s.instructions for s in samples) == fast.instructions
    assert sum(s.cycles for s in samples) == fast.cycles
    assert samples[-1].end_cycle == sim.cycle


def test_interval_series_with_warmup_reset(traces):
    """The series restarts at the measurement origin after warm-up."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
                       warmup_instructions=1000, telemetry_window=64)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    naive, fast, sim = both(traces[SEEDS[0]], config)
    assert sim.skipped_cycles > 0
    assert_identical(naive, fast)
    samples = fast.telemetry.intervals.samples
    assert sum(s.instructions for s in samples) == fast.instructions
    assert sum(s.cycles for s in samples) == fast.cycles


def test_tracer_forces_naive_loop(traces):
    """A tracer must observe every cycle: fast_loop is ignored."""
    from repro.analysis import PipeTracer

    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))
    tracer = PipeTracer(start=1, length=50)
    sim = Simulator(traces[SEEDS[0]], config, tracer=tracer,
                    fast_loop=True)
    sim.run()
    assert sim.skipped_cycles == 0
    assert len(tracer.snapshots) > 0


def test_fast_loop_config_knob(traces):
    """``SimConfig.fast_loop=False`` disables skipping without the
    constructor override."""
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE),
                       fast_loop=False)
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    sim = Simulator(traces[SEEDS[0]], config)
    sim.run()
    assert sim.skipped_cycles == 0
