"""Backend window model."""

import pytest

from repro.config import CoreConfig
from repro.cpu import Backend
from repro.isa import InstrKind
from repro.trace import TraceRecord


def record(kind=InstrKind.ALU, pc=0x40_0000):
    return TraceRecord(pc, kind, False, pc + 4)


def make_backend(issue_width=4, window_size=16, pipeline_depth=2,
                 load_latency=3):
    core = CoreConfig(fetch_width=8, issue_width=issue_width,
                      window_size=window_size,
                      pipeline_depth=pipeline_depth,
                      branch_resolve_latency=4, load_latency=load_latency)
    return Backend(core)


class TestDelivery:
    def test_free_slots_shrink(self):
        backend = make_backend(window_size=16)
        backend.deliver([record()] * 4, now=1)
        assert backend.free_slots == 12
        assert backend.occupancy == 4

    def test_overdelivery_rejected(self):
        backend = make_backend(window_size=4)
        with pytest.raises(OverflowError):
            backend.deliver([record()] * 5, now=1)


class TestRetire:
    def test_nothing_retires_before_completion(self):
        backend = make_backend(pipeline_depth=2)
        backend.deliver([record()], now=10)   # completes at 13
        assert backend.retire(12) == 0
        assert backend.retire(13) == 1

    def test_issue_width_bounds_retire(self):
        backend = make_backend(issue_width=2, pipeline_depth=1)
        backend.deliver([record()] * 6, now=0)  # all complete at 2
        assert backend.retire(10) == 2
        assert backend.retire(11) == 2
        assert backend.retire(12) == 2
        assert backend.retired == 6

    def test_loads_take_longer(self):
        backend = make_backend(pipeline_depth=2, load_latency=3)
        backend.deliver([record(InstrKind.LOAD)], now=0)  # ready at 5
        backend.deliver([record(InstrKind.ALU)], now=0)   # ready at 3
        # In-order retire: the ALU waits behind the load.
        assert backend.retire(3) == 0
        assert backend.retire(5) == 2

    def test_retire_stall_accounting(self):
        backend = make_backend(pipeline_depth=5)
        backend.deliver([record()], now=0)
        backend.retire(1)
        assert backend.stats.get("retire_stall_cycles") == 1

    def test_drained(self):
        backend = make_backend()
        assert backend.drained
        backend.deliver([record()], now=0)
        assert not backend.drained
        backend.retire(100)
        assert backend.drained
