"""The shared cache_key helper: one identity digest for every layer."""

from __future__ import annotations

import json
import subprocess
import sys

from repro.cachekey import KEY_LENGTH, cache_key, shard_variant
from repro.config import PrefetchConfig, SimConfig
from repro.harness.persist import result_key
from repro.spec import RunRequest


class TestCacheKey:
    def test_stable_across_calls(self):
        config = SimConfig()
        assert cache_key("gcc_like", config, 60_000, 1) == \
            cache_key("gcc_like", config, 60_000, 1)

    def test_key_shape(self):
        key = cache_key("gcc_like", SimConfig(), 60_000, 1)
        assert len(key) == KEY_LENGTH
        assert all(c in "0123456789abcdef" for c in key)

    def test_every_input_contributes(self):
        base = cache_key("gcc_like", SimConfig(), 60_000, 1)
        assert cache_key("perl_like", SimConfig(), 60_000, 1) != base
        assert cache_key("gcc_like", SimConfig(), 60_001, 1) != base
        assert cache_key("gcc_like", SimConfig(), 60_000, 2) != base
        assert cache_key("gcc_like", SimConfig(), 60_000, 1,
                         variant="shards=4:overlap=2000:warm=functional"
                         ) != base
        nopf = SimConfig(prefetch=PrefetchConfig(kind="none"))
        assert cache_key("gcc_like", nopf, 60_000, 1) != base

    def test_execution_knobs_do_not_contribute(self):
        """Engine, cadence, and logging choices never affect the
        result, so they must never fork the key space."""
        base = cache_key("gcc_like", SimConfig(), 60_000, 1)
        for changes in ({"engine": "naive"}, {"engine": "fast"},
                        {"fast_loop": False},
                        {"checkpoint_interval": 500},
                        {"watchdog_interval": 1000},
                        {"profile": True},
                        {"event_log": "events.jsonl"}):
            varied = SimConfig(**changes)
            assert cache_key("gcc_like", varied, 60_000, 1) == base, \
                changes

    def test_config_dict_ordering_is_irrelevant(self):
        """The digest covers the *canonical* config form.

        Two configs that round-trip to the same to_dict() must key
        identically even when one was built from a key-reordered dict.
        """
        config = SimConfig(prefetch=PrefetchConfig(kind="fdip"))
        payload = config.to_dict()
        reordered = json.loads(
            json.dumps(payload, sort_keys=True))
        reordered = dict(reversed(list(reordered.items())))
        rebuilt = SimConfig.from_dict(reordered)
        assert cache_key("gcc_like", config, 60_000, 1) == \
            cache_key("gcc_like", rebuilt, 60_000, 1)

    def test_stable_across_processes(self):
        """No per-process state (hash seeds, dict order) leaks in."""
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.cachekey import cache_key\n"
            "from repro.config import SimConfig\n"
            "print(cache_key('gcc_like', SimConfig(), 60000, 1))\n")
        keys = {
            subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True).stdout.strip()
            for _ in range(2)}
        assert keys == {cache_key("gcc_like", SimConfig(), 60_000, 1)}

    def test_result_key_is_an_alias(self):
        config = SimConfig()
        assert result_key("gcc_like", config, 60_000, 1, "v") == \
            cache_key("gcc_like", config, 60_000, 1, "v")

    def test_request_cache_key_matches_helper(self):
        request = RunRequest("gcc_like", SimConfig(),
                             trace_length=60_000, seed=1, shards=1)
        assert request.cache_key() == \
            cache_key("gcc_like", SimConfig(), 60_000, 1)


class TestShardVariant:
    def test_tag_format(self):
        assert shard_variant(4, 2000) == \
            "shards=4:overlap=2000:warm=functional"
        assert shard_variant(2, 500, warm="overlap") == \
            "shards=2:overlap=500:warm=overlap"

    def test_default_overlap_resolves(self):
        from repro.sim.sharding import DEFAULT_SHARD_OVERLAP

        assert shard_variant(4) == \
            f"shards=4:overlap={DEFAULT_SHARD_OVERLAP}:warm=functional"

    def test_sharded_and_monolithic_keys_differ(self):
        config = SimConfig()
        assert cache_key("gcc_like", config, 200_000, 1,
                         variant=shard_variant(4)) != \
            cache_key("gcc_like", config, 200_000, 1)


class TestVersionBinding:
    def test_version_and_schema_are_in_the_digest(self, monkeypatch):
        """A model or result-schema change must invalidate old keys."""
        import repro
        import repro.sim.serialize as serialize

        base = cache_key("gcc_like", SimConfig(), 60_000, 1)
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        bumped_version = cache_key("gcc_like", SimConfig(), 60_000, 1)
        assert bumped_version != base
        monkeypatch.undo()
        monkeypatch.setattr(serialize, "SCHEMA_VERSION", 999)
        assert cache_key("gcc_like", SimConfig(), 60_000, 1) != base

    def test_golden_pin(self):
        """The digest algorithm itself is frozen.

        This pins the *construction* (canonical JSON, sha256, prefix
        length) rather than one literal digest — the digest legitimately
        moves with the package version and result schema.
        """
        import hashlib

        import repro
        from repro.sim.serialize import SCHEMA_VERSION

        config = SimConfig()
        identity = {
            "version": repro.__version__,
            "result_schema": SCHEMA_VERSION,
            "workload": "gcc_like",
            "trace_length": 60_000,
            "seed": 1,
            "config": config.to_dict(),
            "variant": "",
        }
        blob = json.dumps(identity, sort_keys=True,
                          separators=(",", ":"))
        expected = hashlib.sha256(
            blob.encode("utf-8")).hexdigest()[:KEY_LENGTH]
        assert cache_key("gcc_like", config, 60_000, 1) == expected
