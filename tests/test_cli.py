"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "-w", "nonexistent"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vortex_like" in out
        assert "fdip" in out
        assert "E15" in out


class TestCharacterize:
    def test_prints_metrics(self, capsys):
        code = main(["characterize", "-w", "compress_like",
                     "--length", "3000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "footprint KB" in out
        assert "3000" in out


class TestRun:
    def test_table_output(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "none"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_json_output(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "fdip", "-f", "ideal", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["workload"] == "compress_like"
        assert payload["prefetcher"] == "fdip"
        assert payload["ipc"] > 0

    def test_warmup_accepted(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "--warmup", "500", "-p", "nlp"])
        assert code == 0


class TestEngineFlag:
    def _run_json(self, capsys, *extra):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "none", "--json", *extra])
        assert code == 0
        return json.loads(capsys.readouterr().out)

    @pytest.mark.parametrize("engine", ["naive", "fast", "event"])
    def test_engine_choices_accepted_and_identical(self, capsys, engine):
        default = self._run_json(capsys)
        explicit = self._run_json(capsys, "--engine", engine)
        assert explicit == default

    def test_unknown_engine_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "-w", "compress_like", "--engine", "turbo"])

    def test_naive_loop_shim_warns_and_still_runs(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "none", "--naive-loop"])
        assert code == 0
        err = capsys.readouterr().err
        assert "deprecated" in err
        assert "--engine naive" in err

    def test_naive_loop_conflicts_with_explicit_engine(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "none", "--naive-loop", "--engine", "event"])
        assert code != 0
        assert "conflicts" in capsys.readouterr().err

    def test_profile_accepts_engine(self, capsys):
        code = main(["profile", "-w", "compress_like", "--length",
                     "3000", "--engine", "event", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.profile/v1"


class TestExperimentCommand:
    def test_e1(self, capsys):
        assert main(["experiment", "E1", "--length", "2000"]) == 0
        out = capsys.readouterr().out
        assert "E1: Simulated machine configuration" in out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        code = main(["report", "--length", "2000",
                     "--experiments", "E1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Reproduction report" in out
        assert "## E1" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(["report", "--length", "2000",
                     "--experiments", "E1", "-o", str(target)])
        assert code == 0
        assert "## E1" in target.read_text()


class TestCalibrateCommand:
    def test_single_workload_ok(self, capsys):
        code = main(["calibrate", "-w", "compress_like",
                     "--length", "8000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compress_like" in out
        assert "ok" in out


class TestReportCharts:
    def test_e6_report_includes_chart(self, capsys):
        code = main(["report", "--length", "2000",
                     "--experiments", "E6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup vs FTQ depth" in out
        assert "#" in out


class TestCombinedPrefetcherCli:
    def test_fdip_nlp_choice(self, capsys):
        code = main(["run", "-w", "compress_like", "--length", "3000",
                     "-p", "fdip_nlp"])
        assert code == 0
        assert "fdip_nlp" in capsys.readouterr().out


class TestStatsCommand:
    ARGS = ["stats", "-w", "compress_like", "--length", "4000"]

    def test_table_output_walks_tree(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "sim/mem/l1i" in out
        assert "sim/predict" in out

    def test_json_emits_versioned_schema(self, capsys):
        from repro.stats import SCHEMA

        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == SCHEMA
        assert payload["root"]["name"] == "sim"
        assert payload["meta"]["prefetcher"] == "fdip"

    def test_csv_counters(self, capsys):
        assert main(self.ARGS + ["--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "component,counter,value"
        assert any(line.startswith("sim/mem,") for line in lines)

    def test_interval_series_with_window(self, capsys):
        assert main(self.ARGS + ["--window", "500"]) == 0
        out = capsys.readouterr().out
        assert "interval series (window 500 cycles)" in out

    def test_csv_intervals(self, capsys):
        assert main(self.ARGS + ["--window", "500", "--csv",
                                 "--intervals"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("interval,end_cycle,")
        assert len(lines) > 2

    def test_csv_intervals_without_window_fails(self, capsys):
        assert main(self.ARGS + ["--csv", "--intervals"]) == 2
        assert "--window" in capsys.readouterr().err

    def test_json_and_csv_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.ARGS + ["--json", "--csv"])

    def test_sharded_stats(self, capsys):
        code = main(["stats", "-w", "compress_like", "--length", "6000",
                     "--shards", "2", "--shard-overlap", "500",
                     "--processes", "1"])
        assert code == 0
        assert "sim/mem/l1i" in capsys.readouterr().out


class TestShardCommand:
    BASE = ["shard", "-w", "compress_like", "--length", "6000",
            "--shards", "2", "--shard-overlap", "500",
            "--processes", "1"]

    def test_table_output(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "IPC" in out
        assert "shard" in out  # provenance table

    def test_json_output(self, capsys):
        assert main(self.BASE + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sharding"]["shards"] == 2
        assert payload["sharding"]["overlap"] == 500
        assert len(payload["sharding"]["windows"]) == 2
        assert payload["ipc"] > 0

    def test_compare_reports_deltas(self, capsys):
        assert main(self.BASE + ["--compare"]) == 0
        out = capsys.readouterr().out
        assert "monolithic" in out

    def test_calibrate_prints_accuracy_table(self, capsys):
        code = main(["shard", "-w", "compress_like", "--length", "6000",
                     "--processes", "1", "--calibrate"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ipc err" in out

    def test_warm_mode_validated_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.BASE + ["--warm", "cold"])


class TestSharedFlags:
    """The trace/pool parent parsers behave uniformly across commands."""

    @pytest.mark.parametrize("command", [
        ["sweep"], ["stats", "-w", "compress_like"],
        ["shard", "-w", "compress_like"], ["perf"],
    ])
    def test_trace_and_pool_flags_accepted(self, command):
        args = build_parser().parse_args(
            command + ["--length", "5000", "--seed", "3",
                       "--processes", "2", "--max-retries", "1",
                       "--point-timeout", "30"])
        assert args.length == 5000
        assert args.seed == 3
        assert args.processes == 2
        assert args.max_retries == 1
        assert args.point_timeout == 30.0

    def test_trace_length_alias(self):
        args = build_parser().parse_args(
            ["stats", "-w", "compress_like", "--trace-length", "4000"])
        assert args.length == 4000

    def test_length_defaults_to_none_for_per_command_fallback(self):
        # perf distinguishes "no --length" (quick/default semantics)
        # from an explicit value, so the shared flag must not eagerly
        # substitute the generic default.
        assert build_parser().parse_args(["perf"]).length is None


class TestServeParsers:
    """The serving subcommands share --host/--port via one parent."""

    def test_serve_defaults(self):
        from repro.serve.daemon import DEFAULT_HOST, DEFAULT_PORT

        args = build_parser().parse_args(["serve"])
        assert args.host == DEFAULT_HOST
        assert args.port == DEFAULT_PORT
        assert args.workers == 1
        assert args.max_queue_depth == 16
        assert args.cache_dir is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4",
             "--max-queue-depth", "2", "--cache-dir", "/tmp/c"])
        assert args.port == 0
        assert args.workers == 4
        assert args.max_queue_depth == 2
        assert args.cache_dir == "/tmp/c"

    @pytest.mark.parametrize("command", [
        ["submit", "-w", "compress_like"],
        ["status", "job-000001"],
        ["fetch", "job-000001"],
    ])
    def test_endpoint_flags_shared(self, command):
        args = build_parser().parse_args(
            command + ["--host", "10.0.0.2", "--port", "9999"])
        assert args.host == "10.0.0.2"
        assert args.port == 9999

    def test_submit_request_flags(self):
        args = build_parser().parse_args(
            ["submit", "-w", "compress_like", "--length", "6000",
             "--seed", "2", "--shards", "4", "--priority", "3",
             "--wait", "30", "--json"])
        assert args.workload == "compress_like"
        assert args.length == 6000
        assert args.seed == 2
        assert args.shards == 4
        assert args.priority == 3
        assert args.wait == 30.0
        assert args.json is True

    def test_submit_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "-w", "nonexistent"])

    def test_fetch_requires_job(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fetch"])


class TestServeCommandsAgainstLiveDaemon:
    def test_submit_status_fetch_roundtrip(self, capsys):
        from repro.serve import ServiceDaemon

        daemon = ServiceDaemon(port=0)
        daemon.start_background()
        host, port = daemon.address
        endpoint = ["--host", host, "--port", str(port)]
        try:
            assert main(["submit", "-w", "compress_like",
                         "--length", "6000", *endpoint]) == 0
            job = capsys.readouterr().out.strip()
            assert job.startswith("job-")

            assert main(["fetch", job, "--wait", "300", "--json",
                         *endpoint]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["job"] == job
            assert payload["source"] == "computed"
            assert payload["cycles"] > 0

            assert main(["status", job, *endpoint]) == 0
            status = json.loads(capsys.readouterr().out)
            assert status["state"] == "done"
        finally:
            daemon.stop()

    def test_unreachable_daemon_reports_error(self, capsys):
        assert main(["status", "job-000001",
                     "--host", "127.0.0.1", "--port", "1"]) == 2
        assert "error:" in capsys.readouterr().err
