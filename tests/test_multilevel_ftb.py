"""Two-level FTB structure and its prediction-unit integration."""

import dataclasses

import pytest

from repro import PrefetchConfig, PrefetcherKind, SimConfig, simulate
from repro.bpred import HybridPredictor, ReturnAddressStack
from repro.config import FrontEndConfig, PredictorConfig
from repro.errors import ConfigError
from repro.frontend import FetchTargetQueue, PredictUnit
from repro.ftb import HIT, L2, MISS, FetchTargetBuffer, FTBEntry, \
    TwoLevelFTB
from repro.isa import InstrKind
from tests.conftest import TraceBuilder

BASE = 0x40_0000


def entry(start, n=4, target=0x40_8000):
    return FTBEntry(start=start, fallthrough=start + 4 * n,
                    target=target, kind=InstrKind.JUMP_DIRECT)


class TestTwoLevelStructure:
    def test_install_trains_both_levels(self):
        ftb = TwoLevelFTB(4, 2, 16, 4, l2_latency=3)
        ftb.install(entry(BASE))
        assert ftb.l1.resident_entries() == 1
        assert ftb.l2.resident_entries() == 1

    def test_l1_hit(self):
        ftb = TwoLevelFTB(4, 2, 16, 4, l2_latency=3)
        ftb.install(entry(BASE))
        level, found = ftb.probe(BASE)
        assert level == HIT
        assert found.target == 0x40_8000

    def test_l2_hit_promotes(self):
        ftb = TwoLevelFTB(1, 1, 16, 4, l2_latency=3)
        ftb.install(entry(BASE))
        ftb.install(entry(BASE + 0x100))   # evicts BASE from 1-entry L1
        level, found = ftb.probe(BASE)
        assert level == L2
        assert found is not None
        # Promotion: next probe is an L1 hit.
        level, _ = ftb.probe(BASE)
        assert level == HIT

    def test_miss(self):
        ftb = TwoLevelFTB(4, 2, 16, 4, l2_latency=3)
        level, found = ftb.probe(BASE)
        assert level == MISS
        assert found is None

    def test_latency_validated(self):
        with pytest.raises(ConfigError):
            TwoLevelFTB(4, 2, 16, 4, l2_latency=0)

    def test_monolithic_probe_never_says_l2(self):
        ftb = FetchTargetBuffer(4, 2)
        ftb.install(entry(BASE))
        assert ftb.probe(BASE)[0] == "hit"
        assert ftb.probe(BASE + 0x40)[0] == "miss"


class TestPredictUnitIntegration:
    def make_unit(self, trace):
        config = FrontEndConfig(
            ftq_depth=8, max_fetch_block=8,
            predictor=PredictorConfig(
                bimodal_entries=256, gshare_entries=256, history_bits=6,
                meta_entries=256, ras_depth=8, ftb_sets=64, ftb_ways=2))
        ftb = TwoLevelFTB(1, 1, 64, 4, l2_latency=4)
        unit = PredictUnit(trace, ftb, HybridPredictor(256, 256, 6, 256),
                           ReturnAddressStack(8), config)
        return unit, ftb, FetchTargetQueue(8)

    def loop_trace(self, iterations):
        builder = TraceBuilder(BASE)
        for _ in range(iterations):
            builder.seq(3).jump(BASE)
            builder.seq(3).jump(BASE + 0x200)  # unreachable filler
            builder.records = builder.records[:-4]
            builder.pc = BASE
        builder.seq(4)
        from repro.trace import Trace
        return Trace(builder.records, name="loop")

    def test_l2_hit_stalls_for_latency(self, tb):
        # Build a trace that revisits BASE after the entry has been
        # evicted from the tiny (1-entry) L1 FTB.
        trace = (tb.seq(3).jump(BASE + 0x100)      # block A (trains A)
                   .seq(3).jump(BASE)              # block B (evicts A)
                   .seq(3).jump(BASE + 0x100)      # block A again: L2 hit
                   .seq(3).jump(BASE)
                   .seq(4)).build()
        unit, ftb, ftq = self.make_unit(trace)

        cycle = 0
        stalls_before = 0
        while not unit.done and cycle < 300:
            cycle += 1
            produced = unit.tick(cycle, ftq)
            if produced is not None and produced.mispredict:
                while not ftq.empty:
                    head = ftq.pop_head()
                    if head is produced:
                        break
                ftq.clear()
                unit.on_resolve(produced)
            elif ftq.full:
                while not ftq.empty:
                    ftq.pop_head()
        del stalls_before
        assert unit.done
        assert unit.stats.get("ftb_l2_promotions") >= 1
        assert unit.stats.get("ftb_l2_stall_cycles") >= \
            3 * unit.stats.get("ftb_l2_promotions")

    def test_end_to_end_two_level_completes(self, small_trace):
        config = SimConfig(prefetch=PrefetchConfig(
            kind=PrefetcherKind.FDIP))
        predictor = dataclasses.replace(
            config.frontend.predictor, ftb_sets=16, ftb_ways=2,
            ftb_l2_sets=256, ftb_l2_latency=3)
        config = config.replace(frontend=dataclasses.replace(
            config.frontend, predictor=predictor))
        result = simulate(small_trace, config)
        assert result.instructions == len(small_trace)
        assert result.get("ftb2.installs") > 0

    def test_two_level_between_small_and_big(self, small_trace):
        def run_with(sets, l2_sets):
            config = SimConfig(prefetch=PrefetchConfig(
                kind=PrefetcherKind.FDIP))
            predictor = dataclasses.replace(
                config.frontend.predictor, ftb_sets=sets, ftb_ways=2,
                ftb_l2_sets=l2_sets, ftb_l2_latency=3)
            config = config.replace(frontend=dataclasses.replace(
                config.frontend, predictor=predictor))
            return simulate(small_trace, config)

        small = run_with(4, 0)
        two_level = run_with(4, 512)
        big = run_with(512, 0)
        assert two_level.ipc >= small.ipc * 0.98
        assert two_level.ipc <= big.ipc * 1.02
