"""Parallel sweep runner and the markdown report generator."""

import pytest

from repro.harness import (
    Runner,
    generate_report,
    parallel_sweep,
    technique_config,
)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))


class TestParallelSweep:
    def test_inline_mode(self):
        points = [("compress_like", technique_config("none")),
                  ("compress_like", technique_config("nlp"))]
        results = parallel_sweep(points, trace_length=3000, processes=1)
        assert set(results) == set(points)
        for result in results.values():
            assert result.instructions > 0

    def test_duplicates_deduplicated(self):
        point = ("compress_like", technique_config("none"))
        results = parallel_sweep([point, point], trace_length=3000,
                                 processes=1)
        assert len(results) == 1

    def test_multiprocess_matches_inline(self):
        points = [("compress_like", technique_config("none")),
                  ("compress_like", technique_config("fdip_enqueue")),
                  ("m88ksim_like", technique_config("none"))]
        inline = parallel_sweep(points, trace_length=3000, processes=1)
        fanned = parallel_sweep(points, trace_length=3000, processes=2)
        for point in points:
            assert inline[point].cycles == fanned[point].cycles
            assert inline[point].counters == fanned[point].counters

    def test_warmup_default_applied(self):
        point = ("compress_like", technique_config("none"))
        results = parallel_sweep([point], trace_length=3000, processes=1)
        result = results[point]
        assert result.instructions < 3000


class TestReport:
    def test_subset_report(self):
        runner = Runner(trace_length=2000)
        text = generate_report(runner, experiment_ids=["E1"])
        assert "# Reproduction report" in text
        assert "## E1" in text
        assert "```text" in text

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError):
            generate_report(Runner(trace_length=2000),
                            experiment_ids=["E99"])

    def test_reports_run_count(self):
        runner = Runner(trace_length=2000)
        text = generate_report(runner, experiment_ids=["E1"])
        assert "Total simulation points" in text
