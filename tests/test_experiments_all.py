"""Structural integration tests over every registered experiment.

Runs each experiment at a tiny trace length (enough to exercise every
code path; far too short for publication-quality numbers) and checks the
structural invariants: headers/rows agree, numbers are finite and
positive where they must be, and the weakest of the expected shape
properties hold.
"""

import math

import pytest

from repro.harness import EXPERIMENTS, Runner, run_experiment


@pytest.fixture(scope="module")
def runner(tmp_path_factory):
    import os
    cache_dir = tmp_path_factory.mktemp("traces")
    old = os.environ.get("REPRO_TRACE_CACHE")
    os.environ["REPRO_TRACE_CACHE"] = str(cache_dir)
    yield Runner(trace_length=2500)
    if old is None:
        os.environ.pop("REPRO_TRACE_CACHE", None)
    else:
        os.environ["REPRO_TRACE_CACHE"] = old


@pytest.fixture(scope="module")
def tables(runner):
    return {eid: run_experiment(eid, runner) for eid in EXPERIMENTS}


class TestStructure:
    def test_all_experiments_produce_tables(self, tables):
        assert set(tables) == set(EXPERIMENTS)

    def test_rows_match_headers(self, tables):
        for table in tables.values():
            assert table.rows, f"{table.experiment_id} has no rows"
            for row in table.rows:
                assert len(row) == len(table.headers), \
                    f"{table.experiment_id}: ragged row {row}"

    def test_formatted_output_renders(self, tables):
        for table in tables.values():
            text = table.formatted()
            assert table.experiment_id in text
            assert len(text.splitlines()) >= len(table.rows) + 2

    def test_numeric_cells_finite(self, tables):
        for table in tables.values():
            for row in table.rows:
                for cell in row:
                    if isinstance(cell, float):
                        assert math.isfinite(cell), \
                            f"{table.experiment_id}: non-finite {row}"

    def test_experiment_ids_consistent(self, tables):
        for eid, table in tables.items():
            assert table.experiment_id == eid


class TestWeakShapes:
    """Shape checks robust even at tiny trace lengths."""

    def test_e3_speedups_positive(self, tables):
        for row in tables["E3"].rows:
            for cell in row[1:]:
                assert cell > 0

    def test_e4_utilization_bounded(self, tables):
        for row in tables["E4"].rows:
            for cell in row[1:]:
                assert 0.0 <= cell <= 1.0

    def test_e5_useful_nearly_bounded_by_issued(self, tables):
        # Statistics reset at warm-up: blocks prefetched before the
        # reset can be claimed after it, so "useful" may exceed
        # "issued" by up to roughly the prefetch storage capacity.
        for row in tables["E5"].rows:
            _, _, issued, useful, _, accuracy, coverage = row
            assert useful <= issued + 64
            assert accuracy >= 0.0
            assert 0.0 <= coverage <= 1.0

    def test_e6_depth_one_is_baseline(self, tables):
        first = tables["E6"].rows[0]
        assert first[0] == 1
        for cell in first[1:]:
            # With no lookahead FDIP cannot prefetch: speedup ~ 1.
            assert cell == pytest.approx(1.0, abs=0.06)

    def test_e6_deeper_never_much_worse(self, tables):
        rows = tables["E6"].rows
        for col in range(1, len(rows[0])):
            assert rows[-1][col] >= rows[0][col] - 0.05

    def test_e12_fractions_sum_to_one(self, tables):
        for row in tables["E12"].rows:
            assert sum(row[3:6]) == pytest.approx(1.0, abs=1e-6)

    def test_e14_breakdown_sums_to_one(self, tables):
        for row in tables["E14"].rows:
            assert sum(row[2:]) == pytest.approx(1.0, abs=1e-6)

    def test_e16_ftb_miss_rate_monotone_nonincreasing(self, tables):
        rows = tables["E16"].rows
        # Columns 2 and 4 are ftb-miss rates; growing the FTB must not
        # increase them (tolerating small LRU noise).
        for col in (2, 4):
            for above, below in zip(rows, rows[1:]):
                assert below[col] <= above[col] * 1.15

    def test_e17_combined_not_much_worse_than_fdip(self, tables):
        for row in tables["E17"].rows:
            _, nlp, fdip, combined = row
            assert combined >= fdip * 0.93

    def test_runs_are_shared_across_experiments(self, runner, tables):
        # The memoizing runner should have far fewer simulation points
        # than the naive sum over experiments.
        assert runner.runs_performed < 400
