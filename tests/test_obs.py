"""Structured observability: the event log, span tracing, and the
cycle-attribution profiler (``repro.obs``)."""

from __future__ import annotations

import json
import os

import pytest

from repro.config import PrefetchConfig, PrefetcherKind, SimConfig
from repro.errors import ConfigError, ObservabilityError, SimulationError
from repro.obs import (
    EVENT_SCHEMA,
    KINDS,
    PROFILE_CATEGORIES,
    PROFILE_SCHEMA,
    CycleProfiler,
    SpanRecorder,
    configure_logging,
    current_context,
    current_run_id,
    emit,
    export_chrome_trace,
    logging_active,
    obs_context,
    parse_event_line,
    profile_run,
    read_events,
    reset_logging,
    spans_from_events,
    trace_from_events,
    validate_chrome_trace,
    validate_event,
)
from repro.obs.events import attach_log_file
from repro.sim.simulator import Simulator


@pytest.fixture(autouse=True)
def _isolated_logging(monkeypatch):
    """Each test starts and ends with no sinks and a clean environment."""
    for name in ("REPRO_LOG_FILE", "REPRO_LOG_STDERR",
                 "REPRO_LOG_RUN_ID"):
        monkeypatch.delenv(name, raising=False)
    reset_logging()
    yield
    reset_logging()


def _fdip() -> SimConfig:
    return SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP))


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------

class TestEventLog:
    def test_emit_is_noop_without_sinks(self, tmp_path):
        assert not logging_active()
        emit("run_start", data={"name": "x"})   # must not raise or write

    def test_file_sink_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        run_id = configure_logging(file=path)
        emit("run_start", data={"name": "t", "cycle": 0})
        emit("run_end", data={"name": "t", "cycle": 10})
        events = read_events(path)
        assert [e["kind"] for e in events] == ["run_start", "run_end"]
        for event in events:
            assert event["schema"] == EVENT_SCHEMA
            assert event["run"] == run_id
            assert event["pid"] == os.getpid()
        assert events[0]["seq"] < events[1]["seq"]
        assert events[0]["ts"] <= events[1]["ts"]

    def test_every_kind_validates(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        configure_logging(file=path)
        for kind in sorted(KINDS):
            emit(kind, data={"probe": kind})
        events = read_events(path)
        assert {e["kind"] for e in events} == KINDS
        for event in events:
            assert validate_event(event) is event

    def test_unknown_kind_rejected(self, tmp_path):
        configure_logging(file=str(tmp_path / "e.jsonl"))
        with pytest.raises(ObservabilityError, match="unknown event kind"):
            emit("made_up_kind")

    def test_context_nesting_and_overrides(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        configure_logging(file=path)
        with obs_context(point="gcc/abc"):
            with obs_context(attempt=2):
                assert current_context() == {"point": "gcc/abc",
                                             "attempt": 2}
                emit("task_spawn")
                emit("task_done", attempt=3)    # kwarg beats context
            emit("task_retry")
        events = read_events(path)
        spawn, done, retry = events
        assert (spawn["point"], spawn["attempt"]) == ("gcc/abc", 2)
        assert done["attempt"] == 3
        assert (retry["point"], retry["attempt"]) == ("gcc/abc", None)

    def test_unknown_correlation_field_rejected(self):
        with pytest.raises(ObservabilityError, match="correlation"):
            with obs_context(workload="nope"):
                pass

    def test_kind_filter_and_stable_order(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        configure_logging(file=path)
        for _ in range(3):
            emit("task_spawn")
            emit("task_done")
        spawns = read_events(path, kinds={"task_spawn"})
        assert [e["kind"] for e in spawns] == ["task_spawn"] * 3

    def test_malformed_lines_rejected(self):
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            parse_event_line("{nope")
        with pytest.raises(ObservabilityError, match="schema"):
            parse_event_line(json.dumps({"schema": "other/v9"}))
        good = {"schema": EVENT_SCHEMA, "kind": "run_start", "ts": 1.0,
                "wall": 1.0, "pid": 1, "seq": 1, "run": None,
                "point": None, "shard": None, "attempt": None,
                "data": {}}
        assert parse_event_line(json.dumps(good))["kind"] == "run_start"
        bad = dict(good, attempt="first")
        with pytest.raises(ObservabilityError, match="attempt"):
            validate_event(bad)

    def test_configure_propagates_through_environment(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        run_id = configure_logging(file=path)
        assert os.environ["REPRO_LOG_FILE"] == path
        assert os.environ["REPRO_LOG_RUN_ID"] == run_id
        # A "worker" process adopts the env lazily after a reset.
        reset_logging(scrub_env=False)
        assert logging_active()
        assert current_run_id() == run_id
        emit("task_spawn")
        assert read_events(path)[0]["run"] == run_id
        reset_logging()
        assert "REPRO_LOG_FILE" not in os.environ

    def test_attach_log_file_defers_to_existing_sink(self, tmp_path):
        first = str(tmp_path / "first.jsonl")
        second = str(tmp_path / "second.jsonl")
        configure_logging(file=first)
        attach_log_file(second)
        emit("run_start")
        assert len(read_events(first)) == 1
        assert not os.path.exists(second)

    def test_config_event_log_attaches_sink(self, tmp_path, tiny_trace):
        path = str(tmp_path / "run.jsonl")
        result = Simulator(tiny_trace,
                           _fdip().replace(event_log=path)).run()
        kinds = [e["kind"] for e in read_events(path)]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert result.instructions > 0


class TestSimulatorEvents:
    def test_run_lifecycle_with_warmup(self, tmp_path, small_trace):
        path = str(tmp_path / "e.jsonl")
        configure_logging(file=path)
        config = _fdip().replace(warmup_instructions=5_000)
        result = Simulator(small_trace, config).run()
        events = read_events(path)
        kinds = [e["kind"] for e in events]
        assert kinds == ["run_start", "warmup_end", "run_end"]
        start, warm, end = events
        assert start["data"]["engine"] == "event"   # the default engine
        assert start["data"]["resumed"] is False
        assert warm["data"]["cycle"] < end["data"]["cycle"]
        # run_end's retired counts the whole run, warm-up included.
        assert end["data"]["retired"] >= result.instructions

    def test_events_do_not_change_results(self, tmp_path, tiny_trace):
        silent = Simulator(tiny_trace, _fdip()).run()
        configure_logging(file=str(tmp_path / "e.jsonl"))
        logged = Simulator(tiny_trace, _fdip()).run()
        assert logged == silent


# ----------------------------------------------------------------------
# Sweep correlation (the end-to-end acceptance path)
# ----------------------------------------------------------------------

class TestSweepCorrelation:
    def _sweep(self, tmp_path, processes):
        from repro.harness import parallel_sweep, technique_config

        path = str(tmp_path / "sweep.jsonl")
        run_id = configure_logging(file=path)
        outcome = parallel_sweep(
            [("compress_like", technique_config("none")),
             ("compress_like", technique_config("fdip_enqueue"))],
            trace_length=3_000, processes=processes)
        assert outcome.ok
        return run_id, read_events(path)

    @pytest.mark.parametrize("processes", [1, 2],
                             ids=["inline", "pooled"])
    def test_worker_events_share_run_and_point_ids(self, tmp_path,
                                                   processes):
        run_id, events = self._sweep(tmp_path, processes)
        assert {e["run"] for e in events} == {run_id}
        kinds = {e["kind"] for e in events}
        assert {"sweep_start", "task_spawn", "run_start", "run_end",
                "task_done", "sweep_end"} <= kinds
        # Events emitted inside workers carry the scheduling context.
        for event in events:
            if event["kind"] in ("run_start", "run_end", "task_done"):
                assert event["point"], event
                assert event["attempt"] == 1
        points = {e["point"] for e in events if e["kind"] == "task_done"}
        assert len(points) == 2

    def test_span_tree_and_chrome_export(self, tmp_path):
        _, events = self._sweep(tmp_path, 1)
        spans = spans_from_events(events)
        names = [s.name for s in spans]
        assert sum(n == "sweep" for n in names) == 1
        assert sum(n.startswith("attempt ") for n in names) == 2
        assert sum(n.startswith("sim ") for n in names) == 2
        for span in spans:
            assert span.duration >= 0.0
        out = tmp_path / "sweep.trace.json"
        count = export_chrome_trace(tmp_path / "sweep.jsonl", out)
        document = json.loads(out.read_text(encoding="utf-8"))
        assert validate_chrome_trace(document) is document
        assert len(document["traceEvents"]) == count == len(spans)

    def test_instant_kinds_become_markers(self, tmp_path):
        path = str(tmp_path / "e.jsonl")
        configure_logging(file=path)
        emit("pool_rebuild", data={"rebuilds": 1})
        emit("watchdog_stall", data={"cycle": 9})
        document = trace_from_events(read_events(path))
        validate_chrome_trace(document)
        phases = {e["name"]: e["ph"] for e in document["traceEvents"]}
        assert phases == {"pool_rebuild": "i", "watchdog_stall": "i"}


class TestSpanRecorder:
    def test_nested_spans_export_and_validate(self, tmp_path):
        recorder = SpanRecorder(pid=7)
        with recorder.span("sweep", points=2) as outer:
            with recorder.span("point", workload="gcc_like"):
                pass
            outer["done"] = True
        assert [s.name for s in recorder.spans] == ["point", "sweep"]
        assert recorder.spans[1].args == {"points": 2, "done": True}
        out = tmp_path / "rec.trace.json"
        assert recorder.export(out) == 2
        validate_chrome_trace(json.loads(out.read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# Cycle profiler
# ----------------------------------------------------------------------

class TestCycleProfiler:
    @pytest.mark.parametrize("kind", PrefetcherKind.ALL)
    def test_buckets_sum_to_cycles(self, small_trace, kind):
        config = SimConfig(prefetch=PrefetchConfig(kind=kind))
        response = profile_run(small_trace, config)
        result, profile = response.result, response.profile
        assert response.source == "computed"
        assert profile["schema"] == PROFILE_SCHEMA
        assert sum(profile["buckets"].values()) == result.cycles
        assert profile["cycles"] == result.cycles
        assert profile["meta"]["prefetcher"] == kind

    def test_identical_under_both_engines(self, small_trace):
        fast_response = profile_run(small_trace, _fdip(),
                                    fast_loop=True)
        naive_response = profile_run(small_trace, _fdip(),
                                     fast_loop=False)
        fast_result, fast = fast_response.result, fast_response.profile
        naive_result, naive = (naive_response.result,
                               naive_response.profile)
        assert fast_result == naive_result
        assert fast["buckets"] == naive["buckets"]

    def test_profiling_never_perturbs_results(self, small_trace):
        plain = Simulator(small_trace, _fdip()).run()
        profiled = profile_run(small_trace, _fdip()).result
        assert profiled == plain

    def test_component_regrouping_consistent(self, small_trace):
        profile = profile_run(small_trace, _fdip()).profile
        components = dict(PROFILE_CATEGORIES)
        regrouped = sum(cycles
                        for causes in profile["components"].values()
                        for cycles in causes.values())
        assert regrouped == profile["cycles"]
        for component, causes in profile["components"].items():
            for cause in causes:
                assert components[cause] == component

    def test_warmup_excluded_from_profile(self, small_trace):
        config = _fdip().replace(warmup_instructions=5_000)
        response = profile_run(small_trace, config)
        result, profile = response.result, response.profile
        # Only the measured region is attributed, not warm-up cycles.
        assert sum(profile["buckets"].values()) == result.cycles

    def test_checkpoint_resume_preserves_profile(self, small_trace):
        config = _fdip().replace(profile=True, checkpoint_interval=400)
        sim = Simulator(small_trace, config)
        states: list[dict] = []
        sim.checkpoint_sink = \
            lambda s: states.append(json.loads(json.dumps(s)))
        reference = sim.run()
        expected = sim.profile_report()
        assert states, "trace too short to ever snapshot"
        resumed = Simulator(small_trace, config)
        resumed.load_state_dict(states[len(states) // 2])
        assert resumed.run() == reference
        assert resumed.profile_report()["buckets"] == expected["buckets"]

    def test_profile_report_requires_opt_in(self, tiny_trace):
        sim = Simulator(tiny_trace, _fdip())
        sim.run()
        with pytest.raises(SimulationError, match="profile=True"):
            sim.profile_report()

    def test_snapshot_meta_ignores_observability_fields(self, tiny_trace):
        from repro.sim import snapshot_meta

        base = snapshot_meta(tiny_trace, _fdip())
        decorated = snapshot_meta(
            tiny_trace, _fdip().replace(profile=True,
                                        event_log="events.jsonl"))
        assert decorated == base

    def test_load_state_dict_rejects_unknown_bucket(self):
        profiler = CycleProfiler()
        with pytest.raises(ObservabilityError, match="unknown bucket"):
            profiler.load_state_dict({"warp_drive": 3})


# ----------------------------------------------------------------------
# Config surface for observability
# ----------------------------------------------------------------------

class TestObservabilityConfig:
    def test_profile_and_event_log_fields_validate(self):
        config = SimConfig(profile=True, event_log="x.jsonl")
        assert config.profile and config.event_log == "x.jsonl"
        with pytest.raises(ConfigError):
            SimConfig(profile="yes")
        with pytest.raises(ConfigError):
            SimConfig(event_log=7)

    def test_unknown_kwarg_suggests_closest_field(self):
        with pytest.raises(ConfigError, match="did you mean 'profile'"):
            SimConfig.from_dict({"profil": True})
