"""Golden regression values.

The simulator is fully deterministic, so these exact counter values pin
the current model's behaviour.  If a change breaks them *intentionally*
(a model fix or feature), regenerate the table with the snippet in the
module docstring below and say so in the commit; if it breaks them
unintentionally, you just caught a behavioural regression.

Regenerate::

    python -c "
    from repro.cfg import ProgramShape, generate_program
    from repro.trace import Trace
    from repro import SimConfig, PrefetchConfig, simulate
    shape = ProgramShape(target_instrs=2048, n_functions=16,
                         n_levels=5, dispatcher_fanout=4)
    prog = generate_program(shape, seed=42, name='small')
    tr = Trace.from_program(prog, 10000, seed=7)
    for kind, fm in [('none','none'),('nlp','none'),('stream','none'),
                     ('fdip','enqueue'),('fdip','ideal'),
                     ('fdip_nlp','enqueue')]:
        r = simulate(tr, SimConfig(prefetch=PrefetchConfig(
            kind=kind, filter_mode=fm)))
        print(kind, fm, r.cycles, r.mispredicts, r.demand_misses,
              r.prefetches_issued)
    "
"""

import pytest

from repro import PrefetchConfig, SimConfig, simulate
from repro.cfg import ProgramShape, generate_program
from repro.trace import Trace

GOLDEN = {
    ("none", "none"): dict(cycles=9749, mispredicts=412,
                           demand_misses=66, prefetches_issued=0),
    ("nlp", "none"): dict(cycles=8874, mispredicts=412,
                          demand_misses=18, prefetches_issued=62),
    ("stream", "none"): dict(cycles=8709, mispredicts=412,
                             demand_misses=28, prefetches_issued=70),
    ("fdip", "enqueue"): dict(cycles=7992, mispredicts=412,
                              demand_misses=7, prefetches_issued=299),
    ("fdip", "ideal"): dict(cycles=7989, mispredicts=412,
                            demand_misses=5, prefetches_issued=168),
    ("fdip_nlp", "enqueue"): dict(cycles=8005, mispredicts=412,
                                  demand_misses=8,
                                  prefetches_issued=303),
}


@pytest.fixture(scope="module")
def golden_trace():
    shape = ProgramShape(target_instrs=2048, n_functions=16,
                         n_levels=5, dispatcher_fanout=4)
    program = generate_program(shape, seed=42, name="small")
    return Trace.from_program(program, 10000, seed=7)


@pytest.mark.parametrize("key", sorted(GOLDEN))
def test_golden_counters(golden_trace, key):
    kind, filter_mode = key
    result = simulate(golden_trace, SimConfig(
        prefetch=PrefetchConfig(kind=kind, filter_mode=filter_mode)))
    expected = GOLDEN[key]
    measured = dict(cycles=result.cycles,
                    mispredicts=result.mispredicts,
                    demand_misses=result.demand_misses,
                    prefetches_issued=result.prefetches_issued)
    assert measured == expected


def test_golden_trace_identity(golden_trace):
    """The trace itself must be byte-stable across versions."""
    assert len(golden_trace) == 10000
    assert golden_trace[0].pc == 0x40_0000
    # Pin structural facts rather than a full hash dump.
    taken = sum(1 for record in golden_trace if record.taken)
    assert taken == 1651
    checksum = sum(record.pc for record in golden_trace) & 0xFFFFFFFF
    assert checksum == 0xC75D54E0
