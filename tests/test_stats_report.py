"""Table/CSV/JSON report formatting."""

import json

import pytest

from repro.stats import format_table, format_value, rows_to_csv, rows_to_json


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(1.23456, precision=2) == "1.23"

    def test_bool_not_formatted_as_number(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_int_verbatim(self):
        assert format_value(42) == "42"

    def test_string_verbatim(self):
        assert format_value("abc") == "abc"


class TestFormatTable:
    def test_header_and_separator(self):
        text = format_table(["a", "b"], [[1, 2]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2"]

    def test_title_prepended(self):
        text = format_table(["a"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_numeric_right_alignment(self):
        text = format_table(["name", "value"], [["x", 1], ["longer", 22]])
        data_lines = text.splitlines()[2:]
        # The numeric column is right aligned: last characters line up.
        assert data_lines[0].endswith(" 1")
        assert data_lines[1].endswith("22")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_precision_applied(self):
        text = format_table(["v"], [[1.23456]], precision=1)
        assert "1.2" in text
        assert "1.23" not in text


class TestCsvJson:
    def test_csv_roundtrip_header(self):
        csv_text = rows_to_csv(["a", "b"], [[1, "x"]])
        lines = csv_text.strip().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_json_records(self):
        payload = json.loads(rows_to_json(["a", "b"], [[1, 2], [3, 4]]))
        assert payload == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]

    def test_json_empty(self):
        assert json.loads(rows_to_json(["a"], [])) == []
