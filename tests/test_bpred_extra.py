"""Local/static predictors and the predictor factory."""

import pytest

from repro.bpred import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BimodalPredictor,
    DIRECTION_PREDICTORS,
    GsharePredictor,
    HybridPredictor,
    LocalPredictor,
    make_direction_predictor,
)
from repro.config import PredictorConfig
from repro.errors import ConfigError


class TestLocalPredictor:
    def test_learns_periodic_pattern(self):
        """T,T,NT repeating — a pattern a 2-bit bimodal cannot learn."""
        predictor = LocalPredictor(history_entries=64, history_bits=6,
                                   pattern_entries=256)
        pc = 0x40_0000
        pattern = [True, True, False]
        # Train over many periods.
        for _ in range(40):
            for taken in pattern:
                predictor.update(pc, 0, taken)
        # Now verify it predicts the next full period correctly.
        correct = 0
        for taken in pattern * 2:
            if predictor.predict(pc, 0) == taken:
                correct += 1
            predictor.update(pc, 0, taken)
        assert correct == 6

    def test_bimodal_cannot_learn_that_pattern(self):
        predictor = BimodalPredictor(64)
        pc = 0x40_0000
        pattern = [True, True, False]
        for _ in range(40):
            for taken in pattern:
                predictor.update(pc, 0, taken)
        correct = 0
        for taken in pattern * 2:
            if predictor.predict(pc, 0) == taken:
                correct += 1
            predictor.update(pc, 0, taken)
        assert correct < 6

    def test_distinct_branches_have_distinct_histories(self):
        predictor = LocalPredictor(history_entries=64, history_bits=4,
                                   pattern_entries=64)
        a, b = 0x40_0000, 0x40_0004
        for _ in range(10):
            predictor.update(a, 0, True)
            predictor.update(b, 0, False)
        assert predictor.predict(a, 0)
        assert not predictor.predict(b, 0)

    def test_validates_geometry(self):
        with pytest.raises(ConfigError):
            LocalPredictor(history_entries=100)
        with pytest.raises(ConfigError):
            LocalPredictor(pattern_entries=100)
        with pytest.raises(ConfigError):
            LocalPredictor(history_bits=0)


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        predictor.update(0, 0, False)
        assert predictor.predict(0, 0)

    def test_always_not_taken(self):
        predictor = AlwaysNotTakenPredictor()
        predictor.update(0, 0, True)
        assert not predictor.predict(0, 0)


class TestFactory:
    @pytest.mark.parametrize("kind,expected", [
        ("hybrid", HybridPredictor),
        ("gshare", GsharePredictor),
        ("bimodal", BimodalPredictor),
        ("local", LocalPredictor),
        ("always_taken", AlwaysTakenPredictor),
        ("always_not_taken", AlwaysNotTakenPredictor),
    ])
    def test_each_kind_constructs(self, kind, expected):
        config = PredictorConfig(direction=kind)
        assert isinstance(make_direction_predictor(config), expected)

    def test_catalog_matches_config_validation(self):
        assert set(DIRECTION_PREDICTORS) == \
            set(PredictorConfig.DIRECTION_KINDS)

    def test_config_rejects_unknown_direction(self):
        with pytest.raises(ConfigError):
            PredictorConfig(direction="psychic")
