"""Fetch engine: delivery, stalls, wrong-path handling."""


from repro.config import CacheGeometry, CoreConfig, MemoryConfig
from repro.cpu import Backend
from repro.frontend import FetchEngine, FetchTargetQueue, FTQEntry
from repro.memory import MemorySystem
from repro.prefetch import NonePrefetcher
from tests.conftest import TraceBuilder

BASE = 0x40_0000   # 32-byte aligned


class Harness:
    def __init__(self, trace, window_size=64, mshrs=4):
        self.trace = trace
        core = CoreConfig(fetch_width=8, issue_width=8,
                          window_size=window_size, pipeline_depth=2,
                          branch_resolve_latency=3)
        memory_config = MemoryConfig(
            icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
            l2=CacheGeometry(size_bytes=64 * 1024, assoc=4, block_bytes=32),
            l2_hit_latency=8, memory_latency=40, bus_transfer_cycles=4,
            mshr_entries=mshrs)
        self.memory = MemorySystem(memory_config)
        self.prefetcher = NonePrefetcher(self.memory)
        self.ftq = FetchTargetQueue(8)
        self.backend = Backend(core)
        self.resolutions: list[tuple[FTQEntry, int]] = []
        self.engine = FetchEngine(
            trace, self.memory, self.ftq, self.backend, self.prefetcher,
            core, lambda entry, cycle: self.resolutions.append(
                (entry, cycle)))

    def warm(self, *bids):
        for bid in bids:
            self.memory.l1i.fill(bid)

    def tick(self, cycle):
        self.memory.begin_cycle(cycle)
        self.engine.tick(cycle)


def entry(seq, start, n, first_index=0, **kw) -> FTQEntry:
    return FTQEntry(seq=seq, start=start, end=start + 4 * n,
                    predicted_next=start + 4 * n, first_index=first_index,
                    n_records=n, **kw)


class TestDelivery:
    def test_aligned_block_delivered_in_one_cycle(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.warm(BASE // 32)
        h.ftq.push(entry(1, BASE, 8))
        h.tick(1)
        assert h.backend.occupancy == 8
        assert h.ftq.empty

    def test_straddling_blocks_takes_two_cycles(self):
        start = BASE + 16            # halfway into a block
        trace = TraceBuilder(start).seq(8).build()
        h = Harness(trace)
        h.warm(start // 32, start // 32 + 1)
        h.ftq.push(entry(1, start, 8))
        h.tick(1)
        assert h.backend.occupancy == 4   # up to the block boundary
        h.tick(2)
        assert h.backend.occupancy == 8
        assert h.ftq.empty

    def test_miss_blocks_until_fill(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.ftq.push(entry(1, BASE, 8))
        h.tick(1)                       # miss issued; ready at 1+4+40
        assert h.backend.occupancy == 0
        h.tick(20)
        assert h.backend.occupancy == 0
        h.tick(45)                      # fill applied; refetch hits
        assert h.backend.occupancy == 8
        assert h.engine.stats.get("demand_misses") == 1

    def test_window_backpressure(self):
        trace = TraceBuilder(BASE).seq(16).build()
        h = Harness(trace, window_size=8)
        h.warm(BASE // 32, BASE // 32 + 1)
        h.ftq.push(entry(1, BASE, 16))
        h.tick(1)
        assert h.backend.occupancy == 8
        h.tick(2)                       # window full: stall
        assert h.backend.occupancy == 8
        assert h.engine.stats.get("window_stall_cycles") == 1
        h.backend.retire(100)
        h.tick(3)
        assert h.ftq.empty

    def test_empty_ftq_idles(self):
        trace = TraceBuilder(BASE).seq(4).build()
        h = Harness(trace)
        h.tick(1)
        assert h.engine.stats.get("ftq_empty_cycles") == 1


class TestWrongPath:
    def test_wrong_path_instrs_discarded(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.warm(BASE // 32)
        h.ftq.push(entry(1, BASE, 8, wrong_path=True))
        h.tick(1)
        assert h.backend.occupancy == 0
        assert h.engine.stats.get("wrong_path_instrs") == 8
        assert h.ftq.empty

    def test_wrong_path_misses_pollute_cache(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.ftq.push(entry(1, BASE, 8, wrong_path=True))
        h.tick(1)
        h.tick(50)   # fill lands
        assert h.memory.l1i.contains(BASE // 32)

    def test_squash_clears_pending_miss_wait(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.ftq.push(entry(1, BASE, 8, wrong_path=True))
        h.tick(1)
        assert h.engine.stalled_on_miss
        h.engine.squash()
        assert not h.engine.stalled_on_miss


class TestResolutionCallback:
    def test_fired_when_mispredicted_entry_completes(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.warm(BASE // 32)
        mispredicted = entry(1, BASE, 8, mispredict=True)
        h.ftq.push(mispredicted)
        h.tick(5)
        assert len(h.resolutions) == 1
        resolved, cycle = h.resolutions[0]
        assert resolved is mispredicted
        assert cycle == 5 + 2 + 3   # pipeline_depth + resolve latency

    def test_not_fired_for_correct_entries(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = Harness(trace)
        h.warm(BASE // 32)
        h.ftq.push(entry(1, BASE, 8))
        h.tick(1)
        assert h.resolutions == []


class TestMultiAccessFetch:
    def make_harness(self, trace, accesses):
        from repro.config import CacheGeometry, CoreConfig, MemoryConfig
        from repro.cpu import Backend
        from repro.frontend import FetchEngine, FetchTargetQueue
        from repro.memory import MemorySystem
        from repro.prefetch import NonePrefetcher

        core = CoreConfig(fetch_width=8, issue_width=8, window_size=64,
                          pipeline_depth=2, branch_resolve_latency=3,
                          fetch_accesses_per_cycle=accesses)
        memory_config = MemoryConfig(
            icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
            l2=CacheGeometry(size_bytes=64 * 1024, assoc=4,
                             block_bytes=32),
            l2_hit_latency=8, memory_latency=40, bus_transfer_cycles=4,
            mshr_entries=4, icache_tag_ports=accesses)
        h = Harness.__new__(Harness)
        h.trace = trace
        h.memory = MemorySystem(memory_config)
        h.prefetcher = NonePrefetcher(h.memory)
        h.ftq = FetchTargetQueue(8)
        h.backend = Backend(core)
        h.resolutions = []
        h.engine = FetchEngine(
            trace, h.memory, h.ftq, h.backend, h.prefetcher, core,
            lambda e, c: h.resolutions.append((e, c)))
        return h

    def test_two_accesses_cross_block_boundary(self):
        start = BASE + 16
        trace = TraceBuilder(start).seq(8).build()
        h = self.make_harness(trace, accesses=2)
        h.memory.l1i.fill(start // 32)
        h.memory.l1i.fill(start // 32 + 1)
        h.ftq.push(entry(1, start, 8))
        h.memory.begin_cycle(1)
        h.engine.tick(1)
        # Both halves fetched in one cycle (vs two with one access).
        assert h.backend.occupancy == 8
        assert h.ftq.empty

    def test_budget_still_caps_width(self):
        trace = TraceBuilder(BASE).seq(16).build()
        h = self.make_harness(trace, accesses=2)
        h.memory.l1i.fill(BASE // 32)
        h.memory.l1i.fill(BASE // 32 + 1)
        h.ftq.push(entry(1, BASE, 16))
        h.memory.begin_cycle(1)
        h.engine.tick(1)
        # fetch_width=8 caps delivery even though 2 accesses available.
        assert h.backend.occupancy == 8

    def test_two_short_blocks_in_one_cycle(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = self.make_harness(trace, accesses=2)
        h.memory.l1i.fill(BASE // 32)
        h.ftq.push(entry(1, BASE, 3))
        h.ftq.push(entry(2, BASE + 12, 3, first_index=3))
        h.memory.begin_cycle(1)
        h.engine.tick(1)
        assert h.backend.occupancy == 6
        assert h.ftq.empty

    def test_active_cycles_counted_once_per_cycle(self):
        trace = TraceBuilder(BASE).seq(8).build()
        h = self.make_harness(trace, accesses=2)
        h.memory.l1i.fill(BASE // 32)
        h.ftq.push(entry(1, BASE, 3))
        h.ftq.push(entry(2, BASE + 12, 3, first_index=3))
        h.memory.begin_cycle(1)
        h.engine.tick(1)
        assert h.engine.stats.get("active_cycles") == 1
