"""Generated-program invariants."""

import pytest

from repro.cfg import ProgramShape, generate_program
from repro.errors import ConfigError
from repro.isa import InstrKind


@pytest.fixture(scope="module")
def program():
    shape = ProgramShape(target_instrs=4096, n_functions=24,
                         dispatcher_fanout=6)
    return generate_program(shape, seed=3)


class TestShapeValidation:
    def test_terminator_probabilities_bounded(self):
        with pytest.raises(ConfigError):
            ProgramShape(p_cond=0.9, p_jump=0.2, p_call=0.2)

    def test_levels_bounded_by_functions(self):
        with pytest.raises(ConfigError):
            ProgramShape(n_functions=4, n_levels=10)

    def test_minimum_size(self):
        with pytest.raises(ConfigError):
            ProgramShape(target_instrs=10)

    def test_empty_bias_choices_rejected(self):
        with pytest.raises(ConfigError):
            ProgramShape(taken_bias_choices=())


class TestGeneratedProgram:
    def test_validates(self, program):
        program.validate()  # raises on violation

    def test_function_count(self, program):
        assert len(program.functions) == 24

    def test_size_near_target(self, program):
        # Generation is stochastic; stay within a loose band.
        assert 0.4 * 4096 <= program.n_instrs <= 2.0 * 4096

    def test_deterministic_per_seed(self):
        shape = ProgramShape(target_instrs=1024, n_functions=8)
        a = generate_program(shape, seed=5)
        b = generate_program(shape, seed=5)
        assert a.n_instrs == b.n_instrs
        assert [f.entry for f in a.functions] == \
            [f.entry for f in b.functions]
        for fa, fb in zip(a.functions, b.functions):
            for ba, bb in zip(fa.blocks, fb.blocks):
                assert [i.kind for i in ba.instrs] == \
                    [i.kind for i in bb.instrs]

    def test_different_seeds_differ(self):
        shape = ProgramShape(target_instrs=1024, n_functions=8)
        a = generate_program(shape, seed=5)
        b = generate_program(shape, seed=6)
        kinds_a = [i.kind for f in a.functions
                   for bl in f.blocks for i in bl.instrs]
        kinds_b = [i.kind for f in b.functions
                   for bl in f.blocks for i in bl.instrs]
        assert kinds_a != kinds_b

    def test_main_is_dispatch_loop(self, program):
        main = program.functions[0]
        kinds = [b.terminator.kind for b in main.blocks
                 if b.terminator is not None]
        assert InstrKind.CALL_INDIRECT in kinds
        assert InstrKind.RETURN in kinds
        loop_blocks = [b for b in main.blocks if b.loop_trips is not None]
        assert loop_blocks, "main must contain its dispatch loop branch"

    def test_dispatcher_targets_are_function_entries(self, program):
        main = program.functions[0]
        entries = {f.entry for f in program.functions}
        dispatch = next(b for b in main.blocks
                        if b.terminator is not None
                        and b.terminator.kind == InstrKind.CALL_INDIRECT)
        assert set(dispatch.indirect_targets) <= entries

    def test_calls_always_go_forward(self, program):
        """Call targets sit at higher addresses (deeper levels), which
        bounds the walker's dynamic call depth."""
        for function in program.functions:
            for block in function.blocks:
                term = block.terminator
                if term is None:
                    continue
                if term.kind == InstrKind.CALL:
                    assert term.target > function.end
                if term.kind == InstrKind.CALL_INDIRECT:
                    assert all(t > function.end
                               for t in block.indirect_targets)

    def test_conditional_targets_stay_in_function(self, program):
        for function in program.functions:
            span = range(function.start, function.end)
            for block in function.blocks:
                term = block.terminator
                if term is not None and \
                        term.kind == InstrKind.BRANCH_COND:
                    assert term.target in span

    def test_loop_branches_point_backward_or_self(self, program):
        for function in program.functions:
            for block in function.blocks:
                if block.loop_trips is None:
                    continue
                term = block.terminator
                assert term is not None
                assert term.kind == InstrKind.BRANCH_COND
                assert term.target <= block.start

    def test_indirect_weights_normalized(self, program):
        for function in program.functions:
            for block in function.blocks:
                if block.indirect_weights:
                    assert sum(block.indirect_weights) == \
                        pytest.approx(1.0, abs=1e-6)
