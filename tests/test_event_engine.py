"""Unit tests for the event-driven cycle engine (``sim/events.py``).

Bit-identity against the naive loop is swept exhaustively in
``test_fast_loop_equivalence.py`` (engine matrix) and
``test_checkpoint.py`` (resume identity); this module covers the event
engine's own moving parts — the wake calendar, the jump planner, the
per-component elision contracts, engine selection plumbing, the fast
engine's naive fallback latch, and checkpoints that land mid-jump.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.config import ENGINES, PrefetchConfig, PrefetcherKind, \
    SimConfig
from repro.errors import ConfigError
from repro.obs.events import KINDS, read_events
from repro.sim.events import WakeCalendar, plan_wake
from repro.sim.simulator import Simulator
from repro.workloads import build_trace

_TRACE = build_trace("gcc_like", 2500, seed=7)


def _stall_config(**changes) -> SimConfig:
    config = SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))
    config = config.replace(
        memory=replace(config.memory, memory_latency=400))
    return config.replace(**changes) if changes else config


# ----------------------------------------------------------------------
# WakeCalendar
# ----------------------------------------------------------------------

class TestWakeCalendar:

    def test_orders_pushes_by_cycle(self):
        calendar = WakeCalendar()
        calendar.push(30, "memory.fill")
        calendar.push(10, "fetch.fill")
        calendar.push(20, "backend.completion")
        assert calendar.earliest() == (10, "fetch.fill")
        assert calendar.pop() == (10, "fetch.fill")
        assert calendar.pop() == (20, "backend.completion")
        assert calendar.pop() == (30, "memory.fill")
        assert len(calendar) == 0
        assert calendar.earliest() is None

    def test_refill_replaces_wholesale_and_returns_earliest(self):
        calendar = WakeCalendar()
        calendar.push(5, "stale")
        head = calendar.refill([(40, "a"), (15, "b"), (99, "c")])
        assert head == (15, "b")
        assert calendar.earliest() == (15, "b")
        assert len(calendar) == 3
        assert calendar.refill([]) is None
        assert len(calendar) == 0

    def test_clear_and_repr(self):
        calendar = WakeCalendar()
        calendar.push(7, "x")
        assert "pending=1" in repr(calendar)
        calendar.clear()
        assert len(calendar) == 0
        assert "pending=0" in repr(calendar)


# ----------------------------------------------------------------------
# The jump planner
# ----------------------------------------------------------------------

class TestPlanWake:

    @staticmethod
    def _stalled_sim():
        """A simulator parked in a provable multi-cycle stall.

        Naive-step cycles until a cycle both delivers nothing and
        yields a plan; the stall config guarantees hundreds of such
        cycles early on (cold L1-I miss against 400-cycle memory).
        """
        sim = Simulator(_TRACE, _stall_config(), engine="naive")
        calendar = WakeCalendar()
        for _ in range(50):
            sim.cycle += 1
            cycle = sim.cycle
            sim.memory.begin_cycle(cycle)
            sim.backend.retire(cycle)
            if sim._resolve_at is not None and cycle >= sim._resolve_at:
                sim._squash_and_redirect()
            fetched = sim.fetch_engine.tick(cycle)
            sim.predict_unit.tick(cycle, sim.ftq)
            sim.prefetcher.tick(cycle, sim.ftq)
            if not fetched:
                plan = plan_wake(sim, cycle, 10 ** 9, calendar)
                if plan is not None:
                    return sim, cycle, plan, calendar
        pytest.fail("never found a provable stall cycle")

    def test_plan_matches_earliest_wake(self):
        _, cycle, plan, calendar = self._stalled_sim()
        head = calendar.earliest()
        assert head is not None
        assert plan.target == head[0]
        assert plan.cycles == plan.target - cycle - 1
        assert plan.cycles > 0

    def test_plan_clamped_by_max_cycles(self):
        sim, cycle, plan, calendar = self._stalled_sim()
        cap = cycle + 2
        clamped = plan_wake(sim, cycle, cap, calendar)
        if clamped is not None:
            assert clamped.target <= cap + 1
            assert clamped.cycles >= 1

    def test_no_plan_when_wake_is_next_cycle(self):
        sim, cycle, plan, calendar = self._stalled_sim()
        # Replay the same proof with an artificial next-cycle wake:
        # nothing can be skipped, so there must be no plan.
        from repro.sim.events import _plan_from_proof
        from repro.sim.fastpath import stall_proof

        proof = stall_proof(sim, cycle)
        assert proof is not None
        wakes = list(proof[3]) + [(cycle + 1, "imminent")]
        assert _plan_from_proof(
            (proof[0], proof[1], proof[2], wakes),
            cycle, 10 ** 9, calendar) is None


# ----------------------------------------------------------------------
# Per-component elision contracts
# ----------------------------------------------------------------------

class TestElisionContracts:

    def test_only_none_prefetcher_declares_inert_tick(self):
        for kind in PrefetcherKind.ALL:
            config = SimConfig(prefetch=PrefetchConfig(kind=kind))
            sim = Simulator(_TRACE, config)
            expected = kind == PrefetcherKind.NONE
            assert sim.prefetcher.inert_tick is expected, kind

    def test_base_prefetcher_defaults_conservative(self):
        from repro.prefetch.base import Prefetcher

        assert Prefetcher.inert_tick is False


# ----------------------------------------------------------------------
# Engine selection plumbing
# ----------------------------------------------------------------------

class TestEngineSelection:

    def test_unknown_engine_rejected_by_config(self):
        with pytest.raises(ConfigError, match="unknown engine"):
            SimConfig(engine="bogus")

    def test_unknown_engine_rejected_by_simulator(self):
        with pytest.raises(ConfigError, match="engine"):
            Simulator(_TRACE, SimConfig(), engine="bogus")

    def test_default_is_event(self):
        assert SimConfig().engine == "event"
        assert SimConfig().resolved_engine == "event"
        assert "event" in ENGINES

    def test_deprecated_fast_loop_false_forces_naive(self):
        config = SimConfig(fast_loop=False)
        assert config.resolved_engine == "naive"

    def test_constructor_override_wins_over_config(self):
        sim = Simulator(_TRACE, SimConfig(engine="naive"),
                        engine="event")
        assert sim.engine == "event"

    def test_api_simulate_threads_engine(self):
        from repro.api import simulate

        results = {engine: simulate(_TRACE, _stall_config(),
                                    engine=engine)
                   for engine in ENGINES}
        assert results["fast"] == results["naive"]
        assert results["event"] == results["naive"]


# ----------------------------------------------------------------------
# Fast-engine naive fallback latch
# ----------------------------------------------------------------------

class TestFastEngineFallback:

    @pytest.fixture(autouse=True)
    def _fresh_log_sinks(self):
        # Event sinks are process-global; reset so each test's
        # config.event_log path actually receives its run's events.
        from repro.obs.events import reset_logging

        reset_logging()
        yield
        reset_logging()

    def test_fallback_fires_on_saturated_run(self, tmp_path):
        """A run the skip machinery never helps latches to naive and
        logs a schema-valid engine_fallback event."""
        assert "engine_fallback" in KINDS
        log = str(tmp_path / "events.jsonl")
        trace = build_trace("gcc_like", 12_000, seed=3)
        config = SimConfig(
            prefetch=PrefetchConfig(kind=PrefetcherKind.FDIP,
                                    filter_mode="enqueue"),
            engine="fast", event_log=log)
        fast = Simulator(trace, config).run()
        events = read_events(log, kinds={"engine_fallback"})
        assert len(events) == 1
        data = events[0]["data"]
        assert data["from_engine"] == "fast"
        assert data["to_engine"] == "naive"
        assert data["skip_ratio"] < 0.01
        assert data["probe_cycles"] >= 4096
        # The latch is a pure perf decision: results stay identical.
        naive = Simulator(trace, config.replace(
            engine="naive", event_log=None)).run()
        assert fast == naive

    def test_no_fallback_on_stall_heavy_run(self, tmp_path):
        log = str(tmp_path / "events.jsonl")
        sim = Simulator(_TRACE, _stall_config(engine="fast",
                                              event_log=log))
        sim.run()
        assert sim.skipped_cycles > 0
        assert read_events(log, kinds={"engine_fallback"}) == []


# ----------------------------------------------------------------------
# Checkpoints landing mid-jump
# ----------------------------------------------------------------------

class TestCheckpointMidJump:

    def test_snapshot_inside_jump_resumes_identically(self):
        """The event engine overshoots checkpoint boundaries inside an
        analytic jump; the snapshot taken at the post-jump cycle must
        still resume bit-identically."""
        config = _stall_config(checkpoint_interval=64,
                               telemetry_window=64)
        sim = Simulator(_TRACE, config, engine="event")
        states: list[dict] = []
        sim.checkpoint_sink = \
            lambda s: states.append(json.loads(json.dumps(s)))
        ref = sim.run()
        assert sim.skipped_cycles > 0
        # A snapshot whose cycle is off the interval grid proves the
        # boundary fell inside a jump (the sink fires at the first
        # end-of-cycle at or past the boundary).
        off_grid = [s for s in states if s["cycle"] % 64 != 0]
        assert off_grid, "no checkpoint ever landed mid-jump"
        for state in (off_grid[0], off_grid[-1]):
            resumed = Simulator(_TRACE, config, engine="event")
            resumed.load_state_dict(json.loads(json.dumps(state)))
            assert resumed.run() == ref
        # ... and the same snapshot resumes under the naive loop.
        resumed = Simulator(_TRACE, config, engine="naive")
        resumed.load_state_dict(json.loads(json.dumps(off_grid[0])))
        assert resumed.run() == ref
