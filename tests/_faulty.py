"""Picklable fault-injection workers for the resilience tests.

Each worker records its invocation in a per-task counter file (attempts
for one task are strictly sequential, so plain read/write is safe) and
then misbehaves in a controlled way.  They live in an importable module
— not the test file's locals — so a forked pool worker can unpickle
them.
"""

from __future__ import annotations

import os
import time
from pathlib import Path


def bump(counter: str) -> int:
    """Increment the invocation count stored at ``counter``; return it."""
    path = Path(counter)
    count = int(path.read_text()) if path.exists() else 0
    count += 1
    path.write_text(str(count))
    return count


def read_count(counter: str) -> int:
    path = Path(counter)
    return int(path.read_text()) if path.exists() else 0


def ok(counter: str, value: object) -> object:
    bump(counter)
    return value


def flaky(counter: str, fail_times: int, value: object) -> object:
    """Raise on the first ``fail_times`` invocations, then succeed."""
    count = bump(counter)
    if count <= fail_times:
        raise RuntimeError(f"flaky failure #{count}")
    return value


def crash(counter: str) -> None:
    """Die like a segfault: the process exits without raising."""
    bump(counter)
    os._exit(3)


def crash_then_ok(counter: str, fail_times: int, value: object) -> object:
    count = bump(counter)
    if count <= fail_times:
        os._exit(3)
    return value


def hang(counter: str, sleep_s: float = 60.0) -> None:
    bump(counter)
    time.sleep(sleep_s)


def hang_then_ok(counter: str, fail_times: int, value: object,
                 sleep_s: float = 60.0) -> object:
    count = bump(counter)
    if count <= fail_times:
        time.sleep(sleep_s)
    return value


def slow_progress(counter: str, progress_file: str, steps: int,
                  step_s: float, value: object) -> object:
    """Run past any reasonable timeout, but honestly report progress.

    Bumps ``progress_file`` after every step so a supervisor probing it
    sees the token advance — the signature of a slow worker, not a
    stuck one.
    """
    bump(counter)
    for step in range(steps):
        time.sleep(step_s)
        Path(progress_file).write_text(str(step + 1))
    return value
