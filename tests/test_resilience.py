"""Fault-tolerant sweep execution: retries, timeouts, checkpoint/resume.

Covers the supervised executor (injected flaky / crashing / hanging
workers), the hardened result store (checksums + quarantine), the sweep
manifest, resume semantics with run-count assertions, environment
validation, and the ``repro sweep`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro import env
from repro.errors import (
    CacheCorruptionError,
    ConfigError,
    PointTimeoutError,
    ReproError,
    RetryExhaustedError,
    WorkerCrashError,
)
from repro.harness import (
    Point,
    ResultStore,
    Runner,
    RetryPolicy,
    SweepManifest,
    parallel_sweep,
    run_supervised,
    technique_config,
)
from repro.api import simulate
from repro.sim import InvariantViolation, guard_invariants
from repro.stats.sweep import merge_counters, summary_line, sweep_stat_group
from tests import _faulty

FAST = RetryPolicy(max_retries=2, backoff_base=0.0)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "traces"))


class TestRetryPolicy:
    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(backoff_base=1.0)
        assert policy.backoff("k", 2) == policy.backoff("k", 2)
        assert policy.backoff("k", 2) != policy.backoff("other", 2)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=4.0, jitter_fraction=0.0)
        assert policy.backoff("k", 1) == pytest.approx(1.0)
        assert policy.backoff("k", 2) == pytest.approx(2.0)
        assert policy.backoff("k", 5) == pytest.approx(4.0)

    def test_zero_base_means_no_sleep(self):
        assert FAST.backoff("k", 3) == 0.0

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=1.0,
                             jitter_fraction=0.25)
        for key in ("a", "b", "c", "d"):
            assert 0.75 <= policy.backoff(key, 1) <= 1.25


class TestSupervisedInline:
    def test_flaky_task_retries_then_succeeds(self, tmp_path):
        counter = str(tmp_path / "flaky.count")
        outcome = run_supervised(
            _faulty.flaky, [("p", (counter, 2, "value"))],
            processes=1, policy=FAST)
        assert outcome.results == {"p": "value"}
        assert outcome.counters["retried"] == 2
        assert outcome.counters["completed"] == 1
        assert _faulty.read_count(counter) == 3

    def test_exhausted_task_records_attempt_history(self, tmp_path):
        counter = str(tmp_path / "dead.count")
        outcome = run_supervised(
            _faulty.flaky, [("p", (counter, 99, "never"))],
            processes=1, policy=FAST)
        assert outcome.results == {}
        failure = outcome.failures["p"]
        assert [a.attempt for a in failure.attempts] == [1, 2, 3]
        assert failure.error_type == "RuntimeError"
        assert "flaky failure #3" in failure.message
        error = failure.as_error()
        assert isinstance(error, RetryExhaustedError)
        assert "3 attempt(s)" in str(error)

    def test_other_tasks_survive_a_failing_one(self, tmp_path):
        tasks = [
            ("bad", (str(tmp_path / "bad.count"), 99, None)),
            ("good", (str(tmp_path / "good.count"), 0, 42)),
        ]
        outcome = run_supervised(_faulty.flaky, tasks,
                                 processes=1, policy=FAST)
        assert outcome.results == {"good": 42}
        assert set(outcome.failures) == {"bad"}

    def test_callbacks_fire(self, tmp_path):
        seen = []
        run_supervised(
            _faulty.flaky,
            [("ok", (str(tmp_path / "a"), 0, 1)),
             ("bad", (str(tmp_path / "b"), 99, None))],
            processes=1, policy=FAST,
            on_success=lambda key, value: seen.append(("ok", key, value)),
            on_failure=lambda key, failure: seen.append(("fail", key)))
        assert ("ok", "ok", 1) in seen
        assert ("fail", "bad") in seen


class TestSupervisedPool:
    def test_worker_crash_rebuilds_pool_and_retries(self, tmp_path):
        counter = str(tmp_path / "crash.count")
        outcome = run_supervised(
            _faulty.crash_then_ok, [("p", (counter, 1, "survived"))],
            processes=2, policy=FAST)
        assert outcome.results == {"p": "survived"}
        assert outcome.counters["crashes"] >= 1
        assert outcome.counters["rebuilds"] >= 1
        assert _faulty.read_count(counter) == 2

    def test_persistent_crasher_becomes_failure(self, tmp_path):
        counter = str(tmp_path / "crash.count")
        outcome = run_supervised(
            _faulty.crash, [("p", (counter,))],
            processes=2, policy=RetryPolicy(max_retries=1,
                                            backoff_base=0.0))
        assert outcome.results == {}
        failure = outcome.failures["p"]
        assert failure.error_type == WorkerCrashError.__name__
        assert len(failure.attempts) == 2

    def test_hung_worker_times_out_then_succeeds(self, tmp_path):
        counter = str(tmp_path / "hang.count")
        policy = RetryPolicy(max_retries=2, backoff_base=0.0,
                             point_timeout=0.75)
        outcome = run_supervised(
            _faulty.hang_then_ok, [("p", (counter, 1, "woke", 30.0))],
            processes=2, policy=policy)
        assert outcome.results == {"p": "woke"}
        assert outcome.counters["timeouts"] >= 1
        assert outcome.counters["rebuilds"] >= 1

    def test_persistent_hang_fails_while_others_complete(self, tmp_path):
        policy = RetryPolicy(max_retries=1, backoff_base=0.0,
                             point_timeout=0.75)
        tasks = [
            ("stuck", (str(tmp_path / "stuck.count"), 99, None, 30.0)),
            ("quick", (str(tmp_path / "quick.count"), 0, "done", 30.0)),
        ]
        outcome = run_supervised(_faulty.hang_then_ok, tasks,
                                 processes=2, policy=policy)
        assert outcome.results == {"quick": "done"}
        failure = outcome.failures["stuck"]
        assert failure.error_type == PointTimeoutError.__name__
        assert "0.75s" in failure.message


class TestEnvValidation:
    def test_trace_len_junk_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "junk")
        with pytest.raises(ConfigError, match="junk"):
            env.trace_length_override()

    def test_trace_len_valid_and_floored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "5")
        assert env.trace_length_override() == 1000
        monkeypatch.setenv("REPRO_TRACE_LEN", "150000")
        assert env.trace_length_override() == 150000
        monkeypatch.delenv("REPRO_TRACE_LEN")
        assert env.trace_length_override() is None

    def test_full_flag_strict(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "yes")
        with pytest.raises(ConfigError, match="yes"):
            env.full_run_requested()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert env.full_run_requested() is True
        monkeypatch.setenv("REPRO_FULL", "0")
        assert env.full_run_requested() is False

    def test_result_cache_must_be_directory(self, tmp_path, monkeypatch):
        victim = tmp_path / "a_file"
        victim.write_text("x")
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(victim))
        with pytest.raises(ConfigError, match="a_file"):
            env.result_cache_dir()
        monkeypatch.setenv("REPRO_RESULT_CACHE", str(tmp_path / "dir"))
        assert env.result_cache_dir() == str(tmp_path / "dir")

    def test_runner_surfaces_config_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_LEN", "garbage")
        with pytest.raises(ConfigError):
            Runner()

    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)


def _result(workload="w", length=1000, seed=1, store=None):
    from tests.test_persist import make_result
    return make_result()


class TestStoreHardening:
    def _roundtrip_store(self, tmp_path):
        store = ResultStore(tmp_path / "results")
        config = technique_config("none")
        store.store("w", config, 1000, 1, _result())
        return store, config

    def test_truncated_entry_quarantined_not_deleted(self, tmp_path):
        store, config = self._roundtrip_store(tmp_path)
        victim = next((tmp_path / "results").glob("*.result.json"))
        victim.write_text(victim.read_text()[:40])
        assert store.load("w", config, 1000, 1) is None
        assert not victim.exists()
        assert len(store.quarantined_files()) == 1
        assert store.quarantined == 1

    def test_checksum_mismatch_quarantined(self, tmp_path):
        store, config = self._roundtrip_store(tmp_path)
        victim = next((tmp_path / "results").glob("*.result.json"))
        envelope = json.loads(victim.read_text())
        envelope["payload"] = envelope["payload"].replace(
            '"cycles": 1000', '"cycles": 9999')
        victim.write_text(json.dumps(envelope))
        assert store.load("w", config, 1000, 1) is None
        assert len(store.quarantined_files()) == 1

    def test_legacy_unchecksummed_entry_still_loads(self, tmp_path):
        from repro.sim.serialize import result_to_json
        store, config = self._roundtrip_store(tmp_path)
        victim = next((tmp_path / "results").glob("*.result.json"))
        victim.write_text(result_to_json(_result()))
        assert store.load("w", config, 1000, 1) is not None

    def test_unique_tmp_names_no_shared_path(self, tmp_path):
        # The old implementation used path.with_suffix('.tmp'), which
        # collides across concurrent writers of the same key; the
        # hardened writer must never leave that shared name behind and
        # must not leave temp droppings after a successful store.
        store, _config = self._roundtrip_store(tmp_path)
        leftovers = list((tmp_path / "results").glob("*.tmp"))
        assert leftovers == []

    def test_cache_corruption_error_fields(self):
        error = CacheCorruptionError("/tmp/x.json", "checksum mismatch")
        assert error.path == "/tmp/x.json"
        assert "quarantin" not in error.reason  # reason is the cause
        assert isinstance(error, ReproError)


class TestSweepManifest:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.manifest.json"
        manifest = SweepManifest(path)
        manifest.mark_done("k1")
        manifest.mark_failed("k2", "PointTimeoutError: too slow")
        reloaded = SweepManifest(path)
        assert reloaded.done == {"k1"}
        assert reloaded.failed == {"k2": "PointTimeoutError: too slow"}

    def test_failed_then_done_clears_failure(self, tmp_path):
        manifest = SweepManifest(tmp_path / "m.json")
        manifest.mark_failed("k", "boom")
        manifest.mark_done("k")
        reloaded = SweepManifest(tmp_path / "m.json")
        assert reloaded.done == {"k"}
        assert reloaded.failed == {}

    def test_corrupt_manifest_quarantined_and_reset(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("{broken")
        manifest = SweepManifest(path)
        assert manifest.done == set()
        assert not path.exists()  # moved to quarantine
        assert (tmp_path / "quarantine" / "m.json").exists()


class TestManifestIdentity:
    META = {"trace_length": 2000, "seed": 1, "points": 2,
            "keys_digest": "abc123"}

    def test_meta_round_trips(self, tmp_path):
        path = tmp_path / "m.json"
        manifest = SweepManifest(path, meta=self.META)
        manifest.mark_done("k1")
        reloaded = SweepManifest(path, meta=self.META)
        assert reloaded.done == {"k1"}
        assert reloaded.meta == self.META

    def test_mismatched_meta_rejected(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest(path, meta=self.META).mark_done("k1")
        changed = dict(self.META, trace_length=4000)
        with pytest.raises(ReproError, match="different sweep"):
            SweepManifest(path, meta=changed)

    def test_error_names_the_mismatched_field(self, tmp_path):
        path = tmp_path / "m.json"
        SweepManifest(path, meta=self.META).mark_done("k1")
        changed = dict(self.META, seed=9)
        with pytest.raises(ReproError, match="seed"):
            SweepManifest(path, meta=changed)

    def test_opening_without_expected_meta_adopts_stored(self, tmp_path):
        # Inspection tools open the manifest without knowing the sweep.
        path = tmp_path / "m.json"
        SweepManifest(path, meta=self.META).mark_done("k1")
        manifest = SweepManifest(path)
        assert manifest.done == {"k1"}
        assert manifest.meta == self.META

    def test_legacy_manifest_without_meta_accepted(self, tmp_path):
        # Pre-versioning checkpoints carry no meta; they load rather
        # than abort (nothing to validate against).
        path = tmp_path / "m.json"
        path.write_text(json.dumps({"version": 1, "done": ["k1"],
                                    "failed": {}}))
        manifest = SweepManifest(path, meta=self.META)
        assert manifest.done == {"k1"}

    def test_resume_without_store_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="result store"):
            parallel_sweep([("compress_like", technique_config("none"))],
                           trace_length=2000, processes=1,
                           checkpoint=str(tmp_path), resume=True)

    def test_resume_with_changed_sweep_rejected(self, tmp_path):
        # An explicit *.json checkpoint path is reused verbatim across
        # runs (a directory gets per-sweep file names instead), so a
        # changed trace length must be caught by the meta check:
        # previously the stale manifest silently skipped the "done"
        # points even though the store has no results at this length.
        store = ResultStore(tmp_path / "results")
        checkpoint = str(tmp_path / "sweep.manifest.json")
        points = [("compress_like", technique_config("none"))]
        parallel_sweep(points, trace_length=2000, processes=1,
                       store=store, checkpoint=checkpoint)
        with pytest.raises(ReproError, match="different sweep"):
            parallel_sweep(points, trace_length=4000, processes=1,
                           store=store, checkpoint=checkpoint,
                           resume=True)

    def test_resume_with_changed_store_rejected(self, tmp_path):
        points = [("compress_like", technique_config("none"))]
        checkpoint = str(tmp_path / "ckpt")
        parallel_sweep(points, trace_length=2000, processes=1,
                       store=ResultStore(tmp_path / "a"),
                       checkpoint=checkpoint)
        # Repointing persist_dir while keeping the checkpoint used to
        # "resume" against results that live somewhere else entirely.
        with pytest.raises(ReproError, match="store"):
            parallel_sweep(points, trace_length=2000, processes=1,
                           store=ResultStore(tmp_path / "b"),
                           checkpoint=checkpoint, resume=True)


class _FlakyOnce:
    """Wraps simulate: raise on the first N calls, then delegate."""

    def __init__(self, fail_times, exc_factory):
        self.calls = 0
        self.fail_times = fail_times
        self.exc_factory = exc_factory

    def __call__(self, trace, config, name=None):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self.exc_factory()
        return simulate(trace, config, name=name)


class TestParallelSweepFaults:
    POINT = ("compress_like", None)  # config filled per test

    def _points(self, *techniques):
        return [("compress_like", technique_config(t)) for t in techniques]

    def test_flaky_point_completes_sweep(self, tmp_path, monkeypatch):
        flaky = _FlakyOnce(1, lambda: RuntimeError("transient"))
        monkeypatch.setattr("repro.harness.parallel.simulate", flaky)
        outcome = parallel_sweep(self._points("none"), trace_length=2000,
                                 processes=1, policy=FAST)
        assert outcome.ok
        assert outcome.counters["retried"] == 1
        assert flaky.calls == 2

    def test_invariant_violation_is_retried_and_classified(
            self, tmp_path, monkeypatch):
        flaky = _FlakyOnce(1, lambda: InvariantViolation(
            ["injected violation"], context="compress_like"))
        monkeypatch.setattr("repro.harness.parallel.simulate", flaky)
        outcome = parallel_sweep(self._points("none"), trace_length=2000,
                                 processes=1, policy=FAST)
        assert outcome.ok
        assert outcome.counters["retried"] == 1

    def test_exhausted_point_degrades_gracefully(self, tmp_path,
                                                 monkeypatch):
        flaky = _FlakyOnce(99, lambda: InvariantViolation(["always bad"]))
        monkeypatch.setattr("repro.harness.parallel.simulate", flaky)
        points = self._points("none", "nlp")
        outcome = parallel_sweep(points, trace_length=2000, processes=1,
                                 policy=FAST)
        # Both points fail (shared fake), sweep still returns an outcome.
        assert len(outcome.failures) == 2
        failure = outcome.failures[0]
        assert failure.error_type == "InvariantViolation"
        assert failure.workload == "compress_like"
        with pytest.raises(RetryExhaustedError):
            outcome.raise_if_failed()

    def test_outcome_is_a_mapping(self, tmp_path):
        points = self._points("none")
        outcome = parallel_sweep(points, trace_length=2000, processes=1)
        assert set(outcome) == set(points)
        assert len(outcome) == 1
        assert outcome[points[0]].instructions > 0
        assert outcome.ok

    def test_worker_validates_invariants(self, tmp_path, monkeypatch):
        # Corrupt the counters the worker produces: the guard must turn
        # the violation into a structured point failure.
        def corrupted(trace, config, name=None):
            result = simulate(trace, config, name=name)
            result.counters["backend.retired"] += 1
            return result

        monkeypatch.setattr("repro.harness.parallel.simulate",
                            corrupted)
        outcome = parallel_sweep(self._points("none"), trace_length=2000,
                                 processes=1,
                                 policy=RetryPolicy(max_retries=0))
        assert not outcome.ok
        assert outcome.failures[0].error_type == "InvariantViolation"
        assert "retired" in outcome.failures[0].message


class TestCheckpointResume:
    def _count_sims(self, monkeypatch):
        counting = _FlakyOnce(0, None)
        monkeypatch.setattr("repro.harness.parallel.simulate",
                            counting)
        return counting

    def test_resume_reruns_only_unfinished_points(self, tmp_path,
                                                  monkeypatch):
        counting = self._count_sims(monkeypatch)
        store = ResultStore(tmp_path / "results")
        checkpoint = str(tmp_path / "results")
        first = [("compress_like", technique_config("none")),
                 ("compress_like", technique_config("nlp"))]
        outcome = parallel_sweep(first, trace_length=2000, processes=1,
                                 store=store, checkpoint=checkpoint)
        assert outcome.ok and counting.calls == 2

        # "Interrupted" rerun with one extra point: only it simulates.
        extended = first + [("compress_like",
                             technique_config("stream"))]
        resumed = parallel_sweep(extended, trace_length=2000, processes=1,
                                 store=store, checkpoint=checkpoint,
                                 resume=True)
        assert resumed.ok
        assert counting.calls == 3          # exactly one new simulation
        assert resumed.counters["resumed"] == 2
        assert len(resumed) == 3
        assert "2 resumed" in resumed.summary()

    def test_without_resume_everything_reruns(self, tmp_path, monkeypatch):
        counting = self._count_sims(monkeypatch)
        store = ResultStore(tmp_path / "results")
        points = [("compress_like", technique_config("none"))]
        parallel_sweep(points, trace_length=2000, processes=1, store=store)
        parallel_sweep(points, trace_length=2000, processes=1, store=store)
        assert counting.calls == 2

    def test_manifest_written_as_points_complete(self, tmp_path):
        checkpoint = tmp_path / "ckpt"
        outcome = parallel_sweep(
            [("compress_like", technique_config("none"))],
            trace_length=2000, processes=1, store=ResultStore(checkpoint),
            checkpoint=str(checkpoint))
        assert outcome.ok
        manifests = list(checkpoint.glob("sweep-*.manifest.json"))
        assert len(manifests) == 1
        data = json.loads(manifests[0].read_text())
        assert len(data["done"]) == 1 and data["failed"] == {}

    def test_resume_survives_lost_store_entry(self, tmp_path, monkeypatch):
        counting = self._count_sims(monkeypatch)
        store = ResultStore(tmp_path / "results")
        points = [("compress_like", technique_config("none"))]
        parallel_sweep(points, trace_length=2000, processes=1, store=store,
                       checkpoint=str(tmp_path / "results"))
        store.clear()                     # manifest says done, store empty
        resumed = parallel_sweep(points, trace_length=2000, processes=1,
                                 store=store,
                                 checkpoint=str(tmp_path / "results"),
                                 resume=True)
        assert resumed.ok and counting.calls == 2


class TestSweepCounters:
    def test_merge(self):
        merged = merge_counters({"completed": 1, "retried": 2},
                                {"completed": 3, "failed": 1})
        assert merged == {"completed": 4, "retried": 2, "failed": 1}

    def test_stat_group(self):
        group = sweep_stat_group({"completed": 5})
        assert group.name == "sweep"
        assert group.get("completed") == 5
        assert group.get("failed") == 0

    def test_summary_line_full(self):
        line = summary_line({"points": 12, "completed": 8, "resumed": 2,
                             "retried": 3, "failed": 2, "timeouts": 1,
                             "crashes": 1, "rebuilds": 2})
        assert line == ("sweep: 10/12 points completed (2 resumed), "
                        "3 retried, 2 failed "
                        "(1 timeouts, 1 crashes, 2 pool rebuilds)")

    def test_summary_line_minimal(self):
        assert summary_line({"points": 2, "completed": 2}) == \
            "sweep: 2/2 points completed, 0 retried, 0 failed"


class TestRunnerResilience:
    def test_with_seed_propagates_store_and_settings(self, tmp_path):
        parent = Runner(trace_length=2000, warmup_fraction=0.3,
                        persist_dir=str(tmp_path / "results"))
        child = parent.with_seed(7)
        assert child._store is parent._store
        assert child.warmup_fraction == 0.3
        assert child.trace_length == 2000
        assert child.seed == 7

    def test_runner_sweep_memoizes_results(self, tmp_path, monkeypatch):
        runner = Runner(trace_length=2000)
        points = [Point("compress_like", technique_config("none"))]
        outcome = runner.sweep(points, processes=1)
        assert outcome.ok
        assert runner.runs_performed == 1
        # A subsequent run() replays the memo without simulating.
        counting = _FlakyOnce(0, None)
        monkeypatch.setattr("repro.harness.runner.simulate",
                            counting)
        runner.run("compress_like", technique_config("none"))
        assert counting.calls == 0

    def test_runner_accumulates_sweep_counters(self, tmp_path):
        runner = Runner(trace_length=2000)
        runner.sweep([Point("compress_like", technique_config("none"))],
                     processes=1)
        runner.sweep([Point("compress_like", technique_config("nlp"))],
                     processes=1)
        assert runner.sweep_counters["points"] == 2

    def test_report_footer_shows_sweep_summary(self, tmp_path):
        from repro.harness import generate_report
        runner = Runner(trace_length=2000)
        runner.sweep([Point("compress_like", technique_config("none"))],
                     processes=1)
        text = generate_report(runner, experiment_ids=["E1"])
        assert "Sweep execution: sweep: 1/1 points completed" in text

    def test_guard_invariants_returns_result(self, tmp_path):
        from repro.workloads import build_trace
        from repro.config import SimConfig
        trace = build_trace("compress_like", 2000, seed=1)
        result = simulate(trace, SimConfig())
        assert guard_invariants(result) is result

    def test_invariant_violation_pickles_with_diagnostics(self):
        import pickle
        error = InvariantViolation(["a broke", "b broke"], context="w")
        clone = pickle.loads(pickle.dumps(error))
        assert clone.violations == ["a broke", "b broke"]
        assert clone.context == "w"
        assert isinstance(clone, AssertionError)
        assert isinstance(clone, ReproError)


class TestCliSweep:
    def test_sweep_command(self, capsys):
        from repro.cli import main
        code = main(["sweep", "-w", "compress_like", "-t", "none",
                     "--length", "2000", "--processes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "compress_like" in out
        assert "sweep: 1/1 points completed" in out

    def test_sweep_resume_via_checkpoint(self, tmp_path, capsys):
        from repro.cli import main
        checkpoint = str(tmp_path / "ckpt")
        args = ["sweep", "-w", "compress_like", "-t", "none", "nlp",
                "--length", "2000", "--processes", "1",
                "--checkpoint-dir", checkpoint]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "(2 resumed)" in out

    def test_resume_without_checkpoint_rejected(self, capsys):
        from repro.cli import main
        code = main(["sweep", "-w", "compress_like", "-t", "none",
                     "--length", "2000", "--resume"])
        assert code == 2
        assert "checkpoint" in capsys.readouterr().err

    def test_report_processes_flag_prewarms(self, capsys):
        from repro.cli import main
        code = main(["report", "--length", "2000", "--experiments", "E1",
                     "--processes", "1"])
        assert code == 0
