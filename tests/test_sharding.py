"""Sharded single-trace simulation: planning, merge equivalence, pool.

The load-bearing guarantees under test (see ``repro.sim.sharding``):

- ``K=1`` degenerates to the monolithic run bit-for-bit;
- ``K>1`` merged counters tile the monolithic measured region up to
  the retire-width quantization at each window boundary, and the
  merged IPC/MPKI stay within the documented short-trace tolerance;
- the supervised pool and the inline path produce identical snapshots;
- the merged result carries complete shard provenance.
"""

from __future__ import annotations

import pytest

from repro.api import simulate
from repro.config import SimConfig
from repro.errors import ConfigError
from repro.harness.shard_runner import run_sharded, run_sharded_workload
from repro.sim.sharding import (
    DEFAULT_SHARD_OVERLAP,
    plan_shards,
    run_shards_inline,
    shard_config,
    sharded_result,
)

WARMUP = 2_000
OVERLAP = 1_000


@pytest.fixture(scope="module")
def warm_config() -> SimConfig:
    return SimConfig(warmup_instructions=WARMUP)


@pytest.fixture(scope="module")
def mono(small_trace, warm_config):
    return simulate(small_trace, warm_config, name="mono")


class TestPlanShards:
    def test_windows_tile_the_trace(self):
        plan = plan_shards(10_000, 4, overlap=500)
        assert len(plan) == 4
        assert plan.shards[0].start == 0
        assert plan.shards[-1].stop == 10_000
        for prev, nxt in zip(plan.shards, plan.shards[1:]):
            assert nxt.start == prev.stop
            assert nxt.sim_start == nxt.start - 500

    def test_remainder_spread_over_leading_shards(self):
        plan = plan_shards(10, 3, overlap=0)
        assert [s.measured for s in plan.shards] == [4, 3, 3]

    def test_first_shard_has_no_overlap(self):
        plan = plan_shards(10_000, 4, overlap=500)
        assert plan.shards[0].sim_start == 0
        assert plan.shards[0].warmup == 0

    def test_overlap_clamped_to_available_prefix(self):
        plan = plan_shards(100, 2, overlap=1_000)
        assert plan.shards[1].sim_start == 0

    def test_default_overlap(self):
        assert plan_shards(100_000, 2).overlap == DEFAULT_SHARD_OVERLAP

    def test_overhead_counts_extra_simulated_instructions(self):
        plan = plan_shards(10_000, 4, overlap=500)
        # Three shards each re-simulate a 500-instruction overlap.
        assert plan.overhead == pytest.approx(1500 / 10_000)

    @pytest.mark.parametrize("kwargs", [
        dict(total=100, shards=0),
        dict(total=0, shards=1),
        dict(total=100, shards=2, overlap=-1),
        dict(total=3, shards=4),
        dict(total=100, shards=2, warmup=-1),
    ])
    def test_invalid_arguments_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            plan_shards(**kwargs)

    def test_warmup_must_fit_first_window(self):
        with pytest.raises(ConfigError, match="first"):
            plan_shards(10_000, 8, overlap=0, warmup=2_000)


class TestShardConfig:
    def test_first_shard_keeps_run_level_warmup(self):
        plan = plan_shards(10_000, 2, overlap=500, warmup=WARMUP)
        config = SimConfig(warmup_instructions=WARMUP)
        first = shard_config(config, plan.shards[0])
        assert first.warmup_instructions == WARMUP
        assert first.fast_forward_instructions == 0

    def test_later_shard_warms_over_overlap(self):
        plan = plan_shards(10_000, 2, overlap=500)
        config = SimConfig()
        later = shard_config(config, plan.shards[1], warm="functional")
        assert later.warmup_instructions == 500
        assert later.fast_forward_instructions == \
            plan.shards[1].sim_start
        cold = shard_config(config, plan.shards[1], warm="overlap")
        assert cold.fast_forward_instructions == 0

    def test_degenerate_shard_returns_config_unchanged(self):
        # The K=1 bit-identity hinges on the config object passing
        # through untouched.
        plan = plan_shards(10_000, 1, overlap=500, warmup=WARMUP)
        config = SimConfig(warmup_instructions=WARMUP)
        assert shard_config(config, plan.shards[0]) is config

    def test_rejects_preexisting_fast_forward(self):
        plan = plan_shards(10_000, 2, overlap=500)
        config = SimConfig(fast_forward_instructions=100)
        with pytest.raises(ConfigError, match="fast_forward"):
            shard_config(config, plan.shards[1])

    def test_rejects_unknown_warm_mode(self):
        plan = plan_shards(10_000, 2, overlap=500)
        with pytest.raises(ConfigError, match="bogus"):
            shard_config(SimConfig(), plan.shards[1], warm="bogus")


class TestMergeEquivalence:
    def test_single_shard_bit_identical(self, small_trace, warm_config,
                                        mono):
        sharded = run_sharded(small_trace, warm_config, shards=1)
        assert sharded.instructions == mono.instructions
        assert sharded.cycles == mono.cycles
        assert sharded.telemetry.flat_counters() == \
            mono.telemetry.flat_counters()

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_merged_metrics_within_tolerance(self, small_trace,
                                             warm_config, mono, shards):
        sharded = run_sharded(small_trace, warm_config, shards=shards,
                              overlap=OVERLAP, processes=1)
        # Measured windows tile the monolithic measured region up to
        # the retire-width quantization at each warm-up reset anchor.
        assert abs(sharded.instructions - mono.instructions) \
            <= 3 * shards
        # Short-trace tolerance: the 20k fixture is well below the
        # documented operating range (docs/performance.md calibrates
        # at 200k), so these bounds are deliberately loose — they
        # catch merge bugs, not modeling drift.
        assert sharded.ipc == pytest.approx(mono.ipc, rel=0.06)
        assert abs(sharded.l1i_mpki - mono.l1i_mpki) < 2.0

    def test_functional_warming_beats_overlap_only(self, small_trace,
                                                   warm_config, mono):
        functional = run_sharded(small_trace, warm_config, shards=4,
                                 overlap=OVERLAP, warm="functional",
                                 processes=1)
        cold = run_sharded(small_trace, warm_config, shards=4,
                           overlap=OVERLAP, warm="overlap",
                           processes=1)
        err = lambda r: abs(r.ipc - mono.ipc)  # noqa: E731
        assert err(functional) <= err(cold)

    def test_provenance_windows_tile_trace(self, small_trace,
                                           warm_config):
        sharded = run_sharded(small_trace, warm_config, shards=4,
                              overlap=OVERLAP, processes=1)
        meta = sharded.telemetry.meta["sharding"]
        assert meta["shards"] == 4
        assert meta["overlap"] == OVERLAP
        assert meta["warm"] == "functional"
        windows = meta["windows"]
        assert [w["shard"] for w in windows] == [0, 1, 2, 3]
        assert windows[0]["start"] == 0
        assert windows[-1]["stop"] == len(small_trace)
        for prev, nxt in zip(windows, windows[1:]):
            assert nxt["start"] == prev["stop"]
            assert nxt["cycle_range"][0] == prev["cycle_range"][1]
        assert windows[0]["warmup"] == WARMUP
        assert all(w["warmup"] == OVERLAP for w in windows[1:])
        assert sum(w["instructions"] for w in windows) == \
            sharded.instructions

    def test_merged_accuracy_ratio_restored(self, small_trace,
                                            warm_config):
        sharded = run_sharded(small_trace, warm_config, shards=2,
                              overlap=OVERLAP, processes=1)
        hybrid = sharded.telemetry.root.child("predict").child("hybrid")
        assert hybrid is not None
        assert hybrid.derived["accuracy"] == pytest.approx(
            hybrid.counters["correct"] / hybrid.counters["predictions"])

    def test_snapshot_count_must_match_plan(self, small_trace,
                                            warm_config):
        plan = plan_shards(len(small_trace), 2, overlap=OVERLAP,
                           warmup=WARMUP)
        snapshots = run_shards_inline(small_trace, warm_config, plan)
        with pytest.raises(ValueError, match="2 shards"):
            sharded_result(snapshots[:1], plan, name="broken")


class TestPoolExecution:
    @pytest.mark.parametrize("warm", ["functional", "overlap"])
    def test_pool_matches_inline(self, small_trace, warm_config, warm):
        inline = run_sharded(small_trace, warm_config, shards=2,
                             overlap=OVERLAP, warm=warm, processes=1)
        pooled = run_sharded(small_trace, warm_config, shards=2,
                             overlap=OVERLAP, warm=warm, processes=2)
        assert pooled.telemetry.flat_counters() == \
            inline.telemetry.flat_counters()
        assert pooled.telemetry.meta["sharding"] == \
            inline.telemetry.meta["sharding"]

    def test_workload_pool_matches_inline(self):
        config = SimConfig(warmup_instructions=1_000)
        inline = run_sharded_workload("compress_like", 8_000, 3, config,
                                      shards=2, overlap=500, processes=1)
        pooled = run_sharded_workload("compress_like", 8_000, 3, config,
                                      shards=2, overlap=500, processes=2)
        assert pooled.telemetry.flat_counters() == \
            inline.telemetry.flat_counters()

    def test_workload_path_matches_trace_path(self, small_trace,
                                              warm_config):
        from repro.workloads import build_trace

        trace = build_trace("compress_like", 8_000, seed=3)
        config = SimConfig(warmup_instructions=1_000)
        by_workload = run_sharded_workload(
            "compress_like", 8_000, 3, config, shards=2, overlap=500,
            processes=1)
        by_trace = run_sharded(trace, config, shards=2, overlap=500,
                               processes=1)
        assert by_workload.telemetry.flat_counters() == \
            by_trace.telemetry.flat_counters()


class TestArgumentValidation:
    def test_workload_rejects_max_instructions(self):
        config = SimConfig(max_instructions=5_000)
        with pytest.raises(ConfigError, match="max_instructions"):
            run_sharded_workload("compress_like", 8_000, 3, config,
                                 shards=2)

    def test_trace_path_honors_max_instructions(self, small_trace):
        config = SimConfig(max_instructions=6_000,
                           warmup_instructions=1_000)
        sharded = run_sharded(small_trace, config, shards=2,
                              overlap=500, processes=1)
        windows = sharded.telemetry.meta["sharding"]["windows"]
        assert windows[-1]["stop"] == 6_000

    def test_unknown_warm_mode_rejected_before_planning(self,
                                                        small_trace):
        with pytest.raises(ConfigError, match="warm"):
            run_sharded(small_trace, shards=2, warm="cold")
        with pytest.raises(ConfigError, match="warm"):
            run_sharded_workload("compress_like", 8_000, 3, SimConfig(),
                                 shards=2, warm="cold")


class TestSimulateFacade:
    def test_simulate_shards_matches_run_sharded(self, small_trace,
                                                 warm_config):
        direct = run_sharded(small_trace, warm_config, shards=2,
                             overlap=OVERLAP, processes=1)
        via_api = simulate(small_trace, warm_config, shards=2,
                           shard_overlap=OVERLAP, processes=1)
        assert via_api.telemetry.flat_counters() == \
            direct.telemetry.flat_counters()

    def test_simulate_shards_one_is_monolithic(self, small_trace,
                                               warm_config, mono):
        result = simulate(small_trace, warm_config, shards=1)
        assert result.telemetry.flat_counters() == \
            mono.telemetry.flat_counters()
        assert "sharding" not in result.telemetry.meta

    def test_tracer_does_not_compose_with_shards(self, small_trace):
        from repro.analysis import PipeTracer

        with pytest.raises(ConfigError, match="tracer"):
            simulate(small_trace, shards=2, tracer=PipeTracer())


class TestRunnerSharding:
    def test_explicit_shards_engage_below_threshold(self):
        from repro.harness.runner import Runner

        runner = Runner(trace_length=8_000, seed=3,
                        warmup_fraction=0.1)
        mono = runner.run("compress_like", SimConfig())
        sharded = runner.run("compress_like", SimConfig(), shards=2,
                            processes=1)
        assert "sharding" in sharded.telemetry.meta
        assert "sharding" not in mono.telemetry.meta
        assert sharded.ipc == pytest.approx(mono.ipc, rel=0.10)

    def test_policy_ignored_below_threshold(self):
        from repro.harness.runner import Runner

        runner = Runner(trace_length=8_000, seed=3, shards=4)
        assert runner._effective_shards(None) == 1

    def test_policy_engages_at_threshold(self):
        from repro.harness.runner import Runner

        runner = Runner(trace_length=8_000, seed=3, shards=4,
                        shard_threshold=8_000)
        assert runner._effective_shards(None) == 4
        # An explicit per-call value always wins over the policy.
        assert runner._effective_shards(1) == 1
        assert runner._effective_shards(2) == 2

    def test_sharded_results_cached_under_variant(self, tmp_path):
        from repro.harness.persist import ResultStore
        from repro.harness.runner import Runner, shard_variant

        store = ResultStore(tmp_path)
        runner = Runner(trace_length=8_000, seed=3,
                        warmup_fraction=0.1, store=store)
        config = SimConfig()
        sharded = runner.run("compress_like", config, shards=2,
                             processes=1)
        effective = runner._warmed(config)
        variant = shard_variant(2, None)
        assert store.load("compress_like", effective, 8_000, 3,
                          variant=variant) == sharded
        # The monolithic cache entry stays untouched.
        assert store.load("compress_like", effective, 8_000, 3) is None
