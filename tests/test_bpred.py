"""Direction predictors and the return address stack."""

import pytest

from repro.bpred import (
    COUNTER_INIT,
    COUNTER_MAX,
    BimodalPredictor,
    GsharePredictor,
    HybridPredictor,
    PerfectPredictor,
    ReturnAddressStack,
    counter_taken,
    counter_update,
)
from repro.errors import ConfigError


class TestCounters:
    def test_initial_state_not_taken(self):
        assert not counter_taken(COUNTER_INIT)

    def test_saturation_high(self):
        counter = COUNTER_MAX
        assert counter_update(counter, True) == COUNTER_MAX

    def test_saturation_low(self):
        assert counter_update(0, False) == 0

    def test_hysteresis(self):
        # From strongly taken, one not-taken keeps the taken prediction.
        counter = COUNTER_MAX
        counter = counter_update(counter, False)
        assert counter_taken(counter)
        counter = counter_update(counter, False)
        assert not counter_taken(counter)


class TestBimodal:
    def test_learns_taken(self):
        predictor = BimodalPredictor(64)
        pc = 0x40_0000
        for _ in range(2):
            predictor.update(pc, 0, True)
        assert predictor.predict(pc, 0)

    def test_learns_not_taken(self):
        predictor = BimodalPredictor(64)
        pc = 0x40_0000
        for _ in range(4):
            predictor.update(pc, 0, True)
        for _ in range(3):
            predictor.update(pc, 0, False)
        assert not predictor.predict(pc, 0)

    def test_distinct_pcs_independent(self):
        predictor = BimodalPredictor(64)
        a, b = 0x40_0000, 0x40_0004
        predictor.update(a, 0, True)
        predictor.update(a, 0, True)
        assert predictor.predict(a, 0)
        assert not predictor.predict(b, 0)

    def test_aliasing_by_table_size(self):
        predictor = BimodalPredictor(4)
        a = 0x40_0000
        b = a + 4 * 4  # same index modulo 4 entries (word indexed)
        predictor.update(a, 0, True)
        predictor.update(a, 0, True)
        assert predictor.predict(b, 0)

    def test_ignores_history(self):
        predictor = BimodalPredictor(64)
        pc = 0x40_0000
        predictor.update(pc, 0b1010, True)
        predictor.update(pc, 0b0000, True)
        assert predictor.predict(pc, 0b1111)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(100)


class TestGshare:
    def test_history_distinguishes_contexts(self):
        predictor = GsharePredictor(entries=256, history_bits=8)
        pc = 0x40_0000
        # Under history A it is taken; under history B not taken.
        for _ in range(3):
            predictor.update(pc, 0b0001, True)
            predictor.update(pc, 0b0010, False)
        assert predictor.predict(pc, 0b0001)
        assert not predictor.predict(pc, 0b0010)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            GsharePredictor(entries=100)
        with pytest.raises(ConfigError):
            GsharePredictor(entries=64, history_bits=0)


class TestHybrid:
    def test_predicts_like_trained_component(self):
        hybrid = HybridPredictor(64, 64, 6, 64)
        pc = 0x40_0000
        for _ in range(4):
            hybrid.update(pc, 0, True)
        assert hybrid.predict(pc, 0)

    def test_meta_moves_toward_correct_component(self):
        hybrid = HybridPredictor(64, 256, 8, 64)
        pc = 0x40_0000
        # Pattern depends on history: alternating T/NT with distinct
        # history values -> gshare learns it, bimodal cannot.
        for _ in range(8):
            hybrid.update(pc, 0b01, True)
            hybrid.update(pc, 0b10, False)
        assert hybrid.predict(pc, 0b01)
        assert not hybrid.predict(pc, 0b10)

    def test_accuracy_accounting(self):
        hybrid = HybridPredictor(64, 64, 6, 64)
        hybrid.record_outcome(True)
        hybrid.record_outcome(False)
        assert hybrid.accuracy == pytest.approx(0.5)

    def test_from_config(self):
        from repro.config import PredictorConfig
        hybrid = HybridPredictor.from_config(PredictorConfig())
        assert hybrid.predict(0x40_0000, 0) in (True, False)


class TestPerfect:
    def test_primed_outcome_returned(self):
        perfect = PerfectPredictor()
        perfect.prime(True)
        assert perfect.predict(0, 0)
        perfect.prime(False)
        assert not perfect.predict(0, 0)


class TestRas:
    def test_lifo_order(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(4)
        assert ras.pop() is None
        assert ras.stats.get("underflows") == 1

    def test_overflow_overwrites_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        ras.push(0x200)
        ras.push(0x300)   # overwrites 0x100
        assert ras.pop() == 0x300
        assert ras.pop() == 0x200
        assert ras.pop() is None

    def test_peek_does_not_pop(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        assert ras.peek() == 0x100
        assert len(ras) == 1

    def test_snapshot_restore_roundtrip(self):
        ras = ReturnAddressStack(4)
        ras.push(0x100)
        ras.push(0x200)
        snap = ras.snapshot()
        ras.pop()
        ras.push(0x300)
        ras.push(0x400)
        ras.restore(snap)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_snapshot_survives_wraparound(self):
        ras = ReturnAddressStack(2)
        ras.push(0x100)
        snap = ras.snapshot()
        ras.push(0x200)
        ras.push(0x300)  # wraps, corrupts 0x100's slot
        ras.restore(snap)
        assert ras.pop() == 0x100

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
