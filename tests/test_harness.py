"""Harness: technique catalog, runner memoization, experiment tables."""

import pytest

from repro.config import FilterMode, PrefetcherKind, SimConfig
from repro.errors import ConfigError
from repro.harness import (
    EXPERIMENTS,
    Runner,
    TECHNIQUE_ORDER,
    geomean,
    run_experiment,
    technique_config,
)


class TestTechniqueConfig:
    def test_all_named_techniques_resolve(self):
        for name in TECHNIQUE_ORDER:
            config = technique_config(name)
            assert isinstance(config, SimConfig)

    def test_fdip_variants_set_filter(self):
        assert technique_config("fdip_ideal").prefetch.filter_mode == \
            FilterMode.IDEAL
        assert technique_config("fdip_nofilter").prefetch.filter_mode == \
            FilterMode.NONE

    def test_none_technique(self):
        assert technique_config("none").prefetch.kind == \
            PrefetcherKind.NONE

    def test_base_preserved(self):
        base = SimConfig(warmup_instructions=123)
        config = technique_config("nlp", base)
        assert config.warmup_instructions == 123
        assert config.prefetch.kind == PrefetcherKind.NLP

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            technique_config("magic")


class TestGeomean:
    def test_values(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestRunner:
    def test_memoizes_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        runner = Runner(trace_length=3000)
        config = technique_config("none")
        first = runner.run("compress_like", config)
        second = runner.run("compress_like", config)
        assert first is second
        assert runner.runs_performed == 1

    def test_distinct_configs_not_conflated(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        runner = Runner(trace_length=3000)
        runner.run("compress_like", technique_config("none"))
        runner.run("compress_like", technique_config("nlp"))
        assert runner.runs_performed == 2

    def test_warmup_injected(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        runner = Runner(trace_length=3000, warmup_fraction=0.5)
        result = runner.run("compress_like", technique_config("none"))
        assert result.instructions <= 3000 - 1400

    def test_speedup_of_same_config_is_one(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        runner = Runner(trace_length=3000)
        config = technique_config("none")
        assert runner.speedup("compress_like", config, config) == \
            pytest.approx(1.0)


class TestExperiments:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 23)}

    def test_e1_static_table(self):
        table = run_experiment("E1", Runner(trace_length=2000))
        assert table.experiment_id == "E1"
        assert len(table.rows) > 10
        assert "parameter" in table.headers

    def test_e2_runs_small(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        table = run_experiment("E2", Runner(trace_length=2500))
        assert len(table.rows) == 10
        formatted = table.formatted()
        assert "E2" in formatted
        assert "vortex_like" in formatted

    def test_e12_distributions(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        table = run_experiment("E12", Runner(trace_length=2500))
        assert len(table.rows) == 10
        for row in table.rows:
            fractions = row[3:6]
            assert sum(fractions) == pytest.approx(1.0, abs=1e-6)
