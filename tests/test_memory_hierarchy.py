"""MemorySystem: the demand path, prefetch path, ports, and merges."""


from repro.config import CacheGeometry, MemoryConfig
from repro.memory import (
    HIT_L1,
    HIT_SIDECAR,
    MERGED,
    MISS,
    RETRY,
    MemorySystem,
    PrefetchBuffer,
)
from repro.prefetch.fdip import PrefetchBufferSidecar


def small_memory(sidecar=None, mshrs=4, ports=2):
    config = MemoryConfig(
        icache=CacheGeometry(size_bytes=1024, assoc=2, block_bytes=32),
        l2=CacheGeometry(size_bytes=64 * 1024, assoc=4, block_bytes=32),
        l2_hit_latency=10,
        memory_latency=50,
        bus_transfer_cycles=4,
        mshr_entries=mshrs,
        icache_tag_ports=ports,
    )
    return MemorySystem(config, sidecar=sidecar)


class TestDemandPath:
    def test_cold_miss_latency_is_memory(self):
        memory = small_memory()
        memory.begin_cycle(1)
        result = memory.demand_fetch(5, 1)
        assert result.outcome == MISS
        # bus start 1 + transfer 4 + memory 50
        assert result.ready_cycle == 1 + 4 + 50

    def test_l2_hit_latency_after_first_fill(self):
        memory = small_memory()
        memory.begin_cycle(1)
        first = memory.demand_fetch(5, 1)
        memory.begin_cycle(first.ready_cycle)
        # Evict block 5 from L1 by filling its set beyond assoc.
        memory.l1i.invalidate(5)
        memory.begin_cycle(200)
        second = memory.demand_fetch(5, 200)
        assert second.outcome == MISS
        assert second.ready_cycle == 200 + 4 + 10  # L2 hit now

    def test_fill_applies_at_ready_cycle(self):
        memory = small_memory()
        memory.begin_cycle(1)
        result = memory.demand_fetch(5, 1)
        memory.begin_cycle(result.ready_cycle)
        assert memory.demand_fetch(5, result.ready_cycle).outcome == HIT_L1

    def test_merge_into_inflight_demand(self):
        memory = small_memory()
        memory.begin_cycle(1)
        first = memory.demand_fetch(5, 1)
        second = memory.demand_fetch(5, 2)
        assert second.outcome == MERGED
        assert second.ready_cycle == first.ready_cycle

    def test_retry_when_mshrs_full(self):
        memory = small_memory(mshrs=1)
        memory.begin_cycle(1)
        memory.demand_fetch(5, 1)
        result = memory.demand_fetch(9, 1)
        assert result.outcome == RETRY
        assert result.ready_cycle is None

    def test_sidecar_hit_promotes_to_l1(self):
        buffer = PrefetchBuffer(4)
        memory = small_memory(sidecar=PrefetchBufferSidecar(buffer))
        buffer.insert(5)
        memory.begin_cycle(1)
        result = memory.demand_fetch(5, 1)
        assert result.outcome == HIT_SIDECAR
        assert not buffer.contains(5)
        assert memory.l1i.contains(5)


class TestPrefetchPath:
    def test_prefetch_fills_sidecar(self):
        buffer = PrefetchBuffer(4)
        memory = small_memory(sidecar=PrefetchBufferSidecar(buffer))
        memory.begin_cycle(1)
        assert memory.try_issue_prefetch(5, 1)
        memory.begin_cycle(1 + 4 + 50)
        assert buffer.contains(5)
        assert not memory.l1i.contains(5)

    def test_prefetch_rejected_when_bus_busy(self):
        memory = small_memory(sidecar=PrefetchBufferSidecar(
            PrefetchBuffer(4)))
        memory.begin_cycle(1)
        memory.demand_fetch(9, 1)            # occupies the bus
        assert not memory.try_issue_prefetch(5, 2)
        assert memory.try_issue_prefetch(5, 6)

    def test_prefetch_rejected_when_inflight_or_full(self):
        memory = small_memory(sidecar=PrefetchBufferSidecar(
            PrefetchBuffer(4)), mshrs=1)
        memory.begin_cycle(1)
        assert memory.try_issue_prefetch(5, 1)
        assert not memory.try_issue_prefetch(5, 6)   # already in flight
        assert not memory.try_issue_prefetch(7, 6)   # MSHRs full

    def test_demand_merge_into_prefetch_goes_to_l1(self):
        buffer = PrefetchBuffer(4)
        memory = small_memory(sidecar=PrefetchBufferSidecar(buffer))
        memory.begin_cycle(1)
        memory.try_issue_prefetch(5, 1)
        result = memory.demand_fetch(5, 3)
        assert result.outcome == MERGED
        memory.begin_cycle(result.ready_cycle)
        assert memory.l1i.contains(5)
        assert not buffer.contains(5)          # merged, not buffered
        assert memory.stats.get("late_prefetch_fills") == 1

    def test_drain_in_flight(self):
        buffer = PrefetchBuffer(4)
        memory = small_memory(sidecar=PrefetchBufferSidecar(buffer))
        memory.begin_cycle(1)
        memory.try_issue_prefetch(5, 1)
        memory.drain_in_flight()
        assert buffer.contains(5)
        assert len(memory.mshrs) == 0


class TestTagPorts:
    def test_demand_consumes_ports(self):
        memory = small_memory(ports=2)
        memory.begin_cycle(1)
        assert memory.idle_tag_ports == 2
        memory.demand_fetch(5, 1)
        assert memory.idle_tag_ports == 1

    def test_cpf_probe_consumes_port_and_answers(self):
        memory = small_memory(ports=2)
        memory.begin_cycle(1)
        memory.l1i.fill(5)
        assert memory.cpf_probe(5) is True
        assert memory.cpf_probe(6) is False
        assert memory.cpf_probe(7) is None     # out of ports
        assert memory.stats.get("cpf_no_port") == 1

    def test_ports_reset_each_cycle(self):
        memory = small_memory(ports=1)
        memory.begin_cycle(1)
        memory.cpf_probe(5)
        assert memory.idle_tag_ports == 0
        memory.begin_cycle(2)
        assert memory.idle_tag_ports == 1

    def test_oracle_probe_free(self):
        memory = small_memory(ports=1)
        memory.begin_cycle(1)
        memory.l1i.fill(5)
        assert memory.oracle_probe(5)
        assert memory.idle_tag_ports == 1     # no port consumed


class TestBusAccounting:
    def test_utilization_includes_prefetches(self):
        memory = small_memory(sidecar=PrefetchBufferSidecar(
            PrefetchBuffer(4)))
        memory.begin_cycle(1)
        memory.demand_fetch(1, 1)
        memory.try_issue_prefetch(2, 6)
        assert memory.bus.stats.get("busy_cycles") == 8

    def test_in_flight_listing(self):
        memory = small_memory()
        memory.begin_cycle(1)
        memory.demand_fetch(3, 1)
        assert memory.in_flight_blocks() == [3]
